//! Capacity-aware event kernels: bounded per-node queues, service
//! rates, and load shedding over the [`event`](crate::event) machinery.
//!
//! The PR 7 event kernels deliver every arriving message instantly —
//! nodes have infinite capacity, so offered load is invisible. The
//! [`OverloadEngine`] here re-expresses the same flood and walk on a
//! queueing model governed by a [`CapacityPlan`]:
//!
//! * an **arriving** message (having already survived the fault plan's
//!   liveness and drop checks, exactly as in the PR 7 kernels) joins
//!   its target node's bounded FIFO queue;
//! * each node **serves** one queued message every
//!   [`CapacityPlan::service_interval`] ticks — marking, holder checks,
//!   walker moves, and forwarding all happen at *service* time, so a
//!   congested node stretches the query's timeline;
//! * a **full queue** invokes the plan's [`ShedPolicy`]; shed messages
//!   are gone (walks treat a shed step like a drop: the walker strands
//!   for that step and re-picks from where it stands);
//! * the plan's **offered background load** materializes as a synthetic
//!   standing backlog seeded into each node's queue on first touch
//!   (drawn statelessly per `(node, query nonce)`), so real messages
//!   queue behind the traffic the offered load implies. Synthetic
//!   entries consume service slots but are invisible to the accounting
//!   identity below — they model *other* queries' load, not this one's.
//!
//! # Accounting identity
//!
//! Counting only this query's (real) messages:
//!
//! ```text
//! messages == served + dead_targets + dropped + shed + in_flight
//! ```
//!
//! where `in_flight` is the number of real messages still in the
//! calendar or queued when a cutoff truncates the run (0 when the run
//! drains). Pinned by proptests in `tests/overload.rs`.
//!
//! # Bitwise equivalence when unlimited
//!
//! Under [`CapacityPlan::unlimited`] both entry points delegate to the
//! PR 7 kernels verbatim — [`event_flood_rec`] / [`event_walk_rec`] —
//! so an unlimited run is bitwise identical to a capacity-free run *by
//! construction*, and the overload accounting is all zeros.
//!
//! # Determinism
//!
//! The queueing layer adds no randomness of its own: service tiers and
//! backlogs come from the plan's stateless hashes, service events are
//! keyed by the node id on their own tie stream ([`SERVE_TAG`]), and
//! every walker RNG draw still happens in that walker's own totally
//! ordered chain (a walker has at most one step outstanding — in the
//! calendar *or* in a queue).

use crate::event::{event_flood_rec, event_walk_rec, EventFloodOutcome, EventWalkOutcome};
use crate::flood::FloodOutcome;
use crate::graph::Graph;
use crate::walk::WalkOutcome;
use qcp_faults::capacity::ShedPolicy;
use qcp_faults::{CapacityPlan, FaultPlan, FaultStats};
use qcp_obs::{Counter, Event, Kernel, Recorder};
use qcp_util::rng::Pcg64;
use qcp_vtime::{tie_break, Calendar};
use std::collections::VecDeque;

/// Tie stream tag for per-node service events (distinct from message
/// ties, which hash the message index).
pub const SERVE_TAG: u64 = 0x5e1f_5e2e_7a61_ca90;

/// Overload accounting for one kernel run. All zeros when the plan is
/// unlimited (or nothing queued).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadOutcome {
    /// Real messages admitted into a queue.
    pub enqueued: u64,
    /// Real messages dequeued and processed at their node's rate.
    pub served: u64,
    /// Real messages evicted by the shedding policy (full queue).
    pub shed: u64,
    /// Synthetic background entries evicted by the shedding policy to
    /// make room — refused background work. Kept out of [`shed`]
    /// (which the accounting identity ties to real messages) so the
    /// identity stays exact.
    ///
    /// [`shed`]: OverloadOutcome::shed
    pub displaced: u64,
    /// Total ticks real messages waited in queues before service.
    pub queue_delay: u64,
    /// Real messages still in the calendar or queued at truncation.
    pub in_flight: u64,
    /// Synthetic background-load entries seeded across touched queues.
    pub backlog_seeded: u64,
}

/// Queued work at a node: a synthetic background entry, a flood
/// delivery awaiting service, or a walker step awaiting service.
#[derive(Debug, Clone, Copy)]
enum Payload {
    Background,
    Flood { hop: u32 },
    Walk { walker: u32, step: u32, from: u32 },
}

#[derive(Debug, Clone, Copy)]
struct QEntry {
    arrived: u64,
    payload: Payload,
}

impl QEntry {
    /// Remaining forwarding budget, the [`ShedPolicy::TtlPriority`]
    /// key. Synthetic backlog models other queries' traffic with no
    /// TTL claim of its own, so it is always the first evicted.
    fn remaining_ttl(&self, max_ttl: u32) -> u32 {
        match self.payload {
            Payload::Background => 0,
            Payload::Flood { hop, .. } => max_ttl.saturating_sub(hop),
            Payload::Walk { step, .. } => max_ttl.saturating_sub(step),
        }
    }

    fn is_real(&self) -> bool {
        !matches!(self.payload, Payload::Background)
    }
}

/// Calendar events of the capacity-aware kernels. Ordered fields are
/// never consulted by the calendar (the `(time, tie, seq)` key is a
/// strict total order); the derive only satisfies the `E: Ord` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A flood message arriving at `to` (mirrors the PR 7 `Deliver`).
    Flood {
        from: u32,
        to: u32,
        hop: u32,
        msg: u64,
    },
    /// A walker step arriving at `to` (mirrors the PR 7 `Step`).
    Walk {
        walker: u32,
        step: u32,
        from: u32,
        to: u32,
        msg: u64,
    },
    /// Node `0` dequeues its next message.
    Serve(u32),
}

struct WalkerState {
    rng: Pcg64,
    current: u32,
    previous: u32,
}

/// Mirrors [`crate::event`]'s neighbor pick (identical RNG
/// consumption): prefer a neighbor other than where we came from, up
/// to four re-picks.
fn pick_next(neighbors: &[u32], previous: u32, rng: &mut Pcg64) -> u32 {
    if neighbors.len() == 1 {
        return neighbors[0];
    }
    let mut pick = neighbors[rng.index(neighbors.len())];
    let mut tries = 0;
    while pick == previous && tries < 4 {
        pick = neighbors[rng.index(neighbors.len())];
        tries += 1;
    }
    pick
}

fn step_tie(walker: u32, step: u32) -> u64 {
    tie_break(((walker as u64) << 32) | step as u64)
}

/// Reusable capacity-aware flood/walk engine. Holds the calendar,
/// per-node queues, and visit marks across runs; [`reset`] rewinds
/// everything while retaining every allocation, so steady-state reuse
/// allocates nothing (the PR 8 arena discipline, backed by
/// [`Calendar::reset`]).
///
/// [`reset`]: OverloadEngine::reset
#[derive(Debug)]
pub struct OverloadEngine {
    cal: Calendar<Ev>,
    queues: Vec<VecDeque<QEntry>>,
    busy: Vec<bool>,
    seeded: Vec<bool>,
    touched: Vec<u32>,
    marked: Vec<bool>,
    marked_list: Vec<u32>,
}

impl Default for OverloadEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl OverloadEngine {
    /// An empty engine; per-node state grows on first use.
    pub fn new() -> Self {
        Self {
            cal: Calendar::new(),
            queues: Vec::new(),
            busy: Vec::new(),
            seeded: Vec::new(),
            touched: Vec::new(),
            marked: Vec::new(),
            marked_list: Vec::new(),
        }
    }

    /// Rewinds the engine for the next run: drains touched queues,
    /// clears visit marks, and resets the calendar to virtual time 0.
    /// Every allocation (calendar heap, queue rings, mark bitmaps) is
    /// retained.
    fn reset(&mut self, n: usize) {
        self.cal.reset();
        if self.queues.len() < n {
            self.queues.resize_with(n, VecDeque::new);
            self.busy.resize(n, false);
            self.seeded.resize(n, false);
        }
        for &node in &self.touched {
            self.queues[node as usize].clear();
            self.busy[node as usize] = false;
            self.seeded[node as usize] = false;
        }
        self.touched.clear();
        if self.marked.len() < n {
            self.marked.resize(n, false);
        }
        for &node in &self.marked_list {
            self.marked[node as usize] = false;
        }
        self.marked_list.clear();
    }

    fn mark(&mut self, node: u32) {
        self.marked[node as usize] = true;
        self.marked_list.push(node);
    }

    /// First touch of a node's queue this run: seed the synthetic
    /// standing backlog the offered load implies and start its service
    /// clock. Returns the number of synthetic entries seeded.
    fn touch(&mut self, node: u32, now: u64, nonce: u64, cap: &CapacityPlan) -> u64 {
        if self.seeded[node as usize] {
            return 0;
        }
        self.seeded[node as usize] = true;
        self.touched.push(node);
        let backlog = cap.backlog(node, nonce);
        for _ in 0..backlog {
            self.queues[node as usize].push_back(QEntry {
                arrived: now,
                payload: Payload::Background,
            });
        }
        if backlog > 0 && !self.busy[node as usize] {
            self.busy[node as usize] = true;
            self.cal.schedule_after(
                cap.service_interval(node),
                tie_break(SERVE_TAG ^ u64::from(node)),
                Ev::Serve(node),
            );
        }
        u64::from(backlog)
    }

    /// Admits an arriving real message into `node`'s queue, shedding
    /// per policy when full. Returns the evicted real entry, if the
    /// policy displaced one (walk evictions resume their walker), and
    /// whether the *arriving* message itself was shed.
    #[allow(clippy::too_many_arguments)] // queueing site: node + entry + plan + accounting
    fn enqueue<R: Recorder>(
        &mut self,
        kernel: Kernel,
        node: u32,
        entry: QEntry,
        max_ttl: u32,
        cap: &CapacityPlan,
        out: &mut OverloadOutcome,
        rec: &mut R,
    ) -> (Option<QEntry>, bool) {
        let q = &mut self.queues[node as usize];
        rec.rec_queue(kernel, q.len() as u32, 1);
        let mut evicted = None;
        if q.len() >= cap.queue_bound() as usize {
            match cap.policy() {
                ShedPolicy::DropNewest => {
                    out.shed += 1;
                    return (None, true);
                }
                ShedPolicy::DropOldest => {
                    // qcplint: allow(panic) — queue_bound >= 1, so a
                    // full queue is non-empty.
                    let victim = q.pop_front().expect("full queue has a head");
                    if victim.is_real() {
                        out.shed += 1;
                        evicted = Some(victim);
                    } else {
                        out.displaced += 1;
                    }
                }
                ShedPolicy::TtlPriority => {
                    let (idx, _) = q
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, e)| (e.remaining_ttl(max_ttl), *i))
                        .expect("full queue has a minimum"); // qcplint: allow(panic) — queue_bound >= 1
                                                             // The arriving message competes on the same key: if
                                                             // it has no more budget than the weakest queued
                                                             // entry, it is the one shed.
                    if entry.remaining_ttl(max_ttl) <= q[idx].remaining_ttl(max_ttl) {
                        out.shed += 1;
                        return (None, true);
                    }
                    let victim = q.remove(idx).expect("indexed entry exists"); // qcplint: allow(panic) — idx < len
                    if victim.is_real() {
                        out.shed += 1;
                        evicted = Some(victim);
                    } else {
                        out.displaced += 1;
                    }
                }
            }
        }
        out.enqueued += 1;
        self.queues[node as usize].push_back(entry);
        if !self.busy[node as usize] {
            self.busy[node as usize] = true;
            self.cal.schedule_after(
                cap.service_interval(node),
                tie_break(SERVE_TAG ^ u64::from(node)),
                Ev::Serve(node),
            );
        }
        (evicted, false)
    }

    /// After a serve event at `node`, keep its service clock running if
    /// work remains.
    fn reschedule_service(&mut self, node: u32, cap: &CapacityPlan) {
        if self.queues[node as usize].is_empty() {
            self.busy[node as usize] = false;
        } else {
            self.cal.schedule_after(
                cap.service_interval(node),
                tie_break(SERVE_TAG ^ u64::from(node)),
                Ev::Serve(node),
            );
        }
    }

    /// Capacity-aware event flood. With an unlimited `cap` this is
    /// [`event_flood_rec`] verbatim (bitwise, by delegation); otherwise
    /// arrivals queue at their target and are marked/forwarded at
    /// service time. Parameters mirror [`event_flood_rec`].
    #[allow(clippy::too_many_arguments)] // mirrors event_flood_rec + the capacity plan
    pub fn flood_rec<R: Recorder>(
        &mut self,
        graph: &Graph,
        source: u32,
        max_ttl: u32,
        holders: &[u32],
        forwarders: Option<&[bool]>,
        plan: &FaultPlan,
        cap: &CapacityPlan,
        time: u64,
        nonce: u64,
        cutoff: Option<u64>,
        rec: &mut R,
    ) -> (EventFloodOutcome, FaultStats, OverloadOutcome) {
        if cap.is_unlimited() {
            let (out, stats) = event_flood_rec(
                graph, source, max_ttl, holders, forwarders, plan, time, nonce, cutoff, rec,
            );
            return (out, stats, OverloadOutcome::default());
        }
        debug_assert!(holders.windows(2).all(|w| w[0] < w[1]));
        rec.rec_span(Kernel::Flood);
        let mut stats = FaultStats::default();
        let mut over = OverloadOutcome::default();
        if !plan.alive_at(source, time) {
            rec.rec_event(Kernel::Flood, Event::DeadSource);
            return (
                EventFloodOutcome {
                    flood: FloodOutcome {
                        found: false,
                        found_at_hop: None,
                        reached: 0,
                        messages: 0,
                    },
                    first_hit_time: None,
                    completion_time: 0,
                    truncated: false,
                    holders_reached: 0,
                },
                stats,
                over,
            );
        }
        self.reset(graph.num_nodes());
        let mut reached = 1u32;
        let mut messages = 0u64;
        let mut in_cal = 0u64; // real messages currently in the calendar
        let mut found_at_hop = None;
        let mut first_hit_time = None;
        let mut holders_reached = 0u32;
        self.mark(source);
        if holders.binary_search(&source).is_ok() {
            found_at_hop = Some(0);
            first_hit_time = Some(0);
            holders_reached = 1;
        }
        // The querying node pays its own backlog too: its send round is
        // instant (as in PR 7 — sends are counted, not queued at the
        // sender), but replies arriving back at it will queue.
        if max_ttl > 0 {
            for &v in graph.neighbors(source) {
                messages += 1;
                in_cal += 1;
                let msg = messages;
                self.cal.schedule_after(
                    plan.latency(source, v),
                    tie_break(msg),
                    Ev::Flood {
                        from: source,
                        to: v,
                        hop: 1,
                        msg,
                    },
                );
            }
        }
        let mut truncated = false;
        while let Some(t) = self.cal.peek_time() {
            if cutoff.is_some_and(|c| t > c) {
                truncated = true;
                break;
            }
            // qcplint: allow(panic) — peek_time returned Some on this
            // single-threaded calendar, so an event is pending.
            let (t, ev) = self.cal.pop().expect("peeked event vanished");
            match ev {
                Ev::Flood { from, to, hop, msg } => {
                    in_cal -= 1;
                    if !plan.alive_at(to, time) {
                        stats.dead_targets += 1;
                        continue;
                    }
                    if plan.drop_message(from, to, nonce, msg) {
                        stats.dropped += 1;
                        continue;
                    }
                    over.backlog_seeded += self.touch(to, t, nonce, cap);
                    let entry = QEntry {
                        arrived: t,
                        payload: Payload::Flood { hop },
                    };
                    // Flood evictions just die (no walker to resume).
                    let _ = self.enqueue(Kernel::Flood, to, entry, max_ttl, cap, &mut over, rec);
                }
                Ev::Serve(node) => {
                    let entry = self.queues[node as usize]
                        .pop_front()
                        // qcplint: allow(panic) — a Serve is only
                        // scheduled while its queue is non-empty.
                        .expect("serve on empty queue");
                    self.reschedule_service(node, cap);
                    if let Payload::Flood { hop } = entry.payload {
                        over.served += 1;
                        over.queue_delay += t - entry.arrived;
                        if self.marked[node as usize] {
                            continue; // duplicate: consumed capacity, no forward
                        }
                        self.mark(node);
                        reached += 1;
                        if holders.binary_search(&node).is_ok() {
                            holders_reached += 1;
                            if found_at_hop.is_none() {
                                found_at_hop = Some(hop);
                                first_hit_time = Some(t);
                            }
                        }
                        let forwards = forwarders.is_none_or(|m| m[node as usize]);
                        if hop < max_ttl && forwards {
                            for &v in graph.neighbors(node) {
                                messages += 1;
                                in_cal += 1;
                                let msg = messages;
                                self.cal.schedule_after(
                                    plan.latency(node, v),
                                    tie_break(msg),
                                    Ev::Flood {
                                        from: node,
                                        to: v,
                                        hop: hop + 1,
                                        msg,
                                    },
                                );
                            }
                        }
                    }
                    // Synthetic backlog: the slot is consumed, nothing
                    // else happens.
                }
                // Walk events are never scheduled by the flood kernel.
                Ev::Walk { .. } => unreachable!("walk event in flood run"),
            }
        }
        over.in_flight = in_cal
            + self
                .touched
                .iter()
                .map(|&n| {
                    self.queues[n as usize]
                        .iter()
                        .filter(|e| e.is_real())
                        .count() as u64
                })
                .sum::<u64>();
        let completion_time = match cutoff {
            Some(c) if truncated => c,
            _ => self.cal.now(),
        };
        stats.ticks = completion_time;
        rec.rec_count(Kernel::Flood, Counter::Messages, messages);
        rec.rec_faults(Kernel::Flood, &stats);
        rec.rec_count(Kernel::Flood, Counter::Enqueued, over.enqueued);
        rec.rec_count(Kernel::Flood, Counter::Served, over.served);
        rec.rec_count(Kernel::Flood, Counter::Shed, over.shed);
        rec.rec_count(Kernel::Flood, Counter::QueueDelay, over.queue_delay);
        if let Some(h) = found_at_hop {
            rec.rec_hop(Kernel::Flood, h, 1);
        }
        if let Some(t) = first_hit_time {
            rec.rec_time(Kernel::Flood, t, 1);
        }
        rec.rec_event(
            Kernel::Flood,
            if found_at_hop.is_some() {
                Event::Hit
            } else {
                Event::Miss
            },
        );
        (
            EventFloodOutcome {
                flood: FloodOutcome {
                    found: found_at_hop.is_some(),
                    found_at_hop,
                    reached,
                    messages,
                },
                first_hit_time,
                completion_time,
                truncated,
                holders_reached,
            },
            stats,
            over,
        )
    }

    /// Capacity-aware event walk. With an unlimited `cap` this is
    /// [`event_walk_rec`] verbatim (bitwise, by delegation); otherwise
    /// arriving steps queue at their target and the walker moves at
    /// service time. A shed step strands its walker for that step (the
    /// drop semantics); an *evicted* queued step resumes its walker
    /// from where it stands at eviction time. Parameters mirror
    /// [`event_walk_rec`].
    #[allow(clippy::too_many_arguments)] // mirrors event_walk_rec + the capacity plan
    pub fn walk_rec<R: Recorder>(
        &mut self,
        graph: &Graph,
        source: u32,
        k: usize,
        ttl: u32,
        holders: &[u32],
        seed: u64,
        plan: &FaultPlan,
        cap: &CapacityPlan,
        time: u64,
        nonce: u64,
        cutoff: Option<u64>,
        rec: &mut R,
    ) -> (EventWalkOutcome, FaultStats, OverloadOutcome) {
        if cap.is_unlimited() {
            let (out, stats) = event_walk_rec(
                graph, source, k, ttl, holders, seed, plan, time, nonce, cutoff, rec,
            );
            return (out, stats, OverloadOutcome::default());
        }
        debug_assert!(holders.windows(2).all(|w| w[0] < w[1]));
        rec.rec_span(Kernel::Walk);
        let mut stats = FaultStats::default();
        let mut over = OverloadOutcome::default();
        if !plan.alive_at(source, time) {
            rec.rec_event(Kernel::Walk, Event::DeadSource);
            return (
                EventWalkOutcome {
                    walk: WalkOutcome {
                        found: false,
                        found_at_step: None,
                        messages: 0,
                        visited: 0,
                    },
                    first_hit_time: None,
                    completion_time: 0,
                    truncated: false,
                },
                stats,
                over,
            );
        }
        if holders.binary_search(&source).is_ok() {
            rec.rec_hop(Kernel::Walk, 0, 1);
            rec.rec_time(Kernel::Walk, 0, 1);
            rec.rec_event(Kernel::Walk, Event::Hit);
            return (
                EventWalkOutcome {
                    walk: WalkOutcome {
                        found: true,
                        found_at_step: Some(0),
                        messages: 0,
                        visited: 1,
                    },
                    first_hit_time: Some(0),
                    completion_time: 0,
                    truncated: false,
                },
                stats,
                over,
            );
        }
        self.reset(graph.num_nodes());
        let mut messages = 0u64;
        let mut in_cal = 0u64;
        let mut visited: Vec<u32> = vec![source];
        let mut found_at_step: Option<u32> = None;
        let mut first_hit_time: Option<u64> = None;
        let mut walkers: Vec<WalkerState> = Vec::with_capacity(k);
        for w in 0..k {
            let mut walker = WalkerState {
                rng: Pcg64::with_stream(seed, w as u64),
                current: source,
                previous: u32::MAX,
            };
            let neighbors = graph.neighbors(source);
            if ttl > 0 && !neighbors.is_empty() {
                let next = pick_next(neighbors, walker.previous, &mut walker.rng);
                messages += 1;
                in_cal += 1;
                self.cal.schedule_after(
                    plan.latency(source, next),
                    step_tie(w as u32, 1),
                    Ev::Walk {
                        walker: w as u32,
                        step: 1,
                        from: source,
                        to: next,
                        msg: messages,
                    },
                );
            }
            walkers.push(walker);
        }
        let mut truncated = false;
        while let Some(t) = self.cal.peek_time() {
            if cutoff.is_some_and(|c| t > c) {
                truncated = true;
                break;
            }
            // qcplint: allow(panic) — peek_time returned Some on this
            // single-threaded calendar, so an event is pending.
            let (t, ev) = self.cal.pop().expect("peeked event vanished");
            match ev {
                Ev::Walk {
                    walker: w,
                    step,
                    from,
                    to,
                    msg,
                } => {
                    in_cal -= 1;
                    let mut stranded = false;
                    if !plan.alive_at(to, time) {
                        stats.dead_targets += 1;
                        stranded = true;
                    } else if plan.drop_message(from, to, nonce, msg) {
                        stats.dropped += 1;
                        stranded = true;
                    } else {
                        over.backlog_seeded += self.touch(to, t, nonce, cap);
                        let entry = QEntry {
                            arrived: t,
                            payload: Payload::Walk {
                                walker: w,
                                step,
                                from,
                            },
                        };
                        let (evicted, arriving_shed) =
                            self.enqueue(Kernel::Walk, to, entry, ttl, cap, &mut over, rec);
                        if arriving_shed {
                            // Shed at the door: the drop semantics.
                            stranded = true;
                        }
                        if let Some(QEntry {
                            payload:
                                Payload::Walk {
                                    walker: ew,
                                    step: es,
                                    ..
                                },
                            ..
                        }) = evicted
                        {
                            // The evicted step never got serviced, so
                            // its walker never moved: resume it from
                            // where it stands, step number consumed.
                            Self::resume_walker(
                                &mut self.cal,
                                graph,
                                plan,
                                &mut walkers[ew as usize],
                                ew,
                                es,
                                ttl,
                                &mut messages,
                                &mut in_cal,
                            );
                        }
                    }
                    if stranded {
                        // Walker stays put; the step number is consumed.
                        Self::resume_walker(
                            &mut self.cal,
                            graph,
                            plan,
                            &mut walkers[w as usize],
                            w,
                            step,
                            ttl,
                            &mut messages,
                            &mut in_cal,
                        );
                    }
                }
                Ev::Serve(node) => {
                    let entry = self.queues[node as usize]
                        .pop_front()
                        // qcplint: allow(panic) — a Serve is only
                        // scheduled while its queue is non-empty.
                        .expect("serve on empty queue");
                    self.reschedule_service(node, cap);
                    if let Payload::Walk {
                        walker: w,
                        step,
                        from,
                    } = entry.payload
                    {
                        over.served += 1;
                        over.queue_delay += t - entry.arrived;
                        let walker = &mut walkers[w as usize];
                        walker.previous = from;
                        walker.current = node;
                        visited.push(node);
                        if holders.binary_search(&node).is_ok() {
                            if found_at_step.is_none() {
                                found_at_step = Some(step);
                                first_hit_time = Some(t);
                            }
                            continue; // this walker stops on its own success
                        }
                        Self::resume_walker(
                            &mut self.cal,
                            graph,
                            plan,
                            walker,
                            w,
                            step,
                            ttl,
                            &mut messages,
                            &mut in_cal,
                        );
                    }
                }
                // Flood events are never scheduled by the walk kernel.
                Ev::Flood { .. } => unreachable!("flood event in walk run"),
            }
        }
        visited.sort_unstable();
        visited.dedup();
        over.in_flight = in_cal
            + self
                .touched
                .iter()
                .map(|&n| {
                    self.queues[n as usize]
                        .iter()
                        .filter(|e| e.is_real())
                        .count() as u64
                })
                .sum::<u64>();
        let completion_time = match cutoff {
            Some(c) if truncated => c,
            _ => self.cal.now(),
        };
        stats.ticks = completion_time;
        rec.rec_count(Kernel::Walk, Counter::Messages, messages);
        rec.rec_faults(Kernel::Walk, &stats);
        rec.rec_count(Kernel::Walk, Counter::Enqueued, over.enqueued);
        rec.rec_count(Kernel::Walk, Counter::Served, over.served);
        rec.rec_count(Kernel::Walk, Counter::Shed, over.shed);
        rec.rec_count(Kernel::Walk, Counter::QueueDelay, over.queue_delay);
        if let Some(step) = found_at_step {
            rec.rec_hop(Kernel::Walk, step, 1);
        }
        if let Some(t) = first_hit_time {
            rec.rec_time(Kernel::Walk, t, 1);
        }
        rec.rec_event(
            Kernel::Walk,
            if found_at_step.is_some() {
                Event::Hit
            } else {
                Event::Miss
            },
        );
        (
            EventWalkOutcome {
                walk: WalkOutcome {
                    found: found_at_step.is_some(),
                    found_at_step,
                    messages,
                    visited: visited.len() as u32,
                },
                first_hit_time,
                completion_time,
                truncated,
            },
            stats,
            over,
        )
    }

    /// Schedules walker `w`'s next step from wherever it stands (after
    /// a successful move, a strand, or an eviction), if budget remains.
    #[allow(clippy::too_many_arguments)] // one continuation site, three callers
    fn resume_walker(
        cal: &mut Calendar<Ev>,
        graph: &Graph,
        plan: &FaultPlan,
        walker: &mut WalkerState,
        w: u32,
        step: u32,
        ttl: u32,
        messages: &mut u64,
        in_cal: &mut u64,
    ) {
        if step >= ttl {
            return;
        }
        let neighbors = graph.neighbors(walker.current);
        if neighbors.is_empty() {
            return;
        }
        let next = pick_next(neighbors, walker.previous, &mut walker.rng);
        *messages += 1;
        *in_cal += 1;
        cal.schedule_after(
            plan.latency(walker.current, next),
            step_tie(w, step + 1),
            Ev::Walk {
                walker: w,
                step: step + 1,
                from: walker.current,
                to: next,
                msg: *messages,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_faults::capacity::{CapacityConfig, CapacityModel};
    use qcp_obs::NoopRecorder;

    fn path(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    fn limited(load: f64, policy: ShedPolicy) -> CapacityPlan {
        CapacityPlan::build(&CapacityConfig {
            offered_load: load,
            queue_bound: 4,
            policy,
            model: CapacityModel::Uniform,
            seed: 0xbeef,
        })
    }

    #[test]
    fn unlimited_flood_delegates_bitwise() {
        let g = crate::topology::erdos_renyi(300, 5.0, 3).graph;
        let plan = FaultPlan::none(300);
        let cap = CapacityPlan::unlimited();
        let mut eng = OverloadEngine::new();
        for ttl in 0..=5 {
            let (a, sa) =
                crate::event::event_flood(&g, 7, ttl, &[50, 200], None, &plan, 0, 1, None);
            let (b, sb, over) = eng.flood_rec(
                &g,
                7,
                ttl,
                &[50, 200],
                None,
                &plan,
                &cap,
                0,
                1,
                None,
                &mut NoopRecorder,
            );
            assert_eq!(a, b);
            assert_eq!(sa, sb);
            assert_eq!(over, OverloadOutcome::default());
        }
    }

    #[test]
    fn zero_load_uniform_capacity_only_adds_service_time() {
        // With no background load and huge queues nothing sheds; the
        // flood's message/coverage accounting matches the PR 7 kernel,
        // only the timeline stretches by the service intervals.
        let g = path(6);
        let plan = FaultPlan::none(6);
        let cap = limited(0.0, ShedPolicy::DropNewest);
        let mut eng = OverloadEngine::new();
        let (free, _) = crate::event::event_flood(&g, 0, 5, &[4], None, &plan, 0, 7, None);
        let (out, stats, over) = eng.flood_rec(
            &g,
            0,
            5,
            &[4],
            None,
            &plan,
            &cap,
            0,
            7,
            None,
            &mut NoopRecorder,
        );
        assert_eq!(out.flood, free.flood);
        assert_eq!(over.shed, 0);
        assert_eq!(over.backlog_seeded, 0);
        assert_eq!(over.enqueued, over.served + over.in_flight);
        // Uniform tier-2 service: each hop pays latency 1 + service 4.
        assert_eq!(out.first_hit_time, Some(4 * 5));
        assert_eq!(stats.ticks, out.completion_time);
    }

    #[test]
    fn heavy_load_sheds_and_accounting_identity_holds() {
        let g = crate::topology::erdos_renyi(200, 6.0, 11).graph;
        let plan = FaultPlan::none(200);
        let mut eng = OverloadEngine::new();
        for policy in ShedPolicy::ALL {
            let cap = limited(64.0, policy);
            let (out, stats, over) = eng.flood_rec(
                &g,
                3,
                4,
                &[150],
                None,
                &plan,
                &cap,
                0,
                42,
                Some(200),
                &mut NoopRecorder,
            );
            assert_eq!(
                out.flood.messages,
                over.served + stats.dead_targets + stats.dropped + over.shed + over.in_flight,
                "identity violated under {policy:?}"
            );
            assert!(over.shed > 0, "load 64 must shed under {policy:?}");
            assert!(over.backlog_seeded > 0);
        }
    }

    #[test]
    fn walk_identity_and_determinism_under_load() {
        let g = crate::topology::erdos_renyi(200, 6.0, 13).graph;
        let plan = FaultPlan::build(
            200,
            &qcp_faults::FaultConfig {
                loss: 0.15,
                mean_latency: 3,
                ..Default::default()
            },
        );
        let cap = limited(16.0, ShedPolicy::TtlPriority);
        let run = || {
            let mut eng = OverloadEngine::new();
            eng.walk_rec(
                &g,
                5,
                8,
                30,
                &[160],
                0xabc,
                &plan,
                &cap,
                0,
                9,
                Some(400),
                &mut NoopRecorder,
            )
        };
        let (a, sa, oa) = run();
        let (b, sb, ob) = run();
        assert_eq!((a, sa, oa), (b, sb, ob));
        assert_eq!(
            a.walk.messages,
            oa.served + sa.dead_targets + sa.dropped + oa.shed + oa.in_flight,
        );
    }

    #[test]
    fn unlimited_walk_delegates_bitwise() {
        let g = crate::topology::erdos_renyi(200, 6.0, 13).graph;
        let plan = FaultPlan::none(200);
        let cap = CapacityPlan::unlimited();
        let mut eng = OverloadEngine::new();
        let (a, sa) = crate::event::event_walk(&g, 5, 4, 20, &[160], 7, &plan, 0, 9, Some(100));
        let (b, sb, over) = eng.walk_rec(
            &g,
            5,
            4,
            20,
            &[160],
            7,
            &plan,
            &cap,
            0,
            9,
            Some(100),
            &mut NoopRecorder,
        );
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(over, OverloadOutcome::default());
    }

    #[test]
    fn engine_reuse_is_bitwise_stable_and_reset_retains_capacity() {
        let g = crate::topology::erdos_renyi(150, 5.0, 17).graph;
        let plan = FaultPlan::none(150);
        let cap = limited(8.0, ShedPolicy::DropOldest);
        let mut eng = OverloadEngine::new();
        let first = eng.flood_rec(
            &g,
            2,
            4,
            &[100],
            None,
            &plan,
            &cap,
            0,
            5,
            Some(300),
            &mut NoopRecorder,
        );
        let heap_cap = eng.cal.capacity();
        // Ten reuses of the same engine reproduce the first run and
        // never grow the calendar: the arena discipline.
        for _ in 0..10 {
            let again = eng.flood_rec(
                &g,
                2,
                4,
                &[100],
                None,
                &plan,
                &cap,
                0,
                5,
                Some(300),
                &mut NoopRecorder,
            );
            assert_eq!(first, again);
            assert_eq!(eng.cal.capacity(), heap_cap);
        }
    }

    #[test]
    fn drop_oldest_keeps_arrivals_and_ttl_priority_prefers_budget() {
        // On a path under heavy synthetic backlog, drop-newest sheds
        // the real arrivals at the door while drop-oldest lets them in
        // (evicting backlog first) — so drop-oldest must serve at least
        // as many real messages.
        let g = path(8);
        let plan = FaultPlan::none(8);
        let mut eng = OverloadEngine::new();
        let run = |eng: &mut OverloadEngine, policy| {
            let cap = limited(256.0, policy);
            eng.flood_rec(
                &g,
                0,
                7,
                &[7],
                None,
                &plan,
                &cap,
                0,
                3,
                Some(400),
                &mut NoopRecorder,
            )
        };
        let (_, _, newest) = run(&mut eng, ShedPolicy::DropNewest);
        let (_, _, oldest) = run(&mut eng, ShedPolicy::DropOldest);
        let (_, _, ttlp) = run(&mut eng, ShedPolicy::TtlPriority);
        assert!(oldest.served >= newest.served);
        assert!(ttlp.served >= newest.served);
    }
}
