//! Node churn: fail-stop departures.
//!
//! The paper's companion work (its ref [14], "Improving search using a
//! fault-tolerant overlay") motivates asking how the Figure 8 conclusions
//! hold up when peers leave. This module applies fail-stop churn to a
//! topology: failed nodes lose all edges (and, at the search layer, their
//! replicas), surviving structure is otherwise untouched.

use crate::graph::Graph;
use qcp_util::rng::Pcg64;

/// Result of applying churn.
#[derive(Debug, Clone)]
pub struct ChurnedOverlay {
    /// The surviving graph (same node-id space; failed nodes isolated).
    pub graph: Graph,
    /// `alive[n]` is false for failed nodes.
    pub alive: Vec<bool>,
    /// Number of failed nodes.
    pub failed: usize,
}

/// Fails a uniformly random `fraction` of nodes.
///
/// `fraction` is inclusive on both ends: `0.0` fails nobody and `1.0`
/// fails the whole network (useful as a degenerate bound in sweeps).
pub fn fail_random(graph: &Graph, fraction: f64, seed: u64) -> ChurnedOverlay {
    assert!((0.0..=1.0).contains(&fraction));
    let n = graph.num_nodes();
    let mut rng = Pcg64::with_stream(seed, 0xc8de);
    let k = (n as f64 * fraction).round() as usize;
    let mut alive = vec![true; n];
    for idx in rng.sample_distinct(n, k) {
        alive[idx] = false;
    }
    rebuild(graph, alive)
}

/// Fails the `fraction` highest-degree nodes — targeted churn, the worst
/// case for hub-dependent topologies (ultrapeers, BA hubs).
///
/// `fraction` is inclusive on both ends, like [`fail_random`]. Ties in
/// degree are broken by node id (ascending), so the failed set is a
/// deterministic function of the graph alone — `sort_unstable` with a
/// degree-only key would let equal-degree nodes land in
/// implementation-defined order.
pub fn fail_highest_degree(graph: &Graph, fraction: f64) -> ChurnedOverlay {
    assert!((0.0..=1.0).contains(&fraction));
    let n = graph.num_nodes();
    let k = (n as f64 * fraction).round() as usize;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&u| (std::cmp::Reverse(graph.degree(u)), u));
    let mut alive = vec![true; n];
    for &u in order.iter().take(k) {
        alive[u as usize] = false;
    }
    rebuild(graph, alive)
}

fn rebuild(graph: &Graph, alive: Vec<bool>) -> ChurnedOverlay {
    let mut edges = Vec::new();
    for u in 0..graph.num_nodes() as u32 {
        if !alive[u as usize] {
            continue;
        }
        for &v in graph.neighbors(u) {
            if u < v && alive[v as usize] {
                edges.push((u, v));
            }
        }
    }
    let failed = alive.iter().filter(|&&a| !a).count();
    ChurnedOverlay {
        graph: Graph::from_edges(graph.num_nodes(), &edges),
        alive,
        failed,
    }
}

/// Filters a sorted holder list down to alive peers.
///
/// # Precondition
///
/// Every holder id must index into `alive`: `h < alive.len()` for all
/// `h` in `holders`. Holder lists come from [`crate::Placement`] over the
/// same node universe as the alive mask, so a violation means the caller
/// mixed a placement with a mask from a different topology — a logic bug,
/// caught eagerly by a `debug_assert!` here (and by the slice bounds check
/// in release builds).
pub fn surviving_holders(holders: &[u32], alive: &[bool]) -> Vec<u32> {
    holders
        .iter()
        .copied()
        .filter(|&h| {
            debug_assert!(
                (h as usize) < alive.len(),
                "holder {h} out of range for alive mask of {} nodes — \
                 placement and churn mask must cover the same node universe",
                alive.len()
            );
            alive[h as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{erdos_renyi, gnutella_two_tier, TopologyConfig};

    #[test]
    fn fail_random_removes_requested_fraction() {
        let t = erdos_renyi(1_000, 6.0, 1);
        let c = fail_random(&t.graph, 0.3, 2);
        assert_eq!(c.failed, 300);
        assert_eq!(c.alive.iter().filter(|&&a| !a).count(), 300);
        // Failed nodes are isolated.
        for u in 0..1_000u32 {
            if !c.alive[u as usize] {
                assert_eq!(c.graph.degree(u), 0);
            }
        }
    }

    #[test]
    fn surviving_edges_connect_only_alive_nodes() {
        let t = erdos_renyi(500, 5.0, 3);
        let c = fail_random(&t.graph, 0.2, 4);
        for u in 0..500u32 {
            for &v in c.graph.neighbors(u) {
                assert!(c.alive[u as usize] && c.alive[v as usize]);
            }
        }
    }

    #[test]
    fn zero_churn_preserves_graph() {
        let t = erdos_renyi(300, 5.0, 5);
        let c = fail_random(&t.graph, 0.0, 6);
        assert_eq!(c.failed, 0);
        assert_eq!(c.graph.num_edges(), t.graph.num_edges());
    }

    #[test]
    fn targeted_churn_hits_hubs() {
        let t = gnutella_two_tier(&TopologyConfig {
            num_nodes: 1_000,
            ..Default::default()
        });
        let c = fail_highest_degree(&t.graph, 0.10);
        // The 10% highest-degree nodes in a two-tier net are ultrapeers;
        // connectivity collapses far more than under random churn.
        let random = fail_random(&t.graph, 0.10, 7);
        assert!(
            c.graph.largest_component() < random.graph.largest_component(),
            "targeted churn must fragment more: {} vs {}",
            c.graph.largest_component(),
            random.graph.largest_component()
        );
    }

    #[test]
    fn surviving_holders_filters() {
        let alive = vec![true, false, true, false];
        assert_eq!(surviving_holders(&[0, 1, 2, 3], &alive), vec![0, 2]);
        assert!(surviving_holders(&[1, 3], &alive).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range for alive mask")]
    #[cfg(debug_assertions)]
    fn surviving_holders_rejects_out_of_range_holder() {
        // A holder id from a bigger universe than the mask: the
        // debug_assert must fire with a diagnosable message rather than
        // letting the raw index panic explain nothing.
        let alive = vec![true, true];
        let _ = surviving_holders(&[0, 5], &alive);
    }

    #[test]
    fn churn_is_deterministic() {
        let t = erdos_renyi(400, 5.0, 8);
        let a = fail_random(&t.graph, 0.25, 9);
        let b = fail_random(&t.graph, 0.25, 9);
        assert_eq!(a.alive, b.alive);
    }

    #[test]
    fn targeted_churn_breaks_degree_ties_by_node_id() {
        // A cycle is maximally tie-heavy: every node has degree 2, so the
        // failed set is decided purely by the tie-break. It must be the
        // lowest node ids, and identical across repeated calls.
        let n = 100u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n as usize, &edges);
        let c = fail_highest_degree(&g, 0.25);
        assert_eq!(c.failed, 25);
        for u in 0..n {
            assert_eq!(
                c.alive[u as usize],
                u >= 25,
                "equal-degree ties must fail ascending node ids first"
            );
        }
        let again = fail_highest_degree(&g, 0.25);
        assert_eq!(c.alive, again.alive);
    }

    #[test]
    fn fraction_endpoints_are_inclusive() {
        let t = erdos_renyi(50, 4.0, 30);
        let none_r = fail_random(&t.graph, 0.0, 31);
        assert_eq!(none_r.failed, 0);
        let all_r = fail_random(&t.graph, 1.0, 31);
        assert_eq!(all_r.failed, 50);
        assert_eq!(all_r.graph.num_edges(), 0);
        let none_t = fail_highest_degree(&t.graph, 0.0);
        assert_eq!(none_t.failed, 0);
        assert_eq!(none_t.graph.num_edges(), t.graph.num_edges());
        let all_t = fail_highest_degree(&t.graph, 1.0);
        assert_eq!(all_t.failed, 50);
        assert_eq!(all_t.graph.num_edges(), 0);
    }

    #[test]
    #[should_panic]
    fn fraction_above_one_is_rejected() {
        let t = erdos_renyi(10, 3.0, 32);
        let _ = fail_random(&t.graph, 1.01, 33);
    }

    #[test]
    fn churned_overlay_invariants_hold() {
        // Cross-cutting invariants after rebuild, under both churn kinds:
        // (1) no surviving edge touches a dead node, (2) `failed` matches
        // the alive mask, (3) the rebuilt degree sum equals 2x the
        // surviving edge count and never exceeds the original.
        let t = gnutella_two_tier(&TopologyConfig {
            num_nodes: 600,
            ..Default::default()
        });
        for c in [
            fail_random(&t.graph, 0.35, 40),
            fail_highest_degree(&t.graph, 0.35),
        ] {
            assert_eq!(c.alive.len(), t.graph.num_nodes());
            assert_eq!(c.failed, c.alive.iter().filter(|&&a| !a).count());
            assert_eq!(c.graph.num_nodes(), t.graph.num_nodes());
            let mut degree_sum = 0usize;
            for u in 0..c.graph.num_nodes() as u32 {
                let d = c.graph.degree(u);
                degree_sum += d;
                if !c.alive[u as usize] {
                    assert_eq!(d, 0, "dead node {u} kept edges");
                }
                for &v in c.graph.neighbors(u) {
                    assert!(c.alive[v as usize], "edge {u}-{v} touches dead node");
                    assert!(c.graph.neighbors(v).contains(&u), "edge {u}-{v} one-way");
                }
                assert!(d <= t.graph.degree(u), "churn grew degree of {u}");
            }
            assert_eq!(degree_sum, 2 * c.graph.num_edges());
        }
    }
}
