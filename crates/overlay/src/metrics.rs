//! Graph metrics: degree distributions, clustering, path lengths.
//!
//! The topology ablation (A4) and the Figure 8 calibration both need to
//! characterize *why* one graph floods differently from another; these are
//! the standard structural metrics.

use crate::graph::Graph;
use qcp_util::rng::Pcg64;
use qcp_util::stats::Summary;
use std::collections::VecDeque;

/// Structural summary of a graph.
#[derive(Debug, Clone)]
pub struct GraphMetrics {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Degree summary (mean/min/max/std).
    pub degree: Summary,
    /// Global clustering coefficient estimate (transitivity over sampled
    /// wedges).
    pub clustering: f64,
    /// Mean shortest-path length over sampled pairs (largest component).
    pub mean_path_length: f64,
    /// Estimated diameter (max sampled eccentricity; lower bound).
    pub diameter_lower_bound: u32,
}

/// Computes metrics; `samples` bounds the wedge/path sampling effort.
pub fn graph_metrics(graph: &Graph, samples: usize, seed: u64) -> GraphMetrics {
    let n = graph.num_nodes();
    let degrees: Vec<f64> = (0..n as u32).map(|u| graph.degree(u) as f64).collect();
    let mut rng = Pcg64::with_stream(seed, 0x3e79);

    let clustering = sampled_clustering(graph, samples, &mut rng);
    let (mean_path_length, diameter_lower_bound) =
        sampled_path_length(graph, samples.clamp(1, 64), &mut rng);
    GraphMetrics {
        nodes: n,
        edges: graph.num_edges(),
        degree: Summary::of(&degrees),
        clustering,
        mean_path_length,
        diameter_lower_bound,
    }
}

/// Transitivity estimate: fraction of sampled wedges (u-v-w paths) that
/// close into triangles.
fn sampled_clustering(graph: &Graph, samples: usize, rng: &mut Pcg64) -> f64 {
    let n = graph.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mut wedges = 0u64;
    let mut closed = 0u64;
    let mut attempts = 0usize;
    while wedges < samples as u64 && attempts < samples * 20 {
        attempts += 1;
        let v = rng.index(n) as u32;
        let nb = graph.neighbors(v);
        if nb.len() < 2 {
            continue;
        }
        let i = rng.index(nb.len());
        let mut j = rng.index(nb.len());
        if i == j {
            j = (j + 1) % nb.len();
        }
        let (a, b) = (nb[i], nb[j]);
        wedges += 1;
        // Closed iff a and b are adjacent (scan the smaller list).
        let (small, target) = if graph.degree(a) <= graph.degree(b) {
            (graph.neighbors(a), b)
        } else {
            (graph.neighbors(b), a)
        };
        if small.contains(&target) {
            closed += 1;
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

/// BFS from sampled sources: (mean distance over reached pairs, max
/// distance seen).
fn sampled_path_length(graph: &Graph, sources: usize, rng: &mut Pcg64) -> (f64, u32) {
    let n = graph.num_nodes();
    if n == 0 {
        return (0.0, 0);
    }
    let mut dist_sum = 0u64;
    let mut dist_count = 0u64;
    let mut max_dist = 0u32;
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for _ in 0..sources {
        let src = rng.index(n) as u32;
        dist.fill(u32::MAX);
        dist[src as usize] = 0;
        queue.clear();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in graph.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    dist_sum += (du + 1) as u64;
                    dist_count += 1;
                    max_dist = max_dist.max(du + 1);
                    queue.push_back(v);
                }
            }
        }
    }
    if dist_count == 0 {
        (0.0, 0)
    } else {
        (dist_sum as f64 / dist_count as f64, max_dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{barabasi_albert, erdos_renyi, random_regular};

    #[test]
    fn ring_metrics_are_exact() {
        // 10-cycle: degree 2 everywhere, no triangles, mean path 2.78.
        let edges: Vec<(u32, u32)> = (0..10).map(|i| (i, (i + 1) % 10)).collect();
        let g = Graph::from_edges(10, &edges);
        let m = graph_metrics(&g, 500, 1);
        assert_eq!(m.nodes, 10);
        assert_eq!(m.edges, 10);
        assert!((m.degree.mean - 2.0).abs() < 1e-12);
        assert_eq!(m.clustering, 0.0);
        // Mean over distances 1..=5 weighted (1,1,1,1,0.5 pairs per node):
        // (1+2+3+4+5+1+2+3+4)/9 = 25/9 ≈ 2.78.
        assert!((m.mean_path_length - 25.0 / 9.0).abs() < 1e-9);
        assert_eq!(m.diameter_lower_bound, 5);
    }

    #[test]
    fn complete_graph_fully_clustered() {
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(8, &edges);
        let m = graph_metrics(&g, 500, 2);
        assert!((m.clustering - 1.0).abs() < 1e-12);
        assert!((m.mean_path_length - 1.0).abs() < 1e-12);
    }

    #[test]
    fn er_graph_has_low_clustering() {
        let t = erdos_renyi(3_000, 8.0, 3);
        let m = graph_metrics(&t.graph, 3_000, 4);
        // Expected clustering ~ degree/n ≈ 0.003.
        assert!(m.clustering < 0.02, "ER clustering {}", m.clustering);
        assert!(m.mean_path_length > 2.0 && m.mean_path_length < 8.0);
    }

    #[test]
    fn ba_paths_shorter_than_regular() {
        let ba = barabasi_albert(3_000, 4, 5);
        let rr = random_regular(3_000, 8, 5);
        let mba = graph_metrics(&ba.graph, 1_000, 6);
        let mrr = graph_metrics(&rr.graph, 1_000, 6);
        assert!(
            mba.mean_path_length < mrr.mean_path_length,
            "hubs shorten paths: BA {} vs RR {}",
            mba.mean_path_length,
            mrr.mean_path_length
        );
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = Graph::from_edges(0, &[]);
        let m = graph_metrics(&g, 100, 7);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.mean_path_length, 0.0);
    }
}
