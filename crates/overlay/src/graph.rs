//! Compact undirected graphs in CSR (compressed sparse row) form.

use qcp_util::FxHashSet;

/// An undirected graph over nodes `0..n` stored as CSR adjacency.
///
/// Parallel edges and self-loops are removed at construction. Memory is
/// `O(n + m)` with `u32` node ids — a 40,000-node Gnutella graph with half
/// a million edges fits in a few megabytes.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl Graph {
    /// Builds from an edge list. Edges are deduplicated (as unordered
    /// pairs) and self-loops dropped.
    pub fn from_edges(num_nodes: usize, edge_list: &[(u32, u32)]) -> Self {
        assert!(num_nodes <= u32::MAX as usize);
        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
        seen.reserve(edge_list.len());
        let mut degree = vec![0u32; num_nodes];
        let mut clean: Vec<(u32, u32)> = Vec::with_capacity(edge_list.len());
        for &(a, b) in edge_list {
            assert!((a as usize) < num_nodes && (b as usize) < num_nodes);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                clean.push(key);
                degree[a as usize] += 1;
                degree[b as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut total = 0u32;
        offsets.push(0u32);
        for d in &degree {
            total += d;
            offsets.push(total);
        }
        let mut edges = vec![0u32; total as usize];
        let mut cursor: Vec<u32> = offsets[..num_nodes].to_vec();
        for &(a, b) in &clean {
            edges[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            edges[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        Self { offsets, edges }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.neighbors(u).len()
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.edges.len() as f64 / self.num_nodes() as f64
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as u32)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Size of the largest connected component.
    pub fn largest_component(&self) -> usize {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut best = 0usize;
        let mut stack: Vec<u32> = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut size = 0usize;
            seen[start] = true;
            stack.push(start as u32);
            while let Some(u) = stack.pop() {
                size += 1;
                for &v in self.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            best = best.max(size);
        }
        best
    }

    /// True when every node is reachable from node 0 (and the graph is
    /// nonempty).
    pub fn is_connected(&self) -> bool {
        self.num_nodes() > 0 && self.largest_component() == self.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_adjacency_both_directions() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn deduplicates_and_drops_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn connectivity_detection() {
        let connected = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(connected.is_connected());
        assert_eq!(connected.largest_component(), 3);
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!split.is_connected());
        assert_eq!(split.largest_component(), 2);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert!(!g.is_connected());
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }
}
