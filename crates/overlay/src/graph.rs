//! Compact undirected graphs in CSR (compressed sparse row) form.
//!
//! Two construction paths share one scatter kernel (DESIGN.md §13):
//!
//! * [`Graph::from_edges`] — the general path. Dedup is a sort over
//!   `(min, max, emission index)` triples (~12 bytes/edge transient)
//!   instead of a hash set; the index tag restores first-occurrence
//!   order after the sort, so the CSR bytes are identical to what the
//!   historical hash-set dedup produced (neighbor lists are
//!   insertion-ordered, and random walks index into them).
//! * [`Graph::from_unique_edge_stream`] — the streaming path for
//!   generators that already guarantee uniqueness: the edge stream is
//!   replayed twice (count degrees, then scatter) and no per-edge
//!   transient is allocated at all.

/// An undirected graph over nodes `0..n` stored as CSR adjacency.
///
/// Parallel edges and self-loops are removed at construction. Memory is
/// `O(n + m)` with `u32` node ids — a 40,000-node Gnutella graph with half
/// a million edges fits in a few megabytes, and a 10M-node two-tier graph
/// in a few hundred.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

/// Exclusive prefix sum of a degree table, with the trailing total.
///
/// The sum is `checked`: the CSR stores *directed* edge entries (two per
/// undirected edge) behind `u32` offsets, and a silent wrap here would
/// corrupt every adjacency past the wrap point in release builds.
fn prefix_offsets(degree: &[u32]) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(degree.len() + 1);
    let mut total = 0u32;
    offsets.push(0u32);
    for &d in degree {
        total = total.checked_add(d).unwrap_or_else(|| {
            // qcplint: allow(panic) — graph-size contract: >2^31 undirected
            // edges cannot be represented by u32 CSR offsets; fail loudly
            // instead of wrapping silently.
            panic!(
                "Graph: directed edge entries exceed u32::MAX; \
                 the u32 CSR representation cannot hold this graph"
            )
        });
        offsets.push(total);
    }
    offsets
}

/// In-place dedup of unordered pairs, keeping the first occurrence and
/// its position: the index-tag sort used by [`Graph::from_edges`],
/// shared with generators that dedup a small buffered prefix (the
/// ultrapeer mesh) before streaming the rest. Pairs come back
/// normalized as `(min, max)`; self-loops are dropped.
pub(crate) fn dedup_pairs_first_occurrence(pairs: &mut Vec<(u32, u32)>) {
    assert!(pairs.len() <= u32::MAX as usize);
    let mut tagged: Vec<(u32, u32, u32)> = pairs
        .iter()
        .enumerate()
        .filter(|&(_, &(a, b))| a != b)
        .map(|(i, &(a, b))| (a.min(b), a.max(b), i as u32))
        .collect();
    tagged.sort_unstable();
    tagged.dedup_by_key(|&mut (a, b, _)| (a, b));
    tagged.sort_unstable_by_key(|&(_, _, i)| i);
    pairs.clear();
    pairs.extend(tagged.into_iter().map(|(a, b, _)| (a, b)));
}

impl Graph {
    /// Builds from an edge list. Edges are deduplicated (as unordered
    /// pairs, keeping the first occurrence) and self-loops dropped.
    pub fn from_edges(num_nodes: usize, edge_list: &[(u32, u32)]) -> Self {
        assert!(num_nodes <= u32::MAX as usize);
        assert!(
            edge_list.len() <= u32::MAX as usize,
            "Graph: edge list too long for u32 emission tags"
        );
        // Normalize and tag each surviving edge with its emission index;
        // sort groups duplicates (smallest tag first), dedup keeps that
        // first occurrence, and the re-sort by tag restores emission
        // order — bit-identical CSR to a keep-first hash-set dedup.
        let mut tagged: Vec<(u32, u32, u32)> = Vec::with_capacity(edge_list.len());
        for (i, &(a, b)) in edge_list.iter().enumerate() {
            assert!((a as usize) < num_nodes && (b as usize) < num_nodes);
            if a == b {
                continue;
            }
            tagged.push((a.min(b), a.max(b), i as u32));
        }
        tagged.sort_unstable();
        tagged.dedup_by_key(|&mut (a, b, _)| (a, b));
        tagged.sort_unstable_by_key(|&(_, _, i)| i);
        Self::from_unique_edge_stream(num_nodes, |sink| {
            for &(a, b, _) in &tagged {
                sink(a, b);
            }
        })
    }

    /// Builds from a replayable stream of edges that are already unique
    /// (as unordered pairs) and free of self-loops.
    ///
    /// `emit` is called exactly twice — once to count degrees, once to
    /// scatter — and must produce the identical edge sequence both times
    /// (deterministic generators replay from a cloned RNG). Neighbor
    /// lists come out in stream order, matching what [`Self::from_edges`]
    /// would build from the same sequence; emission orientation of a
    /// pair does not affect the result. No per-edge transient memory is
    /// allocated: peak overhead beyond the final CSR is the `u32` cursor
    /// table (4 bytes/node).
    pub fn from_unique_edge_stream<F>(num_nodes: usize, mut emit: F) -> Self
    where
        F: FnMut(&mut dyn FnMut(u32, u32)),
    {
        assert!(num_nodes <= u32::MAX as usize);
        let mut degree = vec![0u32; num_nodes];
        let mut streamed = 0u64;
        emit(&mut |a, b| {
            assert!((a as usize) < num_nodes && (b as usize) < num_nodes);
            assert!(a != b, "stream contract: no self-loops");
            degree[a as usize] += 1;
            degree[b as usize] += 1;
            streamed += 1;
        });
        let offsets = prefix_offsets(&degree);
        drop(degree);
        let total = offsets[num_nodes];
        let mut edges = vec![0u32; total as usize];
        let mut cursor: Vec<u32> = offsets[..num_nodes].to_vec();
        let mut replayed = 0u64;
        emit(&mut |a, b| {
            edges[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            edges[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
            replayed += 1;
        });
        assert_eq!(
            streamed, replayed,
            "stream contract: both passes must emit the same sequence"
        );
        debug_assert!(cursor.iter().zip(&offsets[1..]).all(|(c, o)| c == o));
        Self { offsets, edges }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Resident bytes of the CSR arrays (offsets + packed neighbors).
    ///
    /// Length-based, not capacity-based, so the figure is deterministic
    /// and usable inside byte-gated artifacts (`repro scale`).
    pub fn mem_bytes(&self) -> usize {
        (self.offsets.len() + self.edges.len()) * std::mem::size_of::<u32>()
    }

    /// Neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.neighbors(u).len()
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.edges.len() as f64 / self.num_nodes() as f64
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as u32)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Size of the largest connected component.
    pub fn largest_component(&self) -> usize {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut best = 0usize;
        let mut stack: Vec<u32> = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut size = 0usize;
            seen[start] = true;
            stack.push(start as u32);
            while let Some(u) = stack.pop() {
                size += 1;
                for &v in self.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            best = best.max(size);
        }
        best
    }

    /// True when every node is reachable from node 0 (and the graph is
    /// nonempty).
    pub fn is_connected(&self) -> bool {
        self.num_nodes() > 0 && self.largest_component() == self.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_util::FxHashSet;

    #[test]
    fn builds_adjacency_both_directions() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn deduplicates_and_drops_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn dedup_keeps_first_occurrence_order() {
        // The hash-set dedup this replaced kept the *first* occurrence of
        // each unordered pair, so neighbor lists are insertion-ordered.
        // (2,0) arrives before (0,1): node 0's list must read [2, 1].
        let g = Graph::from_edges(3, &[(2, 0), (0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.neighbors(0), &[2, 1]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    /// The historical hash-set construction, kept as a test oracle.
    fn from_edges_hashset_oracle(num_nodes: usize, edge_list: &[(u32, u32)]) -> Vec<Vec<u32>> {
        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
        let mut adj = vec![Vec::new(); num_nodes];
        for &(a, b) in edge_list {
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                adj[key.0 as usize].push(key.1);
                adj[key.1 as usize].push(key.0);
            }
        }
        adj
    }

    #[test]
    fn sort_dedup_matches_hashset_oracle() {
        // Deterministic pseudo-random edge soup with duplicates in both
        // orientations and self-loops.
        let n = 57u32;
        let mut edges = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..1_500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 33) % n as u64) as u32;
            let b = ((x >> 11) % n as u64) as u32;
            edges.push((a, b));
        }
        let g = Graph::from_edges(n as usize, &edges);
        let oracle = from_edges_hashset_oracle(n as usize, &edges);
        for v in 0..n {
            assert_eq!(g.neighbors(v), &oracle[v as usize][..], "node {v}");
        }
    }

    #[test]
    fn unique_stream_matches_edge_list_path() {
        let edges = [(0u32, 1u32), (3, 2), (1, 2), (0, 3), (4, 0)];
        let a = Graph::from_edges(5, &edges);
        let b = Graph::from_unique_edge_stream(5, |sink| {
            for &(x, y) in &edges {
                sink(x, y);
            }
        });
        for v in 0..5 {
            assert_eq!(a.neighbors(v), b.neighbors(v), "node {v}");
        }
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    #[should_panic(expected = "same sequence")]
    fn non_replayable_stream_panics() {
        let mut calls = 0;
        let _ = Graph::from_unique_edge_stream(3, |sink| {
            calls += 1;
            if calls == 1 {
                sink(0, 1);
                sink(1, 2);
            } else {
                sink(0, 1);
            }
        });
    }

    #[test]
    fn offsets_overflow_panics_instead_of_wrapping() {
        // Synthetic boundary: two degree entries whose sum wraps u32.
        // (Building 2^32 real edge entries would need >32 GiB, so the
        // checked prefix sum is exercised directly.)
        let result = std::panic::catch_unwind(|| prefix_offsets(&[u32::MAX, 1]));
        let err = result.expect_err("wrapping sum must panic");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("exceed u32::MAX"),
            "panic must name the overflow, got: {msg}"
        );
        // The exact boundary itself is representable.
        let ok = prefix_offsets(&[u32::MAX - 1, 1]);
        assert_eq!(*ok.last().expect("nonempty"), u32::MAX);
    }

    #[test]
    fn mem_bytes_counts_csr_arrays() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        // offsets: 5 u32s; edges: 6 u32s (two directed entries per edge).
        assert_eq!(g.mem_bytes(), (5 + 6) * 4);
    }

    #[test]
    fn connectivity_detection() {
        let connected = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(connected.is_connected());
        assert_eq!(connected.largest_component(), 3);
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!split.is_connected());
        assert_eq!(split.largest_component(), 2);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert!(!g.is_connected());
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }
}
