//! Self-healing overlay maintenance: deterministic neighbor repair.
//!
//! PR 2/3 gave the stack churn and faults, but every failure was
//! permanent — degraded-mode curves only ever went down. This module
//! closes the loop: a [`MaintenancePolicy`] describes how survivors
//! re-wire after departures (probe budget, target-degree band, candidate
//! sampling), and [`repair_round`] applies one deterministic round of it:
//!
//! 1. **detect** — edges touching nodes that are dead under the caller's
//!    alive mask are pruned (the "ping your neighbors" step, collapsed to
//!    its outcome);
//! 2. **re-wire** — every alive node whose surviving degree fell below
//!    `degree_min` probes for fresh neighbors, drawn [`Attachment::Uniform`]ly
//!    (Erdős–Rényi-style topologies) or by [`Attachment::Preferential`]
//!    degree-weighted sampling (Barabási–Albert / ultrapeer topologies, whose
//!    degree distribution the repair should regrow, not flatten);
//! 3. **re-admit** — a node whose `FaultPlan` session comes back up
//!    reappears in the alive mask with degree zero, is therefore deficient,
//!    and gets wired back in by the same mechanism. No special case.
//!
//! # Determinism contract
//!
//! Every candidate draw comes from a `Pcg64` stream keyed by the stateless
//! triple `(policy seed, node, round)` — never by visit order, thread id,
//! or map iteration. Proposal generation runs data-parallel over the
//! deficient nodes (chunk-ordered merge), and proposals are applied
//! serially in ascending node order, so a repair round is bit-identical
//! across runs and thread-pool widths, like the rest of the stack.

use crate::graph::Graph;
use qcp_obs::{Counter, Kernel, Recorder};
use qcp_util::hash::mix64;
use qcp_util::rng::{child_seed, Pcg64};
use qcp_util::FxHashSet;
use qcp_xpar::Pool;

/// Dedicated `Pcg64` stream selector for repair draws, so repair shares no
/// randomness with trial RNGs, fault plans, or placement.
const REPAIR_STREAM: u64 = 0x5e1f_4ea1_0000_0001;

/// How re-attachment candidates are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// Uniform over alive nodes — matches Erdős–Rényi-style topologies
    /// whose degree distribution is flat.
    Uniform,
    /// Degree-weighted (`degree + 1`) over alive nodes — preferential
    /// re-attachment regrows the heavy tail of Barabási–Albert and
    /// two-tier ultrapeer topologies instead of flattening it. The `+ 1`
    /// keeps freshly re-admitted (degree-zero) nodes reachable as targets.
    Preferential,
}

/// Parameters of the self-healing maintenance layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenancePolicy {
    /// Repair wires a node back up when its surviving degree falls below
    /// this floor.
    pub degree_min: usize,
    /// Repair never raises a node's degree above this ceiling (nodes whose
    /// *original* degree exceeds it — topology hubs — are left alone).
    pub degree_max: usize,
    /// Candidate probes a deficient node may issue per round.
    pub probe_budget: usize,
    /// Candidate sampling model.
    pub attachment: Attachment,
    /// Root seed of every repair draw.
    pub seed: u64,
}

impl MaintenancePolicy {
    /// Uniform-attachment policy (Erdős–Rényi-style topologies).
    pub fn uniform(degree_min: usize, degree_max: usize, probe_budget: usize, seed: u64) -> Self {
        Self::checked(
            degree_min,
            degree_max,
            probe_budget,
            Attachment::Uniform,
            seed,
        )
    }

    /// Preferential-attachment policy (BA / ultrapeer topologies).
    pub fn preferential(
        degree_min: usize,
        degree_max: usize,
        probe_budget: usize,
        seed: u64,
    ) -> Self {
        Self::checked(
            degree_min,
            degree_max,
            probe_budget,
            Attachment::Preferential,
            seed,
        )
    }

    fn checked(
        degree_min: usize,
        degree_max: usize,
        probe_budget: usize,
        attachment: Attachment,
        seed: u64,
    ) -> Self {
        assert!(degree_min >= 1, "degree_min must be at least 1");
        assert!(degree_min <= degree_max, "degree band must be nonempty");
        Self {
            degree_min,
            degree_max,
            probe_budget,
            attachment,
            seed,
        }
    }
}

/// Accounting for one (or several absorbed) repair rounds.
///
/// The message model charges one message per probe and two per accepted
/// edge (the connect request and its ack), giving the identity
/// `messages == probes + 2 * added` — checked by [`RepairStats::check_identity`]
/// and the `repro soak` runtime invariants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Edges pruned because an endpoint is dead.
    pub pruned: u64,
    /// Alive nodes below the degree floor at the start of the round.
    pub deficient: u64,
    /// Candidate probes issued.
    pub probes: u64,
    /// Edges added.
    pub added: u64,
    /// Maintenance messages: `probes + 2 * added`.
    pub messages: u64,
}

impl RepairStats {
    /// Accumulates `other` into `self` field by field.
    pub fn absorb(&mut self, other: &RepairStats) {
        self.pruned += other.pruned;
        self.deficient += other.deficient;
        self.probes += other.probes;
        self.added += other.added;
        self.messages += other.messages;
    }

    /// Asserts the repair-message accounting identity.
    pub fn check_identity(&self) {
        assert!(
            self.messages == self.probes + 2 * self.added,
            "repair accounting broken: messages {} != probes {} + 2*added {}",
            self.messages,
            self.probes,
            self.added
        );
    }
}

/// One deterministic maintenance round over `graph` under the `alive` mask.
///
/// Returns the repaired graph (same node-id space; dead nodes isolated)
/// and the round's [`RepairStats`]. See the module docs for the three
/// phases and the determinism contract. `alive.len()` must equal
/// `graph.num_nodes()`.
pub fn repair_round(
    pool: &Pool,
    graph: &Graph,
    alive: &[bool],
    policy: &MaintenancePolicy,
    round: u64,
) -> (Graph, RepairStats) {
    let n = graph.num_nodes();
    assert_eq!(alive.len(), n, "alive mask must cover the graph");
    let mut stats = RepairStats::default();

    // Phase 1: detect — prune edges with a dead endpoint, compute
    // surviving degrees.
    let mut deg: Vec<u32> = vec![0; n];
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(graph.num_edges());
    for u in 0..n as u32 {
        for &v in graph.neighbors(u) {
            if u < v {
                if alive[u as usize] && alive[v as usize] {
                    edges.push((u, v));
                    deg[u as usize] += 1;
                    deg[v as usize] += 1;
                } else {
                    stats.pruned += 1;
                }
            }
        }
    }

    // Candidate universe: alive nodes in ascending id order (deterministic
    // by construction), plus cumulative degree weights for preferential
    // sampling.
    let alive_nodes: Vec<u32> = (0..n as u32).filter(|&v| alive[v as usize]).collect();
    let deficient: Vec<u32> = alive_nodes
        .iter()
        .copied()
        .filter(|&v| (deg[v as usize] as usize) < policy.degree_min)
        .collect();
    stats.deficient = deficient.len() as u64;
    if alive_nodes.len() <= 1 || deficient.is_empty() {
        let repaired = Graph::from_edges(n, &edges);
        stats.messages = stats.probes + 2 * stats.added;
        return (repaired, stats);
    }
    // prefix[i] = total weight of alive_nodes[..=i]; weight = degree + 1.
    let prefix: Vec<u64> = match policy.attachment {
        Attachment::Uniform => Vec::new(),
        Attachment::Preferential => {
            let mut acc = 0u64;
            alive_nodes
                .iter()
                .map(|&v| {
                    acc += deg[v as usize] as u64 + 1;
                    acc
                })
                .collect()
        }
    };

    // Phase 2: re-wire — parallel proposal generation, one stateless RNG
    // stream per (policy seed, node, round).
    let proposals: Vec<(Vec<u32>, u64)> = pool.par_map(&deficient, |&u| {
        let need = policy.degree_min - deg[u as usize] as usize;
        let mut rng = Pcg64::with_stream(
            child_seed(policy.seed ^ mix64(u as u64), round),
            REPAIR_STREAM,
        );
        let mut picks: Vec<u32> = Vec::with_capacity(need);
        let mut probes = 0u64;
        for _ in 0..policy.probe_budget {
            if picks.len() >= need {
                break;
            }
            probes += 1;
            let v = match policy.attachment {
                Attachment::Uniform => alive_nodes[rng.index(alive_nodes.len())],
                Attachment::Preferential => {
                    // prefix is nonempty and strictly increasing; total
                    // weight >= alive count >= 2 here.
                    let total = prefix[prefix.len() - 1];
                    let x = rng.below(total);
                    alive_nodes[prefix.partition_point(|&p| p <= x)]
                }
            };
            if v == u || picks.contains(&v) {
                continue;
            }
            // Existing surviving edge? (u and v are both alive, so an
            // old u–v edge was not pruned.)
            if graph.neighbors(u).contains(&v) {
                continue;
            }
            picks.push(v);
        }
        (picks, probes)
    });

    // Phase 3: apply — serial, ascending node order; accept an edge only
    // while both endpoints stay inside the band.
    let mut new_keys: FxHashSet<u64> = FxHashSet::default();
    for (&u, (picks, probes)) in deficient.iter().zip(&proposals) {
        stats.probes += probes;
        for &v in picks {
            if (deg[u as usize] as usize) >= policy.degree_min {
                break;
            }
            if (deg[v as usize] as usize) >= policy.degree_max {
                continue;
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            let key = ((a as u64) << 32) | b as u64;
            if !new_keys.insert(key) {
                continue;
            }
            edges.push((a, b));
            deg[u as usize] += 1;
            deg[v as usize] += 1;
            stats.added += 1;
        }
    }
    stats.messages = stats.probes + 2 * stats.added;
    (Graph::from_edges(n, &edges), stats)
}

/// [`repair_round`] with an instrumentation [`Recorder`]: the round's
/// [`RepairStats`] are mirrored into [`Kernel::Repair`] counters
/// (`Probes`, `Rewires` = added, `Pruned`, `Messages`) *after* the round
/// completes — repair draws are keyed by `(policy seed, node, round)`
/// alone, so the recorder cannot perturb them even in principle.
pub fn repair_round_rec<R: Recorder>(
    pool: &Pool,
    graph: &Graph,
    alive: &[bool],
    policy: &MaintenancePolicy,
    round: u64,
    rec: &mut R,
) -> (Graph, RepairStats) {
    let (repaired, stats) = repair_round(pool, graph, alive, policy, round);
    rec.rec_span(Kernel::Repair);
    rec.rec_count(Kernel::Repair, Counter::Messages, stats.messages);
    rec.rec_count(Kernel::Repair, Counter::Probes, stats.probes);
    rec.rec_count(Kernel::Repair, Counter::Rewires, stats.added);
    rec.rec_count(Kernel::Repair, Counter::Pruned, stats.pruned);
    rec.rec_hop(
        Kernel::Repair,
        round.min(u32::MAX as u64) as u32,
        stats.added,
    );
    (repaired, stats)
}

/// Asserts the post-round maintenance invariants; panics on violation.
///
/// * no repaired edge touches a dead node, and adjacency is symmetric;
/// * the degree band is respected: every alive node ends at or below
///   `max(surviving degree before repair, policy.degree_max)` — repair
///   may leave pre-existing hubs above the ceiling but never *raises*
///   anyone past it;
/// * the repair-message accounting identity holds.
pub fn check_repair_invariants(
    before: &Graph,
    after: &Graph,
    alive: &[bool],
    policy: &MaintenancePolicy,
    stats: &RepairStats,
) {
    assert_eq!(after.num_nodes(), before.num_nodes());
    assert_eq!(alive.len(), after.num_nodes());
    for u in 0..after.num_nodes() as u32 {
        let d = after.degree(u);
        if !alive[u as usize] {
            assert!(d == 0, "dead node {u} kept {d} edges after repair");
            continue;
        }
        let surviving_before = before
            .neighbors(u)
            .iter()
            .filter(|&&v| alive[v as usize])
            .count();
        assert!(
            d <= surviving_before.max(policy.degree_max),
            "degree band violated at {u}: {d} > max({surviving_before}, {})",
            policy.degree_max
        );
        for &v in after.neighbors(u) {
            assert!(alive[v as usize], "repaired edge {u}-{v} touches dead node");
            assert!(
                after.neighbors(v).contains(&u),
                "repaired edge {u}-{v} is one-way"
            );
        }
    }
    stats.check_identity();
}

/// Drives [`repair_round`]s over an owned graph, carrying the evolving
/// topology, the round counter, and cumulative [`RepairStats`] across an
/// epoch schedule (the shape `repro soak` consumes).
#[derive(Debug, Clone)]
pub struct Maintainer {
    graph: Graph,
    policy: MaintenancePolicy,
    round: u64,
    totals: RepairStats,
}

impl Maintainer {
    /// Starts maintenance over `graph` under `policy`.
    pub fn new(graph: Graph, policy: MaintenancePolicy) -> Self {
        Self {
            graph,
            policy,
            round: 0,
            totals: RepairStats::default(),
        }
    }

    /// The current (possibly repaired) topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The policy in force.
    pub fn policy(&self) -> &MaintenancePolicy {
        &self.policy
    }

    /// Rounds applied so far.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Cumulative stats over all rounds.
    pub fn totals(&self) -> RepairStats {
        self.totals
    }

    /// Applies one repair round under `alive`, advances the round counter,
    /// and returns that round's stats. The round index feeds the draw keys,
    /// so step sequences are reproducible but rounds are not identical.
    pub fn step(&mut self, pool: &Pool, alive: &[bool]) -> RepairStats {
        let (repaired, stats) = repair_round(pool, &self.graph, alive, &self.policy, self.round);
        check_repair_invariants(&self.graph, &repaired, alive, &self.policy, &stats);
        self.graph = repaired;
        self.round += 1;
        self.totals.absorb(&stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{erdos_renyi, gnutella_two_tier, TopologyConfig};

    fn kill(n: usize, every: usize) -> Vec<bool> {
        (0..n).map(|i| i % every != 0).collect()
    }

    #[test]
    fn repair_prunes_dead_edges_and_refills_degrees() {
        let t = erdos_renyi(400, 6.0, 11);
        let alive = kill(400, 4); // 25% dead
        let policy = MaintenancePolicy::uniform(3, 8, 16, 0x5ea1);
        let pool = Pool::new(2);
        let (g, stats) = repair_round(&pool, &t.graph, &alive, &policy, 0);
        check_repair_invariants(&t.graph, &g, &alive, &policy, &stats);
        assert!(stats.pruned > 0, "25% churn must prune edges");
        assert!(stats.added > 0, "pruning must leave someone deficient");
        stats.check_identity();
        // Every alive node that can reach the floor does.
        let alive_count = alive.iter().filter(|&&a| a).count();
        assert!(alive_count > policy.degree_min);
        for u in 0..400u32 {
            if alive[u as usize] {
                assert!(
                    g.degree(u) >= policy.degree_min || stats.probes >= policy.probe_budget as u64,
                    "node {u} still deficient at degree {}",
                    g.degree(u)
                );
            }
        }
    }

    #[test]
    fn repair_is_deterministic_across_pool_widths() {
        let t = gnutella_two_tier(&TopologyConfig {
            num_nodes: 500,
            ..Default::default()
        });
        let alive = kill(500, 5);
        let policy = MaintenancePolicy::preferential(3, 30, 12, 0xbeef);
        let narrow = Pool::new(1);
        let wide = Pool::new(4);
        let (g1, s1) = repair_round(&narrow, &t.graph, &alive, &policy, 3);
        let (g4, s4) = repair_round(&wide, &t.graph, &alive, &policy, 3);
        assert_eq!(s1, s4);
        for u in 0..500u32 {
            assert_eq!(g1.neighbors(u), g4.neighbors(u), "adjacency differs at {u}");
        }
    }

    #[test]
    fn no_deficiency_means_no_op() {
        let t = erdos_renyi(300, 8.0, 13);
        let alive = vec![true; 300];
        // Floor of 1: ER(mean 8) leaves nobody isolated at this size/seed.
        let policy = MaintenancePolicy::uniform(1, 10, 8, 1);
        let pool = Pool::new(2);
        let (g, stats) = repair_round(&pool, &t.graph, &alive, &policy, 0);
        assert_eq!(stats.added, 0);
        assert_eq!(stats.pruned, 0);
        assert_eq!(stats.messages, stats.probes);
        assert_eq!(g.num_edges(), t.graph.num_edges());
    }

    #[test]
    fn readmitted_node_is_rewired() {
        let t = erdos_renyi(200, 5.0, 17);
        // Node 7 dies...
        let mut alive = vec![true; 200];
        alive[7] = false;
        let policy = MaintenancePolicy::uniform(2, 8, 16, 0x1ce);
        let pool = Pool::new(2);
        let (g, _) = repair_round(&pool, &t.graph, &alive, &policy, 0);
        assert_eq!(g.degree(7), 0, "dead node must be isolated");
        // ...and its session comes back: the next round re-wires it.
        alive[7] = true;
        let (g2, stats2) = repair_round(&pool, &g, &alive, &policy, 1);
        assert!(
            g2.degree(7) >= policy.degree_min,
            "re-admitted node stuck at degree {}",
            g2.degree(7)
        );
        assert!(stats2.added > 0);
    }

    #[test]
    fn preferential_attachment_favors_hubs() {
        // A hub with 30 edges vs. many degree-1 satellites: preferential
        // repair of fresh nodes should connect to the hub far more often
        // than uniform would.
        let mut edges: Vec<(u32, u32)> = (1..=30).map(|v| (0u32, v)).collect();
        // Fifty isolated nodes to repair (ids 31..81).
        edges.push((81, 82)); // keep the graph size at 83
        let g = Graph::from_edges(83, &edges);
        let alive = vec![true; 83];
        let pool = Pool::new(2);
        let pref = MaintenancePolicy::preferential(1, 100, 8, 42);
        let (gp, _) = repair_round(&pool, &g, &alive, &pref, 0);
        let unif = MaintenancePolicy::uniform(1, 100, 8, 42);
        let (gu, _) = repair_round(&pool, &g, &alive, &unif, 0);
        assert!(
            gp.degree(0) > gu.degree(0),
            "preferential ({}) must out-attach uniform ({}) at the hub",
            gp.degree(0),
            gu.degree(0)
        );
    }

    #[test]
    fn maintainer_accumulates_and_converges() {
        let t = erdos_renyi(300, 6.0, 23);
        let alive = kill(300, 3); // 33% dead
        let policy = MaintenancePolicy::uniform(3, 9, 16, 7);
        let pool = Pool::new(2);
        let mut m = Maintainer::new(t.graph.clone(), policy);
        let first = m.step(&pool, &alive);
        assert!(first.pruned > 0);
        let mut last = first;
        for _ in 0..5 {
            last = m.step(&pool, &alive);
            assert_eq!(last.pruned, 0, "round 1+ sees no dead edges");
        }
        assert_eq!(m.rounds_run(), 6);
        m.totals().check_identity();
        // Converged: no deficient nodes remain, so the last round added
        // nothing and the graph is at a fixed point.
        assert_eq!(last.deficient, 0);
        assert_eq!(last.added, 0);
    }

    #[test]
    #[should_panic(expected = "degree band must be nonempty")]
    fn inverted_band_rejected() {
        let _ = MaintenancePolicy::uniform(5, 4, 8, 0);
    }

    #[test]
    #[should_panic(expected = "alive mask must cover the graph")]
    fn short_mask_rejected() {
        let t = erdos_renyi(50, 4.0, 1);
        let pool = Pool::new(1);
        let policy = MaintenancePolicy::uniform(2, 6, 4, 0);
        let _ = repair_round(&pool, &t.graph, &[true; 10], &policy, 0);
    }
}
