//! Pluggable replication schemes: deterministic `Placement → Placement`
//! transforms (ROADMAP open item 2 — the Figure-8 counterfactual).
//!
//! The paper's Figure-8 claim is that realistic Zipf placement makes the
//! unstructured phase behave like ~1-replica uniform. This module asks
//! the explicit counter-question: *how much replication would it take to
//! rescue it?* Each [`ReplicationScheme`] is one answer from the
//! unstructured-P2P replication literature (the two Thampi surveys in
//! PAPERS.md), realized as a pure transform that takes the base
//! placement and a budget of extra copies and returns the replicated
//! placement:
//!
//! * **owner-only** — the identity baseline: the placement the trace
//!   generated, nothing added (budget must be 0);
//! * **path** — path replication (Freenet-style): a copy is cached
//!   along the route that served a query, modeled here as a short
//!   random route seeded at an existing replica;
//! * **random-walk** — Lv et al.: copies land on nodes sampled by an
//!   unbiased random walk from the requester, i.e. roughly
//!   degree-biased uniform spread;
//! * **sqrt** — Cohen & Shenker square-root allocation: replicas per
//!   object proportional to the *square root* of query popularity, the
//!   optimum for expected search size;
//! * **proportional** — replicas proportional to popularity itself
//!   (what uncoordinated caching converges to);
//! * **gia-one-hop** — Gia (paper ref [17]): pointers pushed one hop
//!   from each replica to the highest-capacity neighbor, approximated
//!   here by highest degree.
//!
//! # Determinism
//!
//! Every draw is a stateless `mix64` hash over `(seed, stream tag,
//! copy index, sub-draw)` — no RNG state is threaded anywhere, so the
//! transform is embarrassingly order-independent and bit-identical
//! across runs and thread counts. The stream tags are documented in
//! DESIGN.md §15.
//!
//! # Budget semantics
//!
//! `budget` is the *total number of extra copies* across all objects,
//! conserved exactly: the output holds `base + budget` replicas, no
//! more, no fewer (a deterministic fallback scan places copies whose
//! hash draws keep colliding with existing holders). Copies are placed
//! sequentially, and copy `k` depends only on copies `< k`, so the
//! placement at budget `b` is a strict subset of the placement at any
//! budget `b' > b` for the same seed. Flood success under common random
//! numbers is therefore *monotone in budget by construction* — the
//! `fig8-repl` artifact asserts this exactly, not statistically.

use crate::graph::Graph;
use crate::placement::Placement;
use qcp_util::hash::{mix64, FxHashSet};

/// Replication scheme menu (see module docs for provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationScheme {
    /// Identity baseline: the trace's own placement, budget must be 0.
    OwnerOnly,
    /// Copies cached along query routes seeded at existing replicas.
    Path,
    /// Copies at random-walk endpoints from uniform requesters.
    RandomWalk,
    /// Square-root allocation: copies drawn ∝ √popularity.
    SqrtAllocation,
    /// Proportional allocation: copies drawn ∝ popularity.
    ProportionalAllocation,
    /// Gia-style one-hop replication to the highest-degree neighbor.
    GiaOneHop,
}

impl ReplicationScheme {
    /// Every scheme, in the canonical grid order.
    pub const ALL: [ReplicationScheme; 6] = [
        ReplicationScheme::OwnerOnly,
        ReplicationScheme::Path,
        ReplicationScheme::RandomWalk,
        ReplicationScheme::SqrtAllocation,
        ReplicationScheme::ProportionalAllocation,
        ReplicationScheme::GiaOneHop,
    ];

    /// Stable snake-case name (CSV/JSON column key).
    pub fn name(self) -> &'static str {
        match self {
            ReplicationScheme::OwnerOnly => "owner_only",
            ReplicationScheme::Path => "path",
            ReplicationScheme::RandomWalk => "random_walk",
            ReplicationScheme::SqrtAllocation => "sqrt",
            ReplicationScheme::ProportionalAllocation => "proportional",
            ReplicationScheme::GiaOneHop => "gia_one_hop",
        }
    }
}

/// Query-popularity model driving per-object allocation.
///
/// Square-root and proportional allocation need a popularity signal;
/// path/random-walk/Gia replication also draw *which* object receives
/// each copy from it (queries drive caching).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every object equally popular (the Figure-8 uniform target model).
    Uniform,
    /// Popularity ∝ the base placement's replica counts — the crawl's
    /// own demand signal (replication in the wild tracks popularity,
    /// the premise behind the paper's Zipf placement).
    Replicas,
    /// Zipf over object id as popularity rank: `w(o) ∝ (o + 1)^{-s}`.
    Zipf {
        /// Zipf exponent.
        s: f64,
    },
}

/// A fully-specified replication pass: scheme, budget of extra copies,
/// popularity model, and hash seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationPlan {
    /// Which scheme places the copies.
    pub scheme: ReplicationScheme,
    /// Total extra copies across all objects (conserved exactly).
    pub budget: u64,
    /// Popularity signal for object selection / allocation.
    pub popularity: Popularity,
    /// Seed for the stateless hash draws.
    pub seed: u64,
}

// Stream tags for the stateless draws (DESIGN.md §15). Each named
// stream is independent: the tag is mixed into the hash input, so
// draws on one stream never correlate with another.
/// Object selection for copy `k`.
const OBJECT_STREAM: u64 = 0x5e1e_c70b_1ec7;
/// Uniform peer selection (sqrt/proportional targets, walk starts).
const PEER_STREAM: u64 = 0x9ee5_0b5e_55ed;
/// Replica anchor selection (path/Gia seeding).
const HOLDER_STREAM: u64 = 0xa7c4_0a7c_405e;
/// Walk length selection (path/random-walk).
const LEN_STREAM: u64 = 0x1e57_4a1c_1e57;
/// Individual walk steps (path/random-walk routes).
const STEP_STREAM: u64 = 0x57e9_57e9_57e9;
/// Fallback scan starting points (hash-collision bailout).
const FALLBACK_STREAM: u64 = 0xfa11_b4c4_5ca9;

/// Scheme draw attempts per copy before the deterministic fallback scan.
const MAX_ATTEMPTS: u64 = 64;
/// Path replication route length is drawn from `[1, PATH_STEPS]`.
const PATH_STEPS: u64 = 4;
/// Random-walk replication walk length is drawn from `[1, WALK_STEPS]`.
const WALK_STEPS: u64 = 8;

/// One stateless draw: a pure function of the plan seed, a stream tag,
/// the copy index, and a per-copy sub-draw counter.
#[inline]
fn draw(seed: u64, tag: u64, copy: u64, sub: u64) -> u64 {
    mix64(
        seed ^ mix64(tag)
            ^ copy.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ sub.wrapping_mul(0xa076_1d64_78bd_642f),
    )
}

/// Maps a hash draw onto `[0, bound)` by the multiply-shift trick. The
/// bias is `< bound / 2^64` — immaterial at simulation bounds, and the
/// statelessness (one draw in, one value out, no rejection loop) is
/// what keeps the transform order-independent.
#[inline]
fn scaled(x: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((x as u128 * bound as u128) >> 64) as u64
}

/// Object selector: uniform short-circuits the cumulative table.
enum ObjectSampler {
    Uniform(u64),
    /// Cumulative weights; sampled by binary search over a 53-bit draw.
    Weighted(Vec<f64>),
}

impl ObjectSampler {
    fn build(plan: &ReplicationPlan, base: &Placement) -> Self {
        let n = base.num_objects();
        let weight = |o: usize| -> f64 {
            match plan.popularity {
                Popularity::Uniform => 1.0,
                Popularity::Replicas => base.replicas(o as u32) as f64,
                Popularity::Zipf { s } => (o as f64 + 1.0).powf(-s),
            }
        };
        let damp = matches!(plan.scheme, ReplicationScheme::SqrtAllocation);
        if matches!(plan.popularity, Popularity::Uniform) && !damp {
            return ObjectSampler::Uniform(n as u64);
        }
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for o in 0..n {
            let w = weight(o);
            total += if damp { w.sqrt() } else { w };
            cum.push(total);
        }
        assert!(total > 0.0, "popularity weights sum to zero");
        ObjectSampler::Weighted(cum)
    }

    #[inline]
    fn sample(&self, x: u64) -> u32 {
        match self {
            ObjectSampler::Uniform(n) => scaled(x, *n) as u32,
            ObjectSampler::Weighted(cum) => {
                // qcplint: allow(panic) — `build` rejects empty/zero tables.
                let total = *cum.last().unwrap();
                let t = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * total;
                cum.partition_point(|&c| c <= t).min(cum.len() - 1) as u32
            }
        }
    }
}

/// Per-apply working state: the pending extras and fast holder lookup.
struct Extras {
    pairs: Vec<(u32, u32)>,
    /// `(object << 32) | peer` of every pending extra.
    seen: FxHashSet<u64>,
    /// Pending extras per object (saturation checks).
    count: Vec<u32>,
}

impl Extras {
    fn holds(&self, base: &Placement, object: u32, peer: u32) -> bool {
        base.peer_holds(peer, object) || self.seen.contains(&((object as u64) << 32 | peer as u64))
    }

    fn saturated(&self, base: &Placement, object: u32) -> bool {
        base.replicas(object) + self.count[object as usize] >= base.num_peers()
    }

    fn place(&mut self, object: u32, peer: u32) {
        self.pairs.push((object, peer));
        self.seen.insert((object as u64) << 32 | peer as u64);
        self.count[object as usize] += 1;
    }
}

impl ReplicationPlan {
    /// The identity baseline: owner-only, budget 0.
    pub fn owner_only(seed: u64) -> Self {
        ReplicationPlan {
            scheme: ReplicationScheme::OwnerOnly,
            budget: 0,
            popularity: Popularity::Replicas,
            seed,
        }
    }

    /// A plan with the default popularity signal (the base placement's
    /// replica counts — the crawl's demand proxy).
    pub fn new(scheme: ReplicationScheme, budget: u64, seed: u64) -> Self {
        ReplicationPlan {
            scheme,
            budget,
            popularity: Popularity::Replicas,
            seed,
        }
    }

    /// Applies the scheme: returns `base` grown by exactly
    /// [`budget`](ReplicationPlan::budget) extra copies placed per the
    /// scheme's rules. Pure and deterministic in `(self, graph, base)`.
    ///
    /// Panics if the scheme is [`ReplicationScheme::OwnerOnly`] with a
    /// nonzero budget, if the budget exceeds the free capacity
    /// (`peers × objects − base copies`), or if `graph` and `base`
    /// disagree on the peer population.
    pub fn apply(&self, graph: &Graph, base: &Placement) -> Placement {
        assert_eq!(
            graph.num_nodes(),
            base.num_peers() as usize,
            "replication graph/placement peer mismatch"
        );
        if matches!(self.scheme, ReplicationScheme::OwnerOnly) {
            assert_eq!(
                self.budget, 0,
                "owner-only is the identity: budget must be 0"
            );
            return base.clone();
        }
        if self.budget == 0 {
            return base.clone();
        }
        let n = base.num_peers() as u64;
        let capacity = n * base.num_objects() as u64
            - (0..base.num_objects() as u32)
                .map(|o| base.replicas(o) as u64)
                .sum::<u64>();
        assert!(
            self.budget <= capacity,
            "replication budget {} exceeds free capacity {capacity}",
            self.budget
        );

        let sampler = ObjectSampler::build(self, base);
        let mut extras = Extras {
            pairs: Vec::with_capacity(self.budget as usize),
            seen: FxHashSet::default(),
            count: vec![0u32; base.num_objects()],
        };
        for k in 0..self.budget {
            if !self.try_place(graph, base, &sampler, &mut extras, k) {
                self.fallback_place(base, &mut extras, k);
            }
        }
        debug_assert_eq!(extras.pairs.len() as u64, self.budget);
        base.with_extra_copies(&extras.pairs)
    }

    /// Scheme draws for copy `k`: up to [`MAX_ATTEMPTS`] tries, each a
    /// fresh object + target draw. Returns false if every try collided.
    fn try_place(
        &self,
        graph: &Graph,
        base: &Placement,
        sampler: &ObjectSampler,
        extras: &mut Extras,
        k: u64,
    ) -> bool {
        let n = base.num_peers() as u64;
        for a in 0..MAX_ATTEMPTS {
            let object = sampler.sample(draw(self.seed, OBJECT_STREAM, k, a));
            if extras.saturated(base, object) {
                continue;
            }
            let peer = match self.scheme {
                ReplicationScheme::OwnerOnly => unreachable!("owner-only places no copies"),
                ReplicationScheme::SqrtAllocation | ReplicationScheme::ProportionalAllocation => {
                    scaled(draw(self.seed, PEER_STREAM, k, a), n) as u32
                }
                ReplicationScheme::RandomWalk => {
                    let start = scaled(draw(self.seed, PEER_STREAM, k, a), n) as u32;
                    let len = 1 + scaled(draw(self.seed, LEN_STREAM, k, a), WALK_STEPS);
                    self.route(graph, start, len, k, a)
                }
                ReplicationScheme::Path => {
                    // Holderless objects (legal via explicit holder
                    // lists) have no route to seed from: uniform spread.
                    let start = match self.anchor(base, object, k, a) {
                        Some(h) => h,
                        None => scaled(draw(self.seed, PEER_STREAM, k, a), n) as u32,
                    };
                    let len = 1 + scaled(draw(self.seed, LEN_STREAM, k, a), PATH_STEPS);
                    self.route(graph, start, len, k, a)
                }
                ReplicationScheme::GiaOneHop => match self.anchor(base, object, k, a) {
                    Some(anchor) => match best_free_neighbor(graph, base, extras, object, anchor) {
                        Some(p) => p,
                        None => continue,
                    },
                    None => scaled(draw(self.seed, PEER_STREAM, k, a), n) as u32,
                },
            };
            if extras.holds(base, object, peer) {
                continue;
            }
            extras.place(object, peer);
            return true;
        }
        false
    }

    /// A hash-drawn existing replica of `object`, or `None` if the base
    /// placement left it holderless (legal via explicit holder lists).
    fn anchor(&self, base: &Placement, object: u32, k: u64, a: u64) -> Option<u32> {
        let hs = base.holders(object);
        if hs.is_empty() {
            return None;
        }
        Some(hs[scaled(draw(self.seed, HOLDER_STREAM, k, a), hs.len() as u64) as usize])
    }

    /// Walks `len` uniform steps from `start`; dead ends stop early.
    fn route(&self, graph: &Graph, start: u32, len: u64, k: u64, a: u64) -> u32 {
        let mut cur = start;
        for j in 0..len {
            let nb = graph.neighbors(cur);
            if nb.is_empty() {
                break;
            }
            cur = nb[scaled(draw(self.seed, STEP_STREAM, k, a << 8 | j), nb.len() as u64) as usize];
        }
        cur
    }

    /// Deterministic bailout when every scheme draw collided: linear
    /// scans from hash-drawn starting points find the first unsaturated
    /// object and its first free peer. Guaranteed to land (budget is
    /// checked against free capacity up front), so the budget is
    /// conserved exactly no matter how unlucky the hashes were.
    fn fallback_place(&self, base: &Placement, extras: &mut Extras, k: u64) {
        let num_objects = base.num_objects() as u64;
        let n = base.num_peers() as u64;
        let o0 = scaled(draw(self.seed, FALLBACK_STREAM, k, 0), num_objects);
        for oi in 0..num_objects {
            let object = ((o0 + oi) % num_objects) as u32;
            if extras.saturated(base, object) {
                continue;
            }
            let p0 = scaled(draw(self.seed, FALLBACK_STREAM, k, 1), n);
            for pi in 0..n {
                let peer = ((p0 + pi) % n) as u32;
                if !extras.holds(base, object, peer) {
                    extras.place(object, peer);
                    return;
                }
            }
        }
        unreachable!("fallback scan found no free slot despite capacity check");
    }
}

/// The highest-degree neighbor of `anchor` that does not already hold
/// `object` (ties broken by smaller id — deterministic); `None` if the
/// whole neighborhood holds it.
fn best_free_neighbor(
    graph: &Graph,
    base: &Placement,
    extras: &Extras,
    object: u32,
    anchor: u32,
) -> Option<u32> {
    let mut best: Option<(usize, u32)> = None;
    for &nb in graph.neighbors(anchor) {
        if extras.holds(base, object, nb) {
            continue;
        }
        let d = graph.degree(nb);
        let better = match best {
            None => true,
            Some((bd, bid)) => d > bd || (d == bd && nb < bid),
        };
        if better {
            best = Some((d, nb));
        }
    }
    best.map(|(_, id)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementModel;
    use crate::topology::{gnutella_two_tier, TopologyConfig};

    fn small_world() -> (Graph, Placement) {
        let topo = gnutella_two_tier(&TopologyConfig {
            num_nodes: 400,
            ..Default::default()
        });
        let n = topo.graph.num_nodes() as u32;
        let p = Placement::generate(PlacementModel::ZipfReplicas { tau: 2.05 }, n, 200, 0xbeef);
        (topo.graph, p)
    }

    fn total_copies(p: &Placement) -> u64 {
        (0..p.num_objects() as u32)
            .map(|o| p.replicas(o) as u64)
            .sum()
    }

    #[test]
    fn owner_only_is_bitwise_identity() {
        let (g, base) = small_world();
        let out = ReplicationPlan::owner_only(7).apply(&g, &base);
        assert_eq!(total_copies(&out), total_copies(&base));
        for o in 0..base.num_objects() as u32 {
            assert_eq!(out.holders(o), base.holders(o));
        }
    }

    #[test]
    fn every_scheme_conserves_budget_exactly() {
        let (g, base) = small_world();
        let before = total_copies(&base);
        for scheme in ReplicationScheme::ALL {
            if scheme == ReplicationScheme::OwnerOnly {
                continue;
            }
            for budget in [1u64, 17, 500] {
                let out = ReplicationPlan::new(scheme, budget, 0x5eed).apply(&g, &base);
                assert_eq!(
                    total_copies(&out),
                    before + budget,
                    "{} at budget {budget}",
                    scheme.name()
                );
                for o in 0..out.num_objects() as u32 {
                    let h = out.holders(o);
                    assert!(h.windows(2).all(|w| w[0] < w[1]), "sorted distinct holders");
                }
            }
        }
    }

    #[test]
    fn budgets_nest_as_prefixes() {
        let (g, base) = small_world();
        for scheme in ReplicationScheme::ALL {
            if scheme == ReplicationScheme::OwnerOnly {
                continue;
            }
            let small = ReplicationPlan::new(scheme, 100, 0x5eed).apply(&g, &base);
            let large = ReplicationPlan::new(scheme, 300, 0x5eed).apply(&g, &base);
            for o in 0..base.num_objects() as u32 {
                for &p in small.holders(o) {
                    assert!(
                        large.peer_holds(p, o),
                        "{}: holder sets must nest across budgets",
                        scheme.name()
                    );
                }
            }
        }
    }

    #[test]
    fn apply_is_deterministic() {
        let (g, base) = small_world();
        for scheme in [ReplicationScheme::Path, ReplicationScheme::SqrtAllocation] {
            let a = ReplicationPlan::new(scheme, 250, 42).apply(&g, &base);
            let b = ReplicationPlan::new(scheme, 250, 42).apply(&g, &base);
            for o in 0..base.num_objects() as u32 {
                assert_eq!(a.holders(o), b.holders(o));
            }
        }
    }

    #[test]
    fn proportional_tracks_popularity_harder_than_sqrt() {
        let (g, base) = small_world();
        // With replica-count popularity, proportional allocation should
        // concentrate extra copies on already-popular objects more than
        // sqrt allocation does (that is the Cohen–Shenker distinction).
        let budget = 1_000;
        let sq =
            ReplicationPlan::new(ReplicationScheme::SqrtAllocation, budget, 9).apply(&g, &base);
        let pr = ReplicationPlan::new(ReplicationScheme::ProportionalAllocation, budget, 9)
            .apply(&g, &base);
        let top_share = |p: &Placement| {
            let mut by_base: Vec<u32> = (0..base.num_objects() as u32).collect();
            by_base.sort_by_key(|&o| std::cmp::Reverse(base.replicas(o)));
            let top = &by_base[..base.num_objects() / 10];
            top.iter()
                .map(|&o| (p.replicas(o) - base.replicas(o)) as u64)
                .sum::<u64>() as f64
                / budget as f64
        };
        assert!(
            top_share(&pr) > top_share(&sq),
            "proportional top-decile share {} should exceed sqrt's {}",
            top_share(&pr),
            top_share(&sq)
        );
    }

    #[test]
    #[should_panic(expected = "budget must be 0")]
    fn owner_only_rejects_nonzero_budget() {
        let (g, base) = small_world();
        let _ = ReplicationPlan {
            scheme: ReplicationScheme::OwnerOnly,
            budget: 1,
            popularity: Popularity::Uniform,
            seed: 0,
        }
        .apply(&g, &base);
    }

    #[test]
    #[should_panic(expected = "exceeds free capacity")]
    fn budget_above_capacity_panics() {
        let (g, base) = small_world();
        let cap = g.num_nodes() as u64 * base.num_objects() as u64;
        let _ = ReplicationPlan::new(ReplicationScheme::Path, cap, 0).apply(&g, &base);
    }
}
