//! k-walker random walks (Lv et al. / the paper's ref [4] style).
//!
//! Random walks are the classic low-overhead alternative to flooding:
//! `k` walkers each take up to `ttl` steps, preferring not to backtrack.
//! Message cost is the number of steps taken, not exponential in TTL.

use crate::graph::Graph;
use qcp_faults::{FaultPlan, FaultStats};
use qcp_obs::{Counter, Event, Kernel, NoopRecorder, Recorder};
use qcp_util::rng::Pcg64;

/// Result of one k-walker search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Whether any walker hit a holder.
    pub found: bool,
    /// Steps taken by the first successful walker.
    pub found_at_step: Option<u32>,
    /// Total messages (steps across all walkers).
    pub messages: u64,
    /// Distinct peers visited across all walkers.
    pub visited: u32,
}

/// Runs `k` random walkers of `ttl` steps each from `source`.
///
/// Walkers avoid immediately stepping back to the node they came from
/// (unless it is the only neighbor). All walkers run to completion or
/// until their own success; the search succeeds if any walker found a
/// holder. `holders` must be sorted.
pub fn random_walk_search(
    graph: &Graph,
    source: u32,
    k: usize,
    ttl: u32,
    holders: &[u32],
    rng: &mut Pcg64,
) -> WalkOutcome {
    random_walk_search_rec(graph, source, k, ttl, holders, rng, &mut NoopRecorder)
}

/// [`random_walk_search`] with an instrumentation [`Recorder`]. The
/// recorder is write-only — outcomes are bitwise identical for any
/// recorder (pinned by the recorder-parity proptests).
#[allow(clippy::too_many_arguments)] // mirrors the walk + recorder
pub fn random_walk_search_rec<R: Recorder>(
    graph: &Graph,
    source: u32,
    k: usize,
    ttl: u32,
    holders: &[u32],
    rng: &mut Pcg64,
    rec: &mut R,
) -> WalkOutcome {
    debug_assert!(holders.windows(2).all(|w| w[0] < w[1]));
    rec.rec_span(Kernel::Walk);
    let mut messages = 0u64;
    let mut found_at_step: Option<u32> = None;
    let mut visited: Vec<u32> = vec![source];

    if holders.binary_search(&source).is_ok() {
        rec.rec_hop(Kernel::Walk, 0, 1);
        rec.rec_event(Kernel::Walk, Event::Hit);
        return WalkOutcome {
            found: true,
            found_at_step: Some(0),
            messages: 0,
            visited: 1,
        };
    }

    for _walker in 0..k {
        let mut current = source;
        let mut previous = u32::MAX;
        for step in 1..=ttl {
            let neighbors = graph.neighbors(current);
            if neighbors.is_empty() {
                break;
            }
            // Prefer a neighbor other than where we came from.
            let next = if neighbors.len() == 1 {
                neighbors[0]
            } else {
                let mut pick = neighbors[rng.index(neighbors.len())];
                let mut tries = 0;
                while pick == previous && tries < 4 {
                    pick = neighbors[rng.index(neighbors.len())];
                    tries += 1;
                }
                pick
            };
            messages += 1;
            previous = current;
            current = next;
            visited.push(current);
            if holders.binary_search(&current).is_ok() {
                found_at_step = match found_at_step {
                    Some(existing) => Some(existing.min(step)),
                    None => Some(step),
                };
                break;
            }
        }
    }
    visited.sort_unstable();
    visited.dedup();
    rec.rec_count(Kernel::Walk, Counter::Messages, messages);
    if let Some(step) = found_at_step {
        rec.rec_hop(Kernel::Walk, step, 1);
    }
    rec.rec_event(
        Kernel::Walk,
        if found_at_step.is_some() {
            Event::Hit
        } else {
            Event::Miss
        },
    );
    WalkOutcome {
        found: found_at_step.is_some(),
        found_at_step,
        messages,
        visited: visited.len() as u32,
    }
}

/// Fault-aware k-walker search: like [`random_walk_search`], but every
/// step consults `plan`. A step toward a node that is down at tick `time`
/// wastes the message and strands the walker in place for that step; an
/// in-flight drop does the same. Walks are fire-and-forget: no retries.
///
/// Under [`FaultPlan::none`] this consumes the same RNG stream and
/// returns the same outcome as [`random_walk_search`] (tested below). A
/// dead source issues nothing.
#[allow(clippy::too_many_arguments)] // mirrors the plain walk + fault context
pub fn random_walk_search_faulty(
    graph: &Graph,
    source: u32,
    k: usize,
    ttl: u32,
    holders: &[u32],
    rng: &mut Pcg64,
    plan: &FaultPlan,
    time: u64,
    nonce: u64,
) -> (WalkOutcome, FaultStats) {
    random_walk_search_faulty_rec(
        graph,
        source,
        k,
        ttl,
        holders,
        rng,
        plan,
        time,
        nonce,
        &mut NoopRecorder,
    )
}

/// [`random_walk_search_faulty`] with an instrumentation [`Recorder`];
/// write-only, so outcomes and stats are recorder-independent.
#[allow(clippy::too_many_arguments)] // mirrors the faulty walk + recorder
pub fn random_walk_search_faulty_rec<R: Recorder>(
    graph: &Graph,
    source: u32,
    k: usize,
    ttl: u32,
    holders: &[u32],
    rng: &mut Pcg64,
    plan: &FaultPlan,
    time: u64,
    nonce: u64,
    rec: &mut R,
) -> (WalkOutcome, FaultStats) {
    debug_assert!(holders.windows(2).all(|w| w[0] < w[1]));
    rec.rec_span(Kernel::Walk);
    let mut stats = FaultStats::default();
    if !plan.alive_at(source, time) {
        rec.rec_event(Kernel::Walk, Event::DeadSource);
        return (
            WalkOutcome {
                found: false,
                found_at_step: None,
                messages: 0,
                visited: 0,
            },
            stats,
        );
    }
    let mut messages = 0u64;
    let mut found_at_step: Option<u32> = None;
    let mut visited: Vec<u32> = vec![source];

    if holders.binary_search(&source).is_ok() {
        rec.rec_hop(Kernel::Walk, 0, 1);
        rec.rec_event(Kernel::Walk, Event::Hit);
        return (
            WalkOutcome {
                found: true,
                found_at_step: Some(0),
                messages: 0,
                visited: 1,
            },
            stats,
        );
    }

    for _walker in 0..k {
        let mut current = source;
        let mut previous = u32::MAX;
        for step in 1..=ttl {
            let neighbors = graph.neighbors(current);
            if neighbors.is_empty() {
                break;
            }
            // Prefer a neighbor other than where we came from (identical
            // RNG consumption to the fault-free walk).
            let next = if neighbors.len() == 1 {
                neighbors[0]
            } else {
                let mut pick = neighbors[rng.index(neighbors.len())];
                let mut tries = 0;
                while pick == previous && tries < 4 {
                    pick = neighbors[rng.index(neighbors.len())];
                    tries += 1;
                }
                pick
            };
            messages += 1;
            if !plan.alive_at(next, time) {
                // Message to a departed peer: wasted; walker stays put.
                stats.dead_targets += 1;
                continue;
            }
            if plan.drop_message(current, next, nonce, messages) {
                stats.dropped += 1;
                continue;
            }
            previous = current;
            current = next;
            visited.push(current);
            if holders.binary_search(&current).is_ok() {
                found_at_step = match found_at_step {
                    Some(existing) => Some(existing.min(step)),
                    None => Some(step),
                };
                break;
            }
        }
    }
    visited.sort_unstable();
    visited.dedup();
    rec.rec_count(Kernel::Walk, Counter::Messages, messages);
    rec.rec_faults(Kernel::Walk, &stats);
    if let Some(step) = found_at_step {
        rec.rec_hop(Kernel::Walk, step, 1);
    }
    rec.rec_event(
        Kernel::Walk,
        if found_at_step.is_some() {
            Event::Hit
        } else {
            Event::Miss
        },
    );
    (
        WalkOutcome {
            found: found_at_step.is_some(),
            found_at_step,
            messages,
            visited: visited.len() as u32,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn source_holder_is_instant() {
        let g = path(5);
        let mut rng = Pcg64::new(1);
        let out = random_walk_search(&g, 2, 4, 10, &[2], &mut rng);
        assert!(out.found);
        assert_eq!(out.found_at_step, Some(0));
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn walker_on_path_marches_forward() {
        // On a path with no backtracking, a single walker from 0 must
        // reach node 4 in exactly 4 steps.
        let g = path(5);
        let mut rng = Pcg64::new(2);
        let out = random_walk_search(&g, 0, 1, 10, &[4], &mut rng);
        assert!(out.found);
        assert_eq!(out.found_at_step, Some(4));
    }

    #[test]
    fn ttl_bounds_messages() {
        let g = path(100);
        let mut rng = Pcg64::new(3);
        let out = random_walk_search(&g, 0, 3, 7, &[99], &mut rng);
        assert!(!out.found);
        assert!(out.messages <= 3 * 7);
    }

    #[test]
    fn more_walkers_find_more_often() {
        let g = crate::topology::erdos_renyi(500, 6.0, 4).graph;
        let holders = vec![250u32];
        let trials = 200;
        let mut hits1 = 0;
        let mut hits16 = 0;
        let mut rng = Pcg64::new(5);
        for t in 0..trials {
            let src = (t % 500) as u32;
            if src == 250 {
                continue;
            }
            if random_walk_search(&g, src, 1, 30, &holders, &mut rng).found {
                hits1 += 1;
            }
            if random_walk_search(&g, src, 16, 30, &holders, &mut rng).found {
                hits16 += 1;
            }
        }
        assert!(
            hits16 > hits1 * 2,
            "16 walkers ({hits16}) should beat 1 walker ({hits1})"
        );
    }

    #[test]
    fn isolated_node_walk_terminates() {
        let g = Graph::from_edges(2, &[]);
        let mut rng = Pcg64::new(6);
        let out = random_walk_search(&g, 0, 4, 10, &[1], &mut rng);
        assert!(!out.found);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn visited_counts_distinct_nodes() {
        let g = path(5);
        let mut rng = Pcg64::new(7);
        let out = random_walk_search(&g, 0, 8, 10, &[], &mut rng);
        assert!(out.visited <= 5);
        assert!(out.visited >= 2);
    }

    #[test]
    fn faulty_walk_matches_plain_walk_under_none_plan() {
        let g = crate::topology::erdos_renyi(400, 5.0, 8).graph;
        let plan = FaultPlan::none(400);
        for seed in 0..10u64 {
            let mut r1 = Pcg64::new(seed);
            let mut r2 = Pcg64::new(seed);
            let plain = random_walk_search(&g, 3, 4, 25, &[111, 222], &mut r1);
            let (faulty, stats) =
                random_walk_search_faulty(&g, 3, 4, 25, &[111, 222], &mut r2, &plan, 0, seed);
            assert_eq!(plain, faulty, "seed {seed}");
            assert_eq!(stats, FaultStats::default());
            // RNG streams stayed in lockstep.
            assert_eq!(r1.next(), r2.next());
        }
    }

    #[test]
    fn faulty_walk_wastes_messages_on_drops() {
        use qcp_faults::FaultConfig;
        let g = crate::topology::erdos_renyi(400, 5.0, 9).graph;
        let plan = FaultPlan::build(
            400,
            &FaultConfig {
                loss: 0.5,
                churn: 0.0,
                ..Default::default()
            },
        );
        let mut rng = Pcg64::new(10);
        let (out, stats) = random_walk_search_faulty(&g, 0, 8, 30, &[], &mut rng, &plan, 0, 1);
        assert!(stats.dropped > 0, "50% loss must drop something");
        assert!(stats.wasted() <= out.messages);
        // Stranded walkers visit fewer distinct peers than their budget.
        assert!(out.visited as u64 <= out.messages + 1);
    }

    #[test]
    fn dead_source_issues_no_walkers() {
        use qcp_faults::FaultConfig;
        let g = path(5);
        let plan = FaultPlan::build(
            5,
            &FaultConfig {
                churn: 1.0,
                horizon: 2,
                rejoin: false,
                loss: 0.0,
                ..Default::default()
            },
        );
        let t = (0..2u64)
            .find(|&t| !plan.alive_at(0, t))
            .expect("full churn downs node 0");
        let mut rng = Pcg64::new(11);
        let (out, _) = random_walk_search_faulty(&g, 0, 4, 10, &[4], &mut rng, &plan, t, 0);
        assert!(!out.found);
        assert_eq!(out.messages, 0);
    }
}
