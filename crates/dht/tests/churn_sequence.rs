//! Integration: Chord correctness through arbitrary join/leave sequences,
//! and index behaviour across ownership changes.

use qcp_dht::{ChordNetwork, DhtIndex};
use qcp_util::hash::mix64;
use qcp_util::rng::Pcg64;

#[test]
fn lookups_stay_correct_through_random_churn() {
    let mut net = ChordNetwork::new(48, 1);
    let mut rng = Pcg64::new(2);
    let keys: Vec<u64> = (0..40).map(|k| mix64(k ^ 0xfeed)).collect();
    for round in 0..30 {
        // Alternate joins and leaves, keeping the ring nontrivial.
        if round % 2 == 0 || net.len() <= 8 {
            net.join(mix64(round as u64 ^ 0xadd));
        } else {
            let victim = rng.index(net.len()) as u32;
            net.leave(victim);
        }
        for &key in &keys {
            let from = rng.index(net.len()) as u32;
            let r = net.lookup(from, key);
            assert_eq!(
                r.owner,
                net.successor_of_key(key),
                "round {round}: wrong owner for key {key:x}"
            );
            assert!(r.hops <= net.hop_bound(), "round {round}: hops {}", r.hops);
        }
    }
}

#[test]
fn shrinking_to_minimum_ring_still_routes() {
    let mut net = ChordNetwork::new(16, 3);
    while net.len() > 2 {
        net.leave(0);
    }
    for k in 0..50u64 {
        let key = mix64(k);
        let r = net.lookup(0, key);
        assert_eq!(r.owner, net.successor_of_key(key));
    }
}

#[test]
fn index_republish_after_ownership_change() {
    // A posting published before a join may land on a node that no longer
    // owns the key afterwards — the classic DHT data-migration problem.
    // The simulator models republication: publishing again after churn
    // restores availability.
    let mut net = ChordNetwork::new(16, 4);
    let mut idx = DhtIndex::new(&net);
    idx.publish(&net, 0, "migrating-term", 42);
    assert_eq!(idx.query(&net, 3, &["migrating-term"]).results, vec![42]);

    // Heavy churn: many joins shift ownership boundaries.
    for j in 0..16 {
        net.join(mix64(j ^ 0x9999));
    }
    // Storage indices shifted under the old publication; a fresh index +
    // republish (what a real node's stabilization would do) restores it.
    let mut fresh = DhtIndex::new(&net);
    fresh.publish(&net, 1, "migrating-term", 42);
    let out = fresh.query(&net, 9, &["migrating-term"]);
    assert_eq!(out.results, vec![42]);
    assert!(out.hops <= 2 * net.hop_bound());
}

#[test]
fn index_survives_leave_with_graceful_handoff() {
    // `ChordNetwork::leave` shifts node indices; `DhtIndex::remove_node`
    // keeps storage aligned and hands back the departed node's posting
    // lists. Re-publishing them (graceful departure) must leave every
    // posting resolvable, including the ones the victim owned.
    let mut net = ChordNetwork::new(24, 11);
    let mut idx = DhtIndex::new(&net);
    let terms: Vec<String> = (0..40).map(|i| format!("term-{i}")).collect();
    for (i, t) in terms.iter().enumerate() {
        idx.publish(&net, (i % 24) as u32, t, i as u32);
    }
    let mut rng = Pcg64::new(12);
    for round in 0..6 {
        let victim = rng.index(net.len()) as u32;
        net.leave(victim);
        let stranded = idx.remove_node(victim);
        // Graceful handoff: the victim pushes its lists to new owners.
        let mut pairs: Vec<(u64, Vec<u32>)> = stranded.into_iter().collect();
        pairs.sort_unstable_by_key(|(k, _)| *k); // deterministic republish order
        for (key, objects) in pairs {
            for obj in objects {
                idx.publish_key(&net, 0, key, obj);
            }
        }
        for (i, t) in terms.iter().enumerate() {
            let out = idx.query(&net, round as u32 % net.len() as u32, &[t.as_str()]);
            assert_eq!(
                out.results,
                vec![i as u32],
                "round {round}: posting for {t} lost after leave"
            );
        }
    }
}

#[test]
fn index_abrupt_leave_loses_only_the_victims_postings() {
    // Abrupt departure: the victim's lists vanish. Everything it did NOT
    // own must still resolve; what it owned is gone (the stale scenario
    // `query_keys_faulty` accounts for at the fault layer).
    let mut net = ChordNetwork::new(24, 13);
    let mut idx = DhtIndex::new(&net);
    let terms: Vec<String> = (0..40).map(|i| format!("abrupt-{i}")).collect();
    for (i, t) in terms.iter().enumerate() {
        idx.publish(&net, (i % 24) as u32, t, i as u32);
    }
    let victim = 5u32;
    let victim_keys: Vec<bool> = terms
        .iter()
        .map(|t| net.successor_of_key(qcp_dht::key_for_term(t)) == victim)
        .collect();
    assert!(
        victim_keys.iter().any(|&v| v),
        "victim should own something with 40 terms over 24 nodes"
    );
    net.leave(victim);
    let dropped = idx.remove_node(victim); // dropped on the floor
    assert!(!dropped.is_empty());
    for (i, t) in terms.iter().enumerate() {
        let out = idx.query(&net, 0, &[t.as_str()]);
        if victim_keys[i] {
            assert!(
                out.results.is_empty(),
                "{t} was on the victim; must be gone"
            );
        } else {
            assert_eq!(out.results, vec![i as u32], "{t} must survive the leave");
        }
    }
}

#[test]
fn hop_counts_scale_logarithmically_across_sizes() {
    let mut means = Vec::new();
    for &n in &[64usize, 512, 4_096] {
        let net = ChordNetwork::new(n, 7);
        let mut rng = Pcg64::new(8);
        let total: u64 = (0..400)
            .map(|_| {
                let key = rng.next();
                let from = rng.index(n) as u32;
                net.lookup(from, key).hops as u64
            })
            .sum();
        means.push(total as f64 / 400.0);
    }
    // Each 8x growth adds ~3 hops (log2(8)=3) for greedy Chord; allow
    // generous slack but require clearly sublinear growth.
    assert!(means[1] - means[0] < 6.0, "64->512 hop growth {means:?}");
    assert!(means[2] - means[1] < 6.0, "512->4096 hop growth {means:?}");
    assert!(
        means[2] < 4.0 * means[0],
        "growth must be sublinear: {means:?}"
    );
}
