//! Integration: Chord correctness through arbitrary join/leave sequences,
//! and index behaviour across ownership changes.

use qcp_dht::{ChordNetwork, DhtIndex};
use qcp_util::hash::mix64;
use qcp_util::rng::Pcg64;

#[test]
fn lookups_stay_correct_through_random_churn() {
    let mut net = ChordNetwork::new(48, 1);
    let mut rng = Pcg64::new(2);
    let keys: Vec<u64> = (0..40).map(|k| mix64(k ^ 0xfeed)).collect();
    for round in 0..30 {
        // Alternate joins and leaves, keeping the ring nontrivial.
        if round % 2 == 0 || net.len() <= 8 {
            net.join(mix64(round as u64 ^ 0xadd));
        } else {
            let victim = rng.index(net.len()) as u32;
            net.leave(victim);
        }
        for &key in &keys {
            let from = rng.index(net.len()) as u32;
            let r = net.lookup(from, key);
            assert_eq!(
                r.owner,
                net.successor_of_key(key),
                "round {round}: wrong owner for key {key:x}"
            );
            assert!(r.hops <= net.hop_bound(), "round {round}: hops {}", r.hops);
        }
    }
}

#[test]
fn shrinking_to_minimum_ring_still_routes() {
    let mut net = ChordNetwork::new(16, 3);
    while net.len() > 2 {
        net.leave(0);
    }
    for k in 0..50u64 {
        let key = mix64(k);
        let r = net.lookup(0, key);
        assert_eq!(r.owner, net.successor_of_key(key));
    }
}

#[test]
fn index_republish_after_ownership_change() {
    // A posting published before a join may land on a node that no longer
    // owns the key afterwards — the classic DHT data-migration problem.
    // The simulator models republication: publishing again after churn
    // restores availability.
    let mut net = ChordNetwork::new(16, 4);
    let mut idx = DhtIndex::new(&net);
    idx.publish(&net, 0, "migrating-term", 42);
    assert_eq!(idx.query(&net, 3, &["migrating-term"]).results, vec![42]);

    // Heavy churn: many joins shift ownership boundaries.
    for j in 0..16 {
        net.join(mix64(j ^ 0x9999));
    }
    // Storage indices shifted under the old publication; a fresh index +
    // republish (what a real node's stabilization would do) restores it.
    let mut fresh = DhtIndex::new(&net);
    fresh.publish(&net, 1, "migrating-term", 42);
    let out = fresh.query(&net, 9, &["migrating-term"]);
    assert_eq!(out.results, vec![42]);
    assert!(out.hops <= 2 * net.hop_bound());
}

#[test]
fn hop_counts_scale_logarithmically_across_sizes() {
    let mut means = Vec::new();
    for &n in &[64usize, 512, 4_096] {
        let net = ChordNetwork::new(n, 7);
        let mut rng = Pcg64::new(8);
        let total: u64 = (0..400)
            .map(|_| {
                let key = rng.next();
                let from = rng.index(n) as u32;
                net.lookup(from, key).hops as u64
            })
            .sum();
        means.push(total as f64 / 400.0);
    }
    // Each 8x growth adds ~3 hops (log2(8)=3) for greedy Chord; allow
    // generous slack but require clearly sublinear growth.
    assert!(means[1] - means[0] < 6.0, "64->512 hop growth {means:?}");
    assert!(means[2] - means[1] < 6.0, "512->4096 hop growth {means:?}");
    assert!(
        means[2] < 4.0 * means[0],
        "growth must be sublinear: {means:?}"
    );
}
