//! Pastry-style prefix routing (Rowstron & Druschel — the paper's ref [1]).
//!
//! A second structured substrate beside Chord, with the classic Pastry
//! geometry: 64-bit ids read as 16 hexadecimal digits (`b = 4`), a routing
//! table of `rows × 16` entries (row `r` holds nodes sharing exactly `r`
//! leading digits with the owner), and a leaf set of the `L` numerically
//! closest nodes. A key is owned by the numerically closest node; routing
//! fixes one digit per hop, giving `O(log_16 n)` hops — roughly 4× fewer
//! than Chord's base-2 fingers at equal n, at 16× the per-row state.
//!
//! As with [`crate::chord`], this is a simulator: state is globally
//! consistent and join/leave trigger immediate rebuild.

use qcp_util::hash::mix64;
use qcp_util::FxHashMap;

/// Bits per digit (hexadecimal Pastry).
const DIGIT_BITS: u32 = 4;
/// Digits per 64-bit id.
const NUM_DIGITS: usize = (64 / DIGIT_BITS) as usize;
/// Radix.
const RADIX: usize = 1 << DIGIT_BITS;
/// Leaf-set size per side.
const LEAF_SIDE: usize = 8;

/// Result of a Pastry route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteResult {
    /// Index of the key's owner (numerically closest node).
    pub owner: u32,
    /// Hops taken.
    pub hops: u32,
}

/// A Pastry overlay.
#[derive(Debug, Clone)]
pub struct PastryNetwork {
    /// Sorted node ids.
    ids: Vec<u64>,
    /// `tables[v][r * RADIX + c]` = node index sharing `r` digits with `v`
    /// and having digit `c` at position `r` (u32::MAX = empty).
    tables: Vec<Vec<u32>>,
    /// Rows materialized per table.
    rows: usize,
}

/// Digit `pos` (0 = most significant) of `id`.
#[inline]
fn digit(id: u64, pos: usize) -> usize {
    ((id >> (64 - DIGIT_BITS as usize * (pos + 1))) & (RADIX as u64 - 1)) as usize
}

/// Length of the shared digit prefix of `a` and `b`.
#[inline]
fn shared_prefix(a: u64, b: u64) -> usize {
    let x = a ^ b;
    if x == 0 {
        return NUM_DIGITS;
    }
    (x.leading_zeros() / DIGIT_BITS) as usize
}

/// Absolute circular distance between two ids on the 2^64 ring.
#[inline]
fn circular_distance(a: u64, b: u64) -> u64 {
    let d = a.wrapping_sub(b);
    d.min(d.wrapping_neg())
}

impl PastryNetwork {
    /// Builds a network of `n` nodes with ids derived from `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut ids: Vec<u64> = (0..n as u64)
            .map(|i| mix64(seed ^ mix64(i ^ 0x9a57)))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "id collision (astronomically unlikely)");
        let mut net = Self {
            ids,
            tables: Vec::new(),
            rows: 0,
        };
        net.rebuild();
        net
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty (cannot happen).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id of node `v`.
    pub fn id_of(&self, v: u32) -> u64 {
        self.ids[v as usize]
    }

    /// Index of the numerically closest node to `key` (the Pastry owner).
    pub fn owner_of_key(&self, key: u64) -> u32 {
        let n = self.ids.len();
        let pos = self.ids.partition_point(|&id| id < key);
        // Candidates: the ring neighbors on both sides of the insertion
        // point (with wraparound).
        let a = (pos % n) as u32;
        let b = ((pos + n - 1) % n) as u32;
        let da = circular_distance(self.ids[a as usize], key);
        let db = circular_distance(self.ids[b as usize], key);
        // Tie-break toward the numerically larger id (deterministic).
        if da < db || (da == db && self.ids[a as usize] > self.ids[b as usize]) {
            a
        } else {
            b
        }
    }

    fn rebuild(&mut self) {
        let n = self.ids.len();
        // Rows needed: prefixes longer than log16(n)+2 are almost surely
        // singleton; cap at NUM_DIGITS.
        let rows = (((n as f64).log2() / DIGIT_BITS as f64).ceil() as usize + 3).min(NUM_DIGITS);
        self.rows = rows;
        // For each row r: map (r-digit prefix) -> representative per digit.
        // Representative choice: the node with the smallest id in that
        // cell (deterministic, and irrelevant for hop counts).
        let mut tables = vec![vec![u32::MAX; rows * RADIX]; n];
        for r in 0..rows {
            let mut cells: FxHashMap<u64, [u32; RADIX]> = FxHashMap::default();
            let shift = 64 - DIGIT_BITS as usize * r;
            for (v, &id) in self.ids.iter().enumerate() {
                let prefix = if r == 0 { 0 } else { id >> shift };
                let d = digit(id, r);
                let cell = cells.entry(prefix).or_insert([u32::MAX; RADIX]);
                if cell[d] == u32::MAX {
                    cell[d] = v as u32;
                }
            }
            for (v, &id) in self.ids.iter().enumerate() {
                let prefix = if r == 0 { 0 } else { id >> shift };
                if let Some(cell) = cells.get(&prefix) {
                    let base = r * RADIX;
                    tables[v][base..base + RADIX].copy_from_slice(cell);
                }
            }
        }
        self.tables = tables;
    }

    /// Leaf-set check: true if `key`'s owner is within `v`'s leaf range.
    fn in_leaf_range(&self, v: u32, key: u64) -> bool {
        let n = self.ids.len();
        if n <= 2 * LEAF_SIDE + 1 {
            return true;
        }
        let owner = self.owner_of_key(key) as usize;
        let vi = v as usize;
        let fwd = (owner + n - vi) % n;
        let bwd = (vi + n - owner) % n;
        fwd <= LEAF_SIDE || bwd <= LEAF_SIDE
    }

    /// Routes `key` from node `from`, counting hops.
    pub fn route(&self, from: u32, key: u64) -> RouteResult {
        let owner = self.owner_of_key(key);
        let mut current = from;
        let mut hops = 0u32;
        loop {
            if current == owner {
                return RouteResult { owner, hops };
            }
            if self.in_leaf_range(current, key) {
                // One leaf-set hop delivers to the owner.
                return RouteResult {
                    owner,
                    hops: hops + 1,
                };
            }
            let cur_id = self.ids[current as usize];
            let r = shared_prefix(cur_id, key);
            let next = if r < self.rows {
                let entry = self.tables[current as usize][r * RADIX + digit(key, r)];
                if entry != u32::MAX && entry != current {
                    entry
                } else {
                    self.fallback(current, key)
                }
            } else {
                self.fallback(current, key)
            };
            debug_assert_ne!(next, current, "routing made no progress");
            current = next;
            hops += 1;
            debug_assert!(
                (hops as usize) <= NUM_DIGITS + 2 * self.ids.len(),
                "routing loop"
            );
        }
    }

    /// Pastry fallback: move to a ring neighbor strictly closer to the
    /// key (guarantees progress; rare when tables are dense).
    fn fallback(&self, current: u32, key: u64) -> u32 {
        let n = self.ids.len();
        let cur_dist = circular_distance(self.ids[current as usize], key);
        // Step toward the key along the sorted ring.
        let pos = self.ids.partition_point(|&id| id < key) % n;
        let candidates = [
            pos as u32,
            ((pos + n - 1) % n) as u32,
            ((current as usize + 1) % n) as u32,
            ((current as usize + n - 1) % n) as u32,
        ];
        for c in candidates {
            if c != current && circular_distance(self.ids[c as usize], key) < cur_dist {
                return c;
            }
        }
        // Only the owner itself remains closer.
        self.owner_of_key(key)
    }

    /// Adds a node; all state rebuilt (instant stabilization).
    pub fn join(&mut self, id_seed: u64) -> u32 {
        let id = mix64(id_seed ^ 0x9a57_10ad);
        let pos = self.ids.partition_point(|&x| x < id);
        assert!(self.ids.get(pos) != Some(&id), "id collision");
        self.ids.insert(pos, id);
        self.rebuild();
        pos as u32
    }

    /// Removes node `v`.
    pub fn leave(&mut self, v: u32) {
        assert!(self.ids.len() > 1, "cannot empty the overlay");
        self.ids.remove(v as usize);
        self.rebuild();
    }

    /// Expected hop bound: one per fixed digit plus leaf slack.
    pub fn hop_bound(&self) -> u32 {
        ((self.len() as f64).log2() / DIGIT_BITS as f64).ceil() as u32 + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_extraction() {
        let id = 0xF123_4567_89AB_CDEF_u64;
        assert_eq!(digit(id, 0), 0xF);
        assert_eq!(digit(id, 1), 0x1);
        assert_eq!(digit(id, 15), 0xF);
    }

    #[test]
    fn shared_prefix_counts_digits() {
        assert_eq!(shared_prefix(0xABCD << 48, 0xABCE << 48), 3);
        assert_eq!(shared_prefix(0, 0), NUM_DIGITS);
        assert_eq!(shared_prefix(0, 1 << 63), 0);
    }

    #[test]
    fn owner_is_numerically_closest() {
        let net = PastryNetwork::new(128, 1);
        for k in 0..300u64 {
            let key = mix64(k);
            let owner = net.owner_of_key(key);
            let od = circular_distance(net.id_of(owner), key);
            for v in 0..net.len() as u32 {
                assert!(
                    circular_distance(net.id_of(v), key) >= od,
                    "node {v} closer than owner for key {key:x}"
                );
            }
        }
    }

    #[test]
    fn route_reaches_owner_from_anywhere() {
        let net = PastryNetwork::new(256, 2);
        for k in 0..100u64 {
            let key = mix64(k ^ 0x1111);
            let expected = net.owner_of_key(key);
            for from in [0u32, 17, 99, 255] {
                let r = net.route(from, key);
                assert_eq!(r.owner, expected);
                assert!(r.hops <= net.hop_bound(), "hops {}", r.hops);
            }
        }
    }

    #[test]
    fn hops_beat_chord_at_scale() {
        let n = 4_096;
        let pastry = PastryNetwork::new(n, 3);
        let chord = crate::chord::ChordNetwork::new(n, 3);
        let mut pastry_total = 0u64;
        let mut chord_total = 0u64;
        let samples = 400;
        for k in 0..samples {
            let key = mix64(0x5a ^ k);
            let from = (k % n as u64) as u32;
            pastry_total += pastry.route(from, key).hops as u64;
            chord_total += chord.lookup(from, key).hops as u64;
        }
        let p = pastry_total as f64 / samples as f64;
        let c = chord_total as f64 / samples as f64;
        assert!(
            p < c,
            "base-16 pastry ({p:.2} hops) must beat base-2 chord ({c:.2})"
        );
        // log16(4096) = 3: expect ~3-5 mean hops.
        assert!(p < 6.0, "pastry mean hops {p}");
    }

    #[test]
    fn single_and_tiny_networks_route() {
        let one = PastryNetwork::new(1, 4);
        let r = one.route(0, 12345);
        assert_eq!(r.owner, 0);
        assert_eq!(r.hops, 0);
        let two = PastryNetwork::new(2, 5);
        for key in [0u64, u64::MAX / 2, u64::MAX] {
            let r = two.route(0, key);
            assert_eq!(r.owner, two.owner_of_key(key));
            assert!(r.hops <= 2);
        }
    }

    #[test]
    fn join_and_leave_preserve_routing() {
        let mut net = PastryNetwork::new(64, 6);
        net.join(111);
        net.join(222);
        net.leave(10);
        for k in 0..60u64 {
            let key = mix64(k ^ 0xbeef);
            let r = net.route(2, key);
            assert_eq!(r.owner, net.owner_of_key(key));
        }
        assert_eq!(net.len(), 65);
    }

    #[test]
    fn deterministic_construction() {
        let a = PastryNetwork::new(100, 7);
        let b = PastryNetwork::new(100, 7);
        assert_eq!(a.id_of(50), b.id_of(50));
        assert_eq!(a.route(0, 999), b.route(0, 999));
    }

    #[test]
    fn routing_from_owner_is_free() {
        let net = PastryNetwork::new(128, 8);
        let key = mix64(0xcafe);
        let owner = net.owner_of_key(key);
        assert_eq!(net.route(owner, key).hops, 0);
    }
}
