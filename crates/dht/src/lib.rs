//! `qcp-dht` — a Chord-style structured overlay simulator.
//!
//! Hybrid P2P systems (the paper's §V and its refs [5], [20], [21]) fall
//! back to a DHT when the unstructured flood fails. To evaluate that
//! crossover honestly the reproduction needs a real structured substrate:
//!
//! * [`ring`] — 64-bit identifier-ring arithmetic;
//! * [`chord`] — the ring network: sorted node ids, per-node finger
//!   tables, greedy `O(log n)` lookup with hop accounting, and node
//!   join/leave;
//! * [`pastry`] — Pastry-style base-16 prefix routing with leaf sets
//!   (the paper's ref [1]), for structured-overlay comparisons;
//! * [`index`] — a distributed inverted keyword index over the ring
//!   (term → posting list at `successor(hash(term))`), with multi-term
//!   AND queries and message-cost accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chord;
pub mod index;
pub mod pastry;
pub mod ring;

pub use chord::{
    ChordNetwork, FaultyLookupResult, LookupResult, TimedLookupResult, DEFAULT_SUCC_LEN,
};
pub use index::{DhtIndex, DhtQueryOutcome, TimedQueryOutcome};
pub use pastry::{PastryNetwork, RouteResult};
pub use ring::{distance_cw, in_interval_oc, key_for_name, key_for_term};
