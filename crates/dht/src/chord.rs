//! The Chord ring network.
//!
//! A simulated Chord deployment: every node has a random 64-bit id, a
//! finger table (`finger[i] = successor(id + 2^i)`) and a successor
//! pointer. Lookups route greedily via the closest preceding finger and
//! count hops; with `n` nodes they take `O(log n)` hops, the baseline the
//! paper's §V compares hybrid search against.
//!
//! Join/leave rebuild the affected finger entries. This is a simulator,
//! not a networked implementation, so for *those* operations
//! "stabilization" is immediate and deterministic — exactly what the
//! steady-state evaluation needs.
//!
//! The **maintenance model** (PR 4) adds the realistic departure path:
//! [`ChordNetwork::depart`] marks a node down *without* touching anyone
//! else's tables, so fingers and successor lists dangle exactly as they
//! would in a deployed ring; periodic [`ChordNetwork::stabilize`] rounds
//! (successor-list repair, one adoption per node per round) and
//! [`ChordNetwork::fix_fingers`] rounds then heal the tables
//! incrementally, and [`ChordNetwork::lookup_stale`] routes over the
//! possibly-stale local tables only — succeeding, paying wasted probes,
//! or failing outright depending on how far maintenance has caught up.

use crate::ring::{in_interval_oc, in_interval_oo};
use qcp_faults::{FaultPlan, FaultStats, RetryPolicy};
use qcp_obs::{Counter, Event, Kernel, Recorder};
use qcp_util::hash::mix64;
use qcp_vtime::Calendar;

/// Number of finger-table entries (ring is 2^64).
pub const FINGER_BITS: usize = 64;

/// Default successor-list length *r*: Chord survives up to `r` consecutive
/// departures between maintenance rounds.
pub const DEFAULT_SUCC_LEN: usize = 4;

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Index (into the network's node table) of the key's owner.
    pub owner: u32,
    /// Routing hops taken (0 when the source already owns the key).
    pub hops: u32,
}

/// Result of a fault-aware lookup ([`ChordNetwork::lookup_faulty`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyLookupResult {
    /// The resolved owner, or `None` when routing failed outright (dead
    /// source, no alive owner, or every route timed out).
    pub owner: Option<u32>,
    /// Successful routing hops taken.
    pub hops: u32,
    /// Total transmissions, including retries and wasted probes.
    pub messages: u64,
}

/// Result of a virtual-time lookup ([`ChordNetwork::lookup_timed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedLookupResult {
    /// The resolved owner, or `None` when routing failed or the cutoff
    /// landed first.
    pub owner: Option<u32>,
    /// Successful routing hops taken.
    pub hops: u32,
    /// Total transmissions, including retries and abandoned attempts.
    pub messages: u64,
    /// Virtual time the lookup consumed: link latencies of delivered
    /// replies plus every timeout waited out (the cutoff, when
    /// truncated).
    pub elapsed: u64,
    /// Whether the `cutoff` stopped the lookup before it resolved.
    pub truncated: bool,
}

/// Tie-break keys for the per-attempt reply/timer race on the calendar:
/// at an exact tie the reply pops first — a reply landing on the
/// timeout tick is accepted, the retry is not fired.
const REPLY_TIE: u64 = 0;
const TIMER_TIE: u64 = 1;

/// One in-flight race entry of [`ChordNetwork::lookup_timed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Wire {
    /// The candidate's response to a delivered transmission.
    Reply,
    /// The sender's retransmission timer.
    Timer,
}

/// A Chord network of simulated nodes.
///
/// ```
/// use qcp_dht::ChordNetwork;
///
/// let net = ChordNetwork::new(256, 7);
/// let result = net.lookup(0, 0xDEAD_BEEF);
/// assert_eq!(result.owner, net.successor_of_key(0xDEAD_BEEF));
/// assert!(result.hops <= net.hop_bound());
/// ```
#[derive(Debug, Clone)]
pub struct ChordNetwork {
    /// Sorted node ids.
    ids: Vec<u64>,
    /// `fingers[v][i]` = node index of `successor(ids[v] + 2^i)`.
    fingers: Vec<Vec<u32>>,
    /// `succ_lists[v]` = the next `succ_len` nodes clockwise after `v`
    /// (as last refreshed — entries dangle after [`Self::depart`]).
    succ_lists: Vec<Vec<u32>>,
    /// Nodes marked down by [`Self::depart`]; they keep their id slot so
    /// other nodes' stale table entries still *point* somewhere.
    departed: Vec<bool>,
    /// Successor-list length *r*.
    succ_len: usize,
}

impl ChordNetwork {
    /// Builds a network of `n` nodes with ids derived from `seed` and the
    /// default successor-list length.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_succ_len(n, seed, DEFAULT_SUCC_LEN)
    }

    /// Builds a network with an explicit successor-list length `r >= 1`.
    pub fn with_succ_len(n: usize, seed: u64, r: usize) -> Self {
        assert!(n >= 1);
        assert!(r >= 1, "successor list needs at least one entry");
        let mut ids: Vec<u64> = (0..n as u64).map(|i| mix64(seed ^ mix64(i))).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "id collision (astronomically unlikely)");
        let mut net = Self {
            ids,
            fingers: Vec::new(),
            succ_lists: Vec::new(),
            departed: vec![false; n],
            succ_len: r,
        };
        net.rebuild_all_fingers();
        net
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the ring has no nodes (cannot happen).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id of node `v`.
    pub fn id_of(&self, v: u32) -> u64 {
        self.ids[v as usize]
    }

    /// Index of the node owning `key` (its successor on the ring).
    pub fn successor_of_key(&self, key: u64) -> u32 {
        let idx = self.ids.partition_point(|&id| id < key);
        (if idx == self.ids.len() { 0 } else { idx }) as u32
    }

    fn rebuild_all_fingers(&mut self) {
        let n = self.ids.len();
        self.fingers = (0..n)
            .map(|v| self.build_fingers_for(self.ids[v]))
            .collect();
        // Successor lists: the next min(r, n-1) nodes clockwise. The ids
        // are sorted, so index order *is* clockwise order.
        let r = self.succ_len.min(n.saturating_sub(1));
        self.succ_lists = (0..n)
            .map(|v| (1..=r).map(|off| ((v + off) % n) as u32).collect())
            .collect();
    }

    fn build_fingers_for(&self, id: u64) -> Vec<u32> {
        (0..FINGER_BITS)
            .map(|i| self.successor_of_key(id.wrapping_add(1u64 << i)))
            .collect()
    }

    /// Greedy Chord lookup from node `from` for `key`.
    pub fn lookup(&self, from: u32, key: u64) -> LookupResult {
        let mut current = from;
        let mut hops = 0u32;
        loop {
            let cur_id = self.ids[current as usize];
            // A node knows its predecessor: if the key falls in
            // (pred, current] the current node owns it.
            let n = self.len();
            let pred_id = self.ids[(current as usize + n - 1) % n];
            if n == 1 || in_interval_oc(key, pred_id, cur_id) {
                return LookupResult {
                    owner: current,
                    hops,
                };
            }
            let succ = self.fingers[current as usize][0];
            let succ_id = self.ids[succ as usize];
            if in_interval_oc(key, cur_id, succ_id) {
                // Key owned by our successor: one final hop.
                return LookupResult {
                    owner: succ,
                    hops: hops + 1,
                };
            }
            // Closest preceding finger strictly inside (cur, key).
            let mut next = succ;
            for i in (0..FINGER_BITS).rev() {
                let f = self.fingers[current as usize][i];
                let f_id = self.ids[f as usize];
                if in_interval_oo(f_id, cur_id, key) {
                    next = f;
                    break;
                }
            }
            if next == current {
                // Degenerate small ring: step to successor.
                next = succ;
            }
            current = next;
            hops += 1;
            debug_assert!(hops as usize <= self.len() + FINGER_BITS, "routing loop");
        }
    }

    /// Fault-tolerant lookup: routes around nodes marked dead in `alive`
    /// (indexed like the node table). Models Chord's successor-list
    /// recovery: a dead finger is skipped in favor of the next-best alive
    /// one; the key's owner becomes its first *alive* successor.
    ///
    /// `from` must be alive; panics if every node is dead.
    pub fn lookup_with_failures(&self, from: u32, key: u64, alive: &[bool]) -> LookupResult {
        assert_eq!(alive.len(), self.len());
        assert!(alive[from as usize], "source node is dead");
        let owner = self
            .first_alive_successor(key, alive)
            // qcplint: allow(panic) — documented precondition: the method
            // contract states it panics when every node is dead.
            .expect("no alive nodes in the ring");
        let owner_id = self.ids[owner as usize];
        let mut current = from;
        let mut hops = 0u32;
        // Greedy progress toward the owner's id, never stepping on a dead
        // node; bounded fallback walks the sorted ring.
        while current != owner {
            let cur_id = self.ids[current as usize];
            let mut next: Option<u32> = None;
            for i in (0..FINGER_BITS).rev() {
                let f = self.fingers[current as usize][i];
                if f == current || !alive[f as usize] {
                    continue;
                }
                let f_id = self.ids[f as usize];
                if in_interval_oc(f_id, cur_id, owner_id) {
                    next = Some(f);
                    break;
                }
            }
            let next = next.unwrap_or_else(|| {
                // Successor-list fallback: the next alive node clockwise.
                let n = self.len();
                let mut idx = (current as usize + 1) % n;
                while !alive[idx] {
                    idx = (idx + 1) % n;
                }
                idx as u32
            });
            current = next;
            hops += 1;
            debug_assert!(
                (hops as usize) <= 2 * self.len() + FINGER_BITS,
                "fault-tolerant routing loop"
            );
        }
        LookupResult { owner, hops }
    }

    /// Lookup under a [`FaultPlan`]: every hop is a real transmission that
    /// can be lost in flight or addressed to a departed finger.
    ///
    /// Per-hop protocol, mirroring a request/response RPC layer:
    ///
    /// 1. pick the best next hop — the closest preceding alive-looking
    ///    finger inside `(current, owner]`, falling back to the clockwise
    ///    ring scan (successor-list recovery);
    /// 2. transmit; a message **lost in flight** is retried after
    ///    `policy.timeout_after(attempt)` ticks, up to
    ///    `policy.max_retries` times — when the budget is exhausted the
    ///    hop *times out*, the finger is excluded for this lookup, and the
    ///    router repairs by picking the next-best candidate;
    /// 3. a message to a **departed node** wastes one probe and one base
    ///    timeout, then the finger is excluded immediately (there is no
    ///    point re-sending to a dead peer).
    ///
    /// This keeps the [`FaultStats`] identity for retrying engines:
    /// `dropped == retries + timeouts`. Delivered hops charge the link
    /// latency to `ticks`.
    ///
    /// Returns `owner: None` when the lookup fails outright: the source is
    /// down, no alive owner exists, or every route to the owner was
    /// excluded by timeouts.
    pub fn lookup_faulty(
        &self,
        from: u32,
        key: u64,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        time: u64,
        nonce: u64,
    ) -> (FaultyLookupResult, FaultStats) {
        assert_eq!(plan.num_nodes(), self.len(), "plan must cover the ring");
        let mut stats = FaultStats::default();
        let fail = |hops, messages, stats| {
            (
                FaultyLookupResult {
                    owner: None,
                    hops,
                    messages,
                },
                stats,
            )
        };
        if !plan.alive_at(from, time) {
            return fail(0, 0, stats);
        }
        let Some(owner) = self.first_alive_successor_at(key, plan, time) else {
            return fail(0, 0, stats);
        };
        let owner_id = self.ids[owner as usize];
        let mut current = from;
        let mut hops = 0u32;
        let mut messages = 0u64;
        // Fingers ruled out for this lookup (timed out or found dead).
        let mut excluded: Vec<u32> = Vec::new();
        while current != owner {
            let Some(cand) = self.next_hop_candidate(current, owner_id, &excluded) else {
                return fail(hops, messages, stats);
            };
            if !plan.alive_at(cand, time) {
                // One probe wasted discovering the departure.
                messages += 1;
                stats.dead_targets += 1;
                stats.ticks += policy.timeout_after(0);
                excluded.push(cand);
                continue;
            }
            // Transmit with the bounded-retry budget.
            let mut attempt = 0u32;
            let delivered = loop {
                messages += 1;
                if plan.drop_message(current, cand, nonce, messages) {
                    stats.dropped += 1;
                    stats.ticks += policy.timeout_after(attempt);
                    if attempt >= policy.max_retries {
                        stats.timeouts += 1;
                        if cand == owner {
                            // The destination itself is unreachable: no
                            // amount of repair can route around the owner.
                            return fail(hops, messages, stats);
                        }
                        excluded.push(cand);
                        break false;
                    }
                    attempt += 1;
                    stats.retries += 1;
                } else {
                    stats.ticks += plan.latency(current, cand);
                    break true;
                }
            };
            if delivered {
                current = cand;
                hops += 1;
            }
            debug_assert!(
                (hops as usize) <= 2 * self.len() + FINGER_BITS,
                "faulty routing loop"
            );
        }
        (
            FaultyLookupResult {
                owner: Some(owner),
                hops,
                messages,
            },
            stats,
        )
    }

    /// [`Self::lookup_faulty`] with an explicit [`Recorder`].
    ///
    /// Recording happens **after** the lookup completes, from the
    /// returned result and stats alone — the recorder is write-only and
    /// can never perturb routing, retries, or fault draws, so the
    /// returned pair is bitwise-identical to [`Self::lookup_faulty`]'s
    /// (pinned in tests). Records under [`Kernel::ChordLookup`]: one
    /// span, the message total, the per-hop histogram entry at the
    /// successful hop count, the full fault counters, and a
    /// [`Event::Hit`] / [`Event::Miss`] outcome.
    #[allow(clippy::too_many_arguments)] // mirrors lookup_faulty plus the recorder
    pub fn lookup_faulty_rec<R: Recorder>(
        &self,
        from: u32,
        key: u64,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        time: u64,
        nonce: u64,
        rec: &mut R,
    ) -> (FaultyLookupResult, FaultStats) {
        let (result, stats) = self.lookup_faulty(from, key, plan, policy, time, nonce);
        rec.rec_span(Kernel::ChordLookup);
        rec.rec_count(Kernel::ChordLookup, Counter::Messages, result.messages);
        rec.rec_faults(Kernel::ChordLookup, &stats);
        if result.owner.is_some() {
            rec.rec_hop(Kernel::ChordLookup, result.hops, 1);
            rec.rec_event(Kernel::ChordLookup, Event::Hit);
        } else {
            rec.rec_event(Kernel::ChordLookup, Event::Miss);
        }
        (result, stats)
    }

    /// Virtual-time fault-aware lookup: [`Self::lookup_faulty`] with the
    /// timeout expiry made *real* on the `qcp-vtime` calendar.
    ///
    /// Per attempt the router schedules two events: the candidate's
    /// reply at `now + plan.latency(current, cand)` (only when the
    /// candidate is alive and the transmission is not dropped) and the
    /// retransmission timer at `now + policy.timeout_for(attempt,
    /// nonce)` (jittered when the policy carries a jitter seed). The
    /// earlier event wins the race:
    ///
    /// * **reply first** — the hop is delivered and the pending timer is
    ///   abandoned;
    /// * **timer first** — the attempt is charged
    ///   ([`FaultStats::dropped`] / [`FaultStats::dead_targets`] when the
    ///   message actually went missing; *nothing* when a slow reply was
    ///   merely outrun — that abandoned attempt is why the timed path's
    ///   identity relaxes to `dropped <= retries + timeouts`) and the
    ///   policy's ladder decides between a retry and a hop timeout.
    ///
    /// Dead candidates never reply, so — unlike the instant-timeout
    /// path, which discovers departure in one probe — they cost the
    /// *full* retry ladder before exclusion, one `dead_targets` entry
    /// per attempt. `cutoff` (relative to the lookup's start) truncates
    /// the lookup when the next event would land past it.
    ///
    /// Elapsed virtual time is `Calendar::now` at exit and is also
    /// stored in [`FaultStats::ticks`].
    #[allow(clippy::too_many_arguments)] // mirrors `lookup_faulty` + the cutoff
    pub fn lookup_timed(
        &self,
        from: u32,
        key: u64,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        time: u64,
        nonce: u64,
        cutoff: Option<u64>,
    ) -> (TimedLookupResult, FaultStats) {
        assert_eq!(plan.num_nodes(), self.len(), "plan must cover the ring");
        let mut stats = FaultStats::default();
        let mut result = TimedLookupResult {
            owner: None,
            hops: 0,
            messages: 0,
            elapsed: 0,
            truncated: false,
        };
        if !plan.alive_at(from, time) {
            return (result, stats);
        }
        let Some(owner) = self.first_alive_successor_at(key, plan, time) else {
            return (result, stats);
        };
        let owner_id = self.ids[owner as usize];
        let mut cal: Calendar<Wire> = Calendar::new();
        let mut current = from;
        // Fingers ruled out for this lookup (timed out or found dead).
        let mut excluded: Vec<u32> = Vec::new();
        'route: while current != owner {
            let Some(cand) = self.next_hop_candidate(current, owner_id, &excluded) else {
                break 'route; // every route to the owner is excluded
            };
            let alive = plan.alive_at(cand, time);
            let mut attempt = 0u32;
            loop {
                result.messages += 1;
                let dropped = alive && plan.drop_message(current, cand, nonce, result.messages);
                if alive && !dropped {
                    cal.schedule_after(plan.latency(current, cand), REPLY_TIE, Wire::Reply);
                }
                cal.schedule_after(policy.timeout_for(attempt, nonce), TIMER_TIE, Wire::Timer);
                // qcplint: allow(panic) — a timer was scheduled just above.
                let next_t = cal.peek_time().expect("a timer is always pending");
                if cutoff.is_some_and(|c| next_t > c) {
                    result.truncated = true;
                    // qcplint: allow(panic) — truncation is set only under `Some`.
                    result.elapsed = cutoff.expect("truncation implies a cutoff");
                    stats.ticks = result.elapsed;
                    return (result, stats);
                }
                // qcplint: allow(panic) — a timer was scheduled just above.
                let (_, ev) = cal.pop().expect("a timer is always pending");
                // The race is decided: abandon the loser (the timer
                // after a delivery, or a reply slower than the timer).
                cal.clear();
                match ev {
                    Wire::Reply => {
                        current = cand;
                        result.hops += 1;
                        break;
                    }
                    Wire::Timer => {
                        if !alive {
                            stats.dead_targets += 1;
                        } else if dropped {
                            stats.dropped += 1;
                        }
                        if attempt >= policy.max_retries {
                            stats.timeouts += 1;
                            if cand == owner {
                                // The destination itself is unreachable:
                                // no repair can route around the owner.
                                break 'route;
                            }
                            excluded.push(cand);
                            break;
                        }
                        attempt += 1;
                        stats.retries += 1;
                    }
                }
            }
            debug_assert!(
                (result.hops as usize) <= 2 * self.len() + FINGER_BITS,
                "timed routing loop"
            );
        }
        if current == owner {
            result.owner = Some(owner);
        }
        result.elapsed = cal.now();
        stats.ticks = result.elapsed;
        (result, stats)
    }

    /// [`Self::lookup_timed`] with an explicit [`Recorder`]. Same
    /// write-only, record-after contract as [`Self::lookup_faulty_rec`];
    /// successful lookups additionally record their elapsed virtual time
    /// in the [`Kernel::ChordLookup`] latency histogram
    /// ([`Recorder::rec_time`]).
    #[allow(clippy::too_many_arguments)] // mirrors lookup_timed plus the recorder
    pub fn lookup_timed_rec<R: Recorder>(
        &self,
        from: u32,
        key: u64,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        time: u64,
        nonce: u64,
        cutoff: Option<u64>,
        rec: &mut R,
    ) -> (TimedLookupResult, FaultStats) {
        let (result, stats) = self.lookup_timed(from, key, plan, policy, time, nonce, cutoff);
        rec.rec_span(Kernel::ChordLookup);
        rec.rec_count(Kernel::ChordLookup, Counter::Messages, result.messages);
        rec.rec_faults(Kernel::ChordLookup, &stats);
        if result.owner.is_some() {
            rec.rec_hop(Kernel::ChordLookup, result.hops, 1);
            rec.rec_time(Kernel::ChordLookup, result.elapsed, 1);
            rec.rec_event(Kernel::ChordLookup, Event::Hit);
        } else {
            rec.rec_event(Kernel::ChordLookup, Event::Miss);
        }
        (result, stats)
    }

    /// [`Self::lookup`] with an explicit [`Recorder`] (fault-free path:
    /// one message per hop). Same write-only, record-after contract as
    /// [`Self::lookup_faulty_rec`].
    pub fn lookup_rec<R: Recorder>(&self, from: u32, key: u64, rec: &mut R) -> LookupResult {
        let result = self.lookup(from, key);
        rec.rec_span(Kernel::ChordLookup);
        rec.rec_count(Kernel::ChordLookup, Counter::Messages, result.hops as u64);
        rec.rec_hop(Kernel::ChordLookup, result.hops, 1);
        rec.rec_event(Kernel::ChordLookup, Event::Hit);
        result
    }

    /// [`Self::lookup_stale`] with an explicit [`Recorder`] (stale-table
    /// routing; wasted probes included in the message count). Same
    /// write-only, record-after contract as [`Self::lookup_faulty_rec`].
    pub fn lookup_stale_rec<R: Recorder>(
        &self,
        from: u32,
        key: u64,
        rec: &mut R,
    ) -> (Option<LookupResult>, u64) {
        let (result, messages) = self.lookup_stale(from, key);
        rec.rec_span(Kernel::ChordLookup);
        rec.rec_count(Kernel::ChordLookup, Counter::Messages, messages);
        match result {
            Some(r) => {
                rec.rec_hop(Kernel::ChordLookup, r.hops, 1);
                rec.rec_event(Kernel::ChordLookup, Event::Hit);
            }
            None => rec.rec_event(Kernel::ChordLookup, Event::Miss),
        }
        (result, messages)
    }

    /// [`Self::stabilize`] with an explicit [`Recorder`]: records the
    /// round's message bill under [`Kernel::Stabilize`] after the round
    /// completes (the round itself is recorder-free, so table evolution
    /// is identical with recording on or off).
    pub fn stabilize_rec<R: Recorder>(&mut self, rec: &mut R) -> u64 {
        let messages = self.stabilize();
        rec.rec_span(Kernel::Stabilize);
        rec.rec_count(Kernel::Stabilize, Counter::Messages, messages);
        messages
    }

    /// [`Self::fix_fingers`] with an explicit [`Recorder`]: the finger
    /// probes are tallied under [`Kernel::Stabilize`] as
    /// [`Counter::Probes`] (stabilize and fix-fingers form one
    /// maintenance kernel in the profile breakdown).
    pub fn fix_fingers_rec<R: Recorder>(&mut self, rec: &mut R) -> u64 {
        let messages = self.fix_fingers();
        rec.rec_span(Kernel::Stabilize);
        rec.rec_count(Kernel::Stabilize, Counter::Probes, messages);
        messages
    }

    /// Best next hop from `current` toward the node owning `owner_id`:
    /// the closest preceding finger strictly progressing inside
    /// `(current, owner]`, else the closest clockwise ring node
    /// (successor-list fallback). Nodes in `excluded` are skipped.
    fn next_hop_candidate(&self, current: u32, owner_id: u64, excluded: &[u32]) -> Option<u32> {
        let cur_id = self.ids[current as usize];
        for i in (0..FINGER_BITS).rev() {
            let f = self.fingers[current as usize][i];
            if f == current || excluded.contains(&f) {
                continue;
            }
            if in_interval_oc(self.ids[f as usize], cur_id, owner_id) {
                return Some(f);
            }
        }
        let n = self.len();
        for off in 1..n {
            let idx = ((current as usize + off) % n) as u32;
            if !excluded.contains(&idx) {
                return Some(idx);
            }
        }
        None
    }

    /// The first node at or clockwise after `key` that is alive at tick
    /// `time` under `plan` (fault-plan variant of
    /// [`Self::first_alive_successor`]).
    pub fn first_alive_successor_at(&self, key: u64, plan: &FaultPlan, time: u64) -> Option<u32> {
        let n = self.len();
        let start = self.ids.partition_point(|&id| id < key) % n;
        for off in 0..n {
            let idx = (start + off) % n;
            if plan.alive_at(idx as u32, time) {
                return Some(idx as u32);
            }
        }
        None
    }

    /// The first alive node at or clockwise after `key`.
    pub fn first_alive_successor(&self, key: u64, alive: &[bool]) -> Option<u32> {
        let n = self.len();
        let start = self.ids.partition_point(|&id| id < key) % n;
        for off in 0..n {
            let idx = (start + off) % n;
            if alive[idx] {
                return Some(idx as u32);
            }
        }
        None
    }

    /// Adds a node with an id derived from `id_seed`; returns its index.
    /// All finger tables are rebuilt (simulator semantics: instantaneous
    /// stabilization).
    pub fn join(&mut self, id_seed: u64) -> u32 {
        let id = mix64(id_seed ^ 0x10ad);
        let pos = self.ids.partition_point(|&x| x < id);
        assert!(
            self.ids.get(pos) != Some(&id),
            "id collision on join (astronomically unlikely)"
        );
        self.ids.insert(pos, id);
        self.departed.insert(pos, false);
        self.rebuild_all_fingers();
        pos as u32
    }

    /// Removes node `v`. Remaining indices shift down by one past `v`.
    pub fn leave(&mut self, v: u32) {
        assert!(self.ids.len() > 1, "cannot empty the ring");
        self.ids.remove(v as usize);
        self.departed.remove(v as usize);
        self.rebuild_all_fingers();
    }

    /// Expected maximum lookup hops: `O(log2 n)` with slack for the
    /// greedy-finger constant (useful in assertions and reports).
    pub fn hop_bound(&self) -> u32 {
        (self.len() as f64).log2().ceil() as u32 * 2 + 4
    }

    // ------------------------------------------------------------------
    // Maintenance model: realistic departures + incremental repair.
    // ------------------------------------------------------------------

    /// Marks node `v` down **without repairing anyone's tables** — the
    /// realistic counterpart of [`Self::leave`], whose instantaneous
    /// global rebuild no deployed ring can perform. After `depart`, every
    /// finger and successor-list entry pointing at `v` dangles until
    /// [`Self::stabilize`] / [`Self::fix_fingers`] rounds catch up.
    pub fn depart(&mut self, v: u32) {
        assert!(!self.departed[v as usize], "node {v} already departed");
        assert!(
            self.live_count() > 1,
            "cannot depart the last live node in the ring"
        );
        self.departed[v as usize] = true;
    }

    /// Brings a departed node back up: Chord's re-join, collapsed.
    ///
    /// The node re-bootstraps its own successor list from the live ring
    /// (one message per entry) and *notifies* its live predecessor,
    /// which splices it into its successor list at the sorted position
    /// (one message) — without the notify, gossip alone could never
    /// re-discover a returned node. The rejoiner keeps its old finger
    /// table (sessions keep state across restarts); stale entries there
    /// heal through [`Self::fix_fingers`] like everyone else's.
    ///
    /// Returns the message count of the re-join handshake.
    pub fn rejoin(&mut self, v: u32) -> u64 {
        assert!(self.departed[v as usize], "node {v} is not departed");
        self.departed[v as usize] = false;
        let n = self.len();
        let mut messages = 0u64;
        // Rebuild v's own successor list: next r live nodes clockwise.
        let mut list = Vec::with_capacity(self.succ_len);
        for off in 1..n {
            let idx = ((v as usize + off) % n) as u32;
            if !self.departed[idx as usize] {
                list.push(idx);
                messages += 1;
                if list.len() >= self.succ_len {
                    break;
                }
            }
        }
        self.succ_lists[v as usize] = list;
        // Notify the live predecessor so the ring learns v is back.
        if let Some(u) = self.first_live_counterclockwise_before(v) {
            messages += 1;
            let base = self.ids[u as usize];
            let d_v = self.ids[v as usize].wrapping_sub(base);
            let lst = &mut self.succ_lists[u as usize];
            let pos = lst.partition_point(|&w| self.ids[w as usize].wrapping_sub(base) < d_v);
            if lst.get(pos) != Some(&v) {
                lst.insert(pos, v);
                lst.truncate(self.succ_len);
            }
            if pos == 0 {
                self.fingers[u as usize][0] = v;
            }
        }
        messages
    }

    /// The first live node strictly counterclockwise before `v`.
    fn first_live_counterclockwise_before(&self, v: u32) -> Option<u32> {
        let n = self.len();
        for off in 1..n {
            let idx = ((v as usize + n - off) % n) as u32;
            if !self.departed[idx as usize] {
                return Some(idx);
            }
        }
        None
    }

    /// Whether `v` is currently departed.
    pub fn is_departed(&self, v: u32) -> bool {
        self.departed[v as usize]
    }

    /// Number of live (non-departed) nodes.
    pub fn live_count(&self) -> usize {
        self.departed.iter().filter(|&&d| !d).count()
    }

    /// The liveness mask (`true` = live), indexed like the node table.
    pub fn alive_mask(&self) -> Vec<bool> {
        self.departed.iter().map(|&d| !d).collect()
    }

    /// Node `v`'s successor list as last refreshed (possibly stale).
    pub fn succ_list(&self, v: u32) -> &[u32] {
        &self.succ_lists[v as usize]
    }

    /// The first *live* node at or clockwise after `key` — the key's
    /// owner under the current departed mask (oracle view; stale-aware
    /// routing may or may not reach it).
    pub fn first_live_successor_of_key(&self, key: u64) -> Option<u32> {
        let n = self.len();
        let start = self.ids.partition_point(|&id| id < key) % n;
        for off in 0..n {
            let idx = (start + off) % n;
            if !self.departed[idx] {
                return Some(idx as u32);
            }
        }
        None
    }

    /// The first live node strictly clockwise after node `v` (bootstrap
    /// oracle used when a node's entire successor list is dead).
    fn first_live_clockwise_after(&self, v: u32) -> Option<u32> {
        let n = self.len();
        for off in 1..n {
            let idx = ((v as usize + off) % n) as u32;
            if !self.departed[idx as usize] {
                return Some(idx);
            }
        }
        None
    }

    /// One stabilization round over all live nodes (ascending index
    /// order, in place — sequential gossip): each node probes its
    /// successor list for the first live entry `s` (one message per
    /// probe), adopts `[s] ++ s's list` truncated to *r* (one fetch
    /// message), and repoints `finger[0]` at `s`. A node whose entire
    /// list is dead re-enters via the first live node clockwise (a
    /// bootstrap rescue, one extra message).
    ///
    /// Returns the round's message count. One round repairs every
    /// immediate successor pointer; lists converge to the true next-*r*
    /// live nodes within `O(r)` rounds — the recovery curve `repro soak`
    /// measures.
    pub fn stabilize(&mut self) -> u64 {
        let n = self.len();
        let mut messages = 0u64;
        for v in 0..n as u32 {
            if self.departed[v as usize] {
                continue;
            }
            let mut found: Option<u32> = None;
            for &w in &self.succ_lists[v as usize] {
                messages += 1; // liveness probe
                if !self.departed[w as usize] {
                    found = Some(w);
                    break;
                }
            }
            let s = match found {
                Some(s) => s,
                None => {
                    messages += 1; // bootstrap rescue
                    match self.first_live_clockwise_after(v) {
                        Some(s) => s,
                        None => continue, // alone in the ring
                    }
                }
            };
            messages += 1; // fetch s's successor list
            let mut list = Vec::with_capacity(self.succ_len);
            list.push(s);
            let src = self.succ_lists[s as usize].clone();
            for w in src {
                if list.len() >= self.succ_len {
                    break;
                }
                if w != v && !list.contains(&w) {
                    list.push(w);
                }
            }
            self.succ_lists[v as usize] = list;
            self.fingers[v as usize][0] = s;
        }
        messages
    }

    /// One finger-repair round: every live node repoints each finger
    /// entry that targets a departed node at the first live successor of
    /// the finger's ring target (the outcome of a `find_successor`
    /// lookup, collapsed to one accounting message per repaired entry).
    ///
    /// Returns the round's message count.
    pub fn fix_fingers(&mut self) -> u64 {
        let n = self.len();
        let mut messages = 0u64;
        for v in 0..n as u32 {
            if self.departed[v as usize] {
                continue;
            }
            for i in 0..FINGER_BITS {
                let f = self.fingers[v as usize][i];
                if !self.departed[f as usize] {
                    continue;
                }
                let target = self.ids[v as usize].wrapping_add(1u64 << i);
                if let Some(nf) = self.first_live_successor_of_key(target) {
                    self.fingers[v as usize][i] = nf;
                    messages += 1;
                }
            }
        }
        messages
    }

    /// Number of table entries (fingers + successor lists) of live nodes
    /// that point at departed nodes. Decays to zero as maintenance
    /// rounds catch up; `repro soak` tracks the decay.
    pub fn stale_entries(&self) -> usize {
        let mut stale = 0usize;
        for v in 0..self.len() {
            if self.departed[v] {
                continue;
            }
            stale += self.fingers[v]
                .iter()
                .filter(|&&f| self.departed[f as usize])
                .count();
            stale += self.succ_lists[v]
                .iter()
                .filter(|&&w| self.departed[w as usize])
                .count();
        }
        stale
    }

    /// Lookup over **possibly-stale local tables only** — no oracle in
    /// the routing loop. Each hop: probe the successor list for the first
    /// live entry `s` (a probe to a dead entry is a wasted message); if
    /// `key ∈ (current, s]`, `s` owns it (one final hop); otherwise route
    /// via the closest preceding live finger inside `(current, key)`
    /// (probing a dead finger wastes a message), falling back to `s`.
    ///
    /// Returns `(None, messages)` when routing fails: the source is
    /// departed, or some node on the path has a fully-dead successor
    /// list (the dangling-pointer failure mode that [`Self::stabilize`]
    /// repairs). Progress is strictly clockwise, so the loop terminates.
    pub fn lookup_stale(&self, from: u32, key: u64) -> (Option<LookupResult>, u64) {
        let n = self.len();
        if self.departed[from as usize] {
            return (None, 0);
        }
        if n == 1 {
            return (Some(LookupResult { owner: 0, hops: 0 }), 0);
        }
        let mut current = from;
        let mut hops = 0u32;
        let mut messages = 0u64;
        loop {
            let cur_id = self.ids[current as usize];
            // First live entry of the local successor list.
            let mut live_succ: Option<u32> = None;
            for &w in &self.succ_lists[current as usize] {
                messages += 1; // liveness probe
                if !self.departed[w as usize] {
                    live_succ = Some(w);
                    break;
                }
            }
            let Some(s) = live_succ else {
                // Dangling: every successor this node knows is dead.
                return (None, messages);
            };
            if in_interval_oc(key, cur_id, self.ids[s as usize]) {
                return (
                    Some(LookupResult {
                        owner: s,
                        hops: hops + 1,
                    }),
                    messages + 1,
                );
            }
            let mut next: Option<u32> = None;
            for i in (0..FINGER_BITS).rev() {
                let f = self.fingers[current as usize][i];
                if f == current {
                    continue;
                }
                if in_interval_oo(self.ids[f as usize], cur_id, key) {
                    messages += 1; // probe the candidate finger
                    if self.departed[f as usize] {
                        continue; // wasted probe; try a shorter finger
                    }
                    next = Some(f);
                    break;
                }
            }
            current = next.unwrap_or(s);
            messages += 1; // the hop itself
            hops += 1;
            if hops as usize > 2 * n + FINGER_BITS {
                // Defensive guard; unreachable under clockwise progress.
                return (None, messages);
            }
        }
    }

    /// Asserts the successor-list invariants for every live node: no
    /// self-entries, length at most *r*, and entries in strictly
    /// increasing clockwise distance. Panics on violation (a `repro
    /// soak` runtime invariant).
    pub fn check_successor_lists(&self) {
        for v in 0..self.len() as u32 {
            if self.departed[v as usize] {
                continue;
            }
            let list = &self.succ_lists[v as usize];
            assert!(
                list.len() <= self.succ_len,
                "successor list of {v} overflows r={}",
                self.succ_len
            );
            let base = self.ids[v as usize];
            let mut prev: Option<u64> = None;
            for &w in list {
                assert!(w != v, "successor list of {v} contains itself");
                let d = self.ids[w as usize].wrapping_sub(base);
                if let Some(p) = prev {
                    assert!(d > p, "successor list of {v} is not in clockwise order");
                }
                prev = Some(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_owns_key() {
        let net = ChordNetwork::new(64, 1);
        for key in [0u64, 1, u64::MAX / 2, u64::MAX] {
            let owner = net.successor_of_key(key);
            let owner_id = net.id_of(owner);
            // No node id lies strictly between key and owner_id (clockwise).
            for v in 0..net.len() as u32 {
                let id = net.id_of(v);
                assert!(
                    !crate::ring::in_interval_oo(id, key.wrapping_sub(1), owner_id),
                    "node {id:x} between key {key:x} and owner {owner_id:x}"
                );
            }
        }
    }

    #[test]
    fn lookup_agrees_with_successor() {
        let net = ChordNetwork::new(128, 2);
        for k in 0..200u64 {
            let key = mix64(k);
            let expected = net.successor_of_key(key);
            for from in [0u32, 5, 63, 127] {
                let r = net.lookup(from, key);
                assert_eq!(r.owner, expected, "key {key:x} from {from}");
            }
        }
    }

    #[test]
    fn lookup_hops_logarithmic() {
        let net = ChordNetwork::new(4_096, 3);
        let mut max_hops = 0;
        let mut total = 0u64;
        let samples = 500;
        for k in 0..samples {
            let key = mix64(0xabc ^ k);
            let r = net.lookup((k % 4096) as u32, key);
            max_hops = max_hops.max(r.hops);
            total += r.hops as u64;
        }
        let mean = total as f64 / samples as f64;
        // log2(4096) = 12; greedy Chord averages ~log2(n)/2.
        assert!(mean < 14.0, "mean hops {mean}");
        assert!(max_hops <= net.hop_bound(), "max hops {max_hops}");
    }

    #[test]
    fn single_node_owns_everything() {
        let net = ChordNetwork::new(1, 4);
        let r = net.lookup(0, 12345);
        assert_eq!(r.owner, 0);
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn two_node_ring_routes() {
        let net = ChordNetwork::new(2, 5);
        for key in [0u64, u64::MAX / 3, u64::MAX / 2, u64::MAX - 1] {
            let r = net.lookup(0, key);
            assert_eq!(r.owner, net.successor_of_key(key));
            assert!(r.hops <= 2);
        }
    }

    #[test]
    fn join_preserves_lookup_correctness() {
        let mut net = ChordNetwork::new(32, 6);
        let keys: Vec<u64> = (0..50).map(|k| mix64(k ^ 0x77)).collect();
        net.join(999);
        net.join(1001);
        for &key in &keys {
            let r = net.lookup(3, key);
            assert_eq!(r.owner, net.successor_of_key(key));
        }
        assert_eq!(net.len(), 34);
    }

    #[test]
    fn leave_preserves_lookup_correctness() {
        let mut net = ChordNetwork::new(32, 7);
        net.leave(10);
        net.leave(0);
        assert_eq!(net.len(), 30);
        for k in 0..50u64 {
            let key = mix64(k ^ 0x88);
            let r = net.lookup(1, key);
            assert_eq!(r.owner, net.successor_of_key(key));
        }
    }

    #[test]
    fn lookup_from_owner_is_cheap() {
        let net = ChordNetwork::new(256, 8);
        let key = mix64(42);
        let owner = net.successor_of_key(key);
        let r = net.lookup(owner, key);
        assert_eq!(r.owner, owner);
        assert!(r.hops <= 1, "hops from owner {}", r.hops);
    }

    #[test]
    fn deterministic_construction() {
        let a = ChordNetwork::new(100, 9);
        let b = ChordNetwork::new(100, 9);
        assert_eq!(a.id_of(50), b.id_of(50));
        assert_eq!(a.lookup(0, 777), b.lookup(0, 777));
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use qcp_util::rng::Pcg64;

    #[test]
    fn no_failures_matches_plain_lookup_owner() {
        let net = ChordNetwork::new(128, 21);
        let alive = vec![true; 128];
        for k in 0..80u64 {
            let key = mix64(k);
            let ft = net.lookup_with_failures(5, key, &alive);
            assert_eq!(ft.owner, net.successor_of_key(key));
        }
    }

    #[test]
    fn routes_around_random_failures() {
        let net = ChordNetwork::new(256, 22);
        let mut rng = Pcg64::new(23);
        let mut alive = vec![true; 256];
        for idx in rng.sample_distinct(256, 64) {
            alive[idx] = false;
        }
        let sources: Vec<u32> = (0..256u32).filter(|&v| alive[v as usize]).take(8).collect();
        for k in 0..60u64 {
            let key = mix64(k ^ 0x77aa);
            let expected = net.first_alive_successor(key, &alive).unwrap();
            for &from in &sources {
                let r = net.lookup_with_failures(from, key, &alive);
                assert_eq!(r.owner, expected, "key {key:x} from {from}");
                assert!(alive[r.owner as usize]);
                assert!(
                    (r.hops as usize) <= 2 * net.len(),
                    "hops {} explode",
                    r.hops
                );
            }
        }
    }

    #[test]
    fn survives_heavy_failure() {
        // 90% dead: lookups must still resolve to alive owners.
        let net = ChordNetwork::new(100, 24);
        let mut alive = vec![false; 100];
        for idx in [3usize, 17, 42, 56, 61, 77, 80, 91, 95, 99] {
            alive[idx] = true;
        }
        for k in 0..40u64 {
            let key = mix64(k ^ 0xdead);
            let r = net.lookup_with_failures(42, key, &alive);
            assert!(alive[r.owner as usize]);
            assert_eq!(r.owner, net.first_alive_successor(key, &alive).unwrap());
        }
    }

    #[test]
    fn hops_degrade_gracefully_with_failures() {
        let net = ChordNetwork::new(1_024, 25);
        let mut rng = Pcg64::new(26);
        let mut mean_hops = Vec::new();
        for dead_frac in [0.0f64, 0.3] {
            let mut alive = vec![true; 1_024];
            let dead = (1_024.0 * dead_frac) as usize;
            for idx in rng.sample_distinct(1_024, dead) {
                alive[idx] = false;
            }
            let sources: Vec<u32> = (0..1_024u32)
                .filter(|&v| alive[v as usize])
                .take(16)
                .collect();
            let mut total = 0u64;
            let mut count = 0u64;
            for k in 0..100u64 {
                let key = mix64(k ^ 0xfade);
                for &from in &sources {
                    total += net.lookup_with_failures(from, key, &alive).hops as u64;
                    count += 1;
                }
            }
            mean_hops.push(total as f64 / count as f64);
        }
        // 30% failures should cost extra hops but stay near O(log n).
        assert!(mean_hops[1] >= mean_hops[0]);
        assert!(
            mean_hops[1] < mean_hops[0] + 8.0,
            "failure overhead too high: {mean_hops:?}"
        );
    }

    #[test]
    #[should_panic(expected = "source node is dead")]
    fn dead_source_rejected() {
        let net = ChordNetwork::new(8, 27);
        let mut alive = vec![true; 8];
        alive[2] = false;
        let _ = net.lookup_with_failures(2, 42, &alive);
    }
}

#[cfg(test)]
mod faulty_tests {
    use super::*;
    use qcp_faults::FaultConfig;

    #[test]
    fn none_plan_resolves_the_true_owner_with_clean_stats() {
        let net = ChordNetwork::new(256, 30);
        let plan = FaultPlan::none(256);
        let policy = RetryPolicy::default();
        for k in 0..60u64 {
            let key = mix64(k ^ 0xfa);
            let (r, stats) = net.lookup_faulty(7, key, &plan, &policy, 0, k);
            assert_eq!(r.owner, Some(net.successor_of_key(key)));
            assert!(r.hops <= net.hop_bound(), "hops {}", r.hops);
            // Every message is a delivered hop; only latency is charged.
            assert_eq!(r.messages, r.hops as u64);
            assert_eq!(stats.dropped, 0);
            assert_eq!(stats.wasted(), 0);
            assert!(stats.ticks >= r.hops as u64, "latency charged per hop");
        }
    }

    #[test]
    fn drops_obey_the_retry_timeout_identity() {
        let net = ChordNetwork::new(256, 31);
        let plan = FaultPlan::build(
            256,
            &FaultConfig {
                loss: 0.3,
                churn: 0.0,
                ..Default::default()
            },
        );
        let policy = RetryPolicy::default();
        let mut total = FaultStats::default();
        let mut resolved = 0u32;
        for k in 0..120u64 {
            let key = mix64(k ^ 0x1e55);
            let (r, stats) = net.lookup_faulty((k % 256) as u32, key, &plan, &policy, 0, k);
            total.absorb(&stats);
            if let Some(owner) = r.owner {
                assert_eq!(owner, net.successor_of_key(key));
                resolved += 1;
            }
            // Transmissions = delivered hops + every lost message.
            assert_eq!(r.messages, r.hops as u64 + stats.wasted());
        }
        assert!(total.dropped > 0, "30% loss must drop");
        assert_eq!(
            total.dropped,
            total.retries + total.timeouts,
            "every drop is retried or times out"
        );
        assert!(resolved > 100, "retries should save most lookups");
    }

    #[test]
    fn churn_routes_to_first_alive_successor_or_fails_cleanly() {
        let net = ChordNetwork::new(200, 32);
        let plan = FaultPlan::build(
            200,
            &FaultConfig {
                loss: 0.0,
                churn: 0.5,
                ..Default::default()
            },
        );
        let policy = RetryPolicy::default();
        let mut total = FaultStats::default();
        for t in [0u64, 100, 500, 900] {
            for k in 0..40u64 {
                let key = mix64(k ^ t);
                let from = (k % 200) as u32;
                let (r, stats) = net.lookup_faulty(from, key, &plan, &policy, t, k);
                total.absorb(&stats);
                match r.owner {
                    Some(owner) => {
                        assert!(plan.alive_at(owner, t), "owner must be alive");
                        assert_eq!(Some(owner), net.first_alive_successor_at(key, &plan, t));
                    }
                    None => assert!(
                        !plan.alive_at(from, t),
                        "with loss=0, only a dead source fails"
                    ),
                }
            }
        }
        assert!(total.dead_targets > 0, "50% churn must hit dead fingers");
        assert_eq!(total.dropped, 0, "no in-flight loss configured");
    }

    #[test]
    fn faulty_lookup_is_deterministic() {
        let net = ChordNetwork::new(128, 33);
        let plan = FaultPlan::build(
            128,
            &FaultConfig {
                loss: 0.25,
                churn: 0.25,
                ..Default::default()
            },
        );
        let policy = RetryPolicy::default();
        for k in 0..30u64 {
            let key = mix64(k);
            let a = net.lookup_faulty(3, key, &plan, &policy, k, k);
            let b = net.lookup_faulty(3, key, &plan, &policy, k, k);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn recorded_lookup_is_bitwise_identical_and_reconciles() {
        use qcp_obs::MetricsRecorder;
        let net = ChordNetwork::new(128, 33);
        let plan = FaultPlan::build(
            128,
            &FaultConfig {
                loss: 0.25,
                churn: 0.25,
                ..Default::default()
            },
        );
        let policy = RetryPolicy::default();
        let mut rec = MetricsRecorder::new();
        let mut messages = 0u64;
        let mut expect = FaultStats::default();
        let mut hits = 0u64;
        let trials = 40u64;
        for k in 0..trials {
            let key = mix64(k);
            let plain = net.lookup_faulty(3, key, &plan, &policy, k, k);
            let (result, stats) = net.lookup_faulty_rec(3, key, &plan, &policy, k, k, &mut rec);
            assert_eq!((result, stats), plain, "recording must not perturb routing");
            messages += result.messages;
            expect.absorb(&stats);
            hits += result.owner.is_some() as u64;
        }
        // Reconciliation: recorded totals equal the summed outcomes, and
        // the recorded fault counters are exactly the FaultStats sums.
        assert_eq!(rec.spans(Kernel::ChordLookup), trials);
        assert_eq!(rec.total(Kernel::ChordLookup, Counter::Messages), messages);
        assert_eq!(rec.fault_stats(Kernel::ChordLookup), expect);
        assert_eq!(rec.event_count(Kernel::ChordLookup, Event::Hit), hits);
        assert_eq!(
            rec.event_count(Kernel::ChordLookup, Event::Miss),
            trials - hits
        );
        assert_eq!(rec.hop_weight(Kernel::ChordLookup), hits);
        // The retrying-engine identity survives aggregation through the
        // recorder: dropped == retries + timeouts.
        let f = rec.fault_stats(Kernel::ChordLookup);
        assert_eq!(f.dropped, f.retries + f.timeouts);
    }

    #[test]
    fn recorded_maintenance_matches_plain_rounds() {
        use qcp_obs::MetricsRecorder;
        let build = || {
            let mut net = ChordNetwork::new(200, 41);
            for v in (0..200u32).filter(|v| v % 4 == 0) {
                net.depart(v);
            }
            net
        };
        // Run the same maintenance schedule on two identical rings, one
        // recorded and one not: the per-round bills and the final table
        // state must agree exactly, and the recorder totals must
        // reconcile with the summed bills.
        let mut plain = build();
        let mut recorded = build();
        let mut rec = MetricsRecorder::new();
        let mut stab = 0u64;
        for _ in 0..DEFAULT_SUCC_LEN {
            let a = plain.stabilize();
            let b = recorded.stabilize_rec(&mut rec);
            assert_eq!(a, b, "recording must not change the round bill");
            stab += b;
        }
        let fix = recorded.fix_fingers_rec(&mut rec);
        assert_eq!(plain.fix_fingers(), fix);
        assert_eq!(plain.stale_entries(), recorded.stale_entries());
        assert_eq!(rec.total(Kernel::Stabilize, Counter::Messages), stab);
        assert_eq!(rec.total(Kernel::Stabilize, Counter::Probes), fix);
        assert_eq!(rec.spans(Kernel::Stabilize), DEFAULT_SUCC_LEN as u64 + 1);
    }

    #[test]
    fn stabilize_converges_and_restores_lookups_after_mass_departure() {
        let mut net = ChordNetwork::new(200, 41);
        // Depart 25% of the ring, scattered deterministically.
        for v in (0..200u32).filter(|v| v % 4 == 0) {
            net.depart(v);
        }
        assert!(net.stale_entries() > 0, "departures must dangle");
        // r stabilize rounds heal successor lists; one fix_fingers round
        // then heals the fingers.
        let mut repair_messages = 0u64;
        for _ in 0..DEFAULT_SUCC_LEN {
            repair_messages += net.stabilize();
            net.check_successor_lists();
        }
        repair_messages += net.fix_fingers();
        assert!(repair_messages > 0);
        assert_eq!(
            net.stale_entries(),
            0,
            "r stabilize rounds + fix_fingers must purge every stale entry"
        );
        // Post-repair, stale-table routing agrees with the live oracle.
        for k in 0..60u64 {
            let key = mix64(k ^ 0x5eed);
            let from = (1 + 4 * (k % 40)) as u32; // live sources
            let (r, _) = net.lookup_stale(from, key);
            let r = r.expect("post-stabilize lookup must succeed");
            assert_eq!(Some(r.owner), net.first_live_successor_of_key(key));
        }
    }

    #[test]
    fn rejoin_notify_reintegrates_the_node() {
        let mut net = ChordNetwork::new(64, 43);
        let v = 20u32;
        net.depart(v);
        for _ in 0..DEFAULT_SUCC_LEN {
            net.stabilize();
        }
        net.fix_fingers();
        assert_eq!(net.stale_entries(), 0);
        // While v is down, keys it owned resolve to its live successor.
        let key = net.id_of(v); // v's own id: v owns it when alive
        let (r, _) = net.lookup_stale(1, key);
        assert_ne!(r.expect("lookup must resolve").owner, v);
        // Rejoin: the notify handshake re-links v; stabilize gossip then
        // spreads it; lookups route to v again.
        let msgs = net.rejoin(v);
        assert!(msgs > 0, "rejoin handshake costs messages");
        net.check_successor_lists();
        for _ in 0..DEFAULT_SUCC_LEN {
            net.stabilize();
            net.check_successor_lists();
        }
        net.fix_fingers();
        let (r, _) = net.lookup_stale(1, key);
        assert_eq!(r.expect("lookup must resolve").owner, v);
        assert_eq!(Some(v), net.first_live_successor_of_key(key));
    }

    #[test]
    fn zero_retry_policy_fails_fast_but_still_counts() {
        let net = ChordNetwork::new(64, 34);
        let plan = FaultPlan::build(
            64,
            &FaultConfig {
                loss: 0.9,
                churn: 0.0,
                ..Default::default()
            },
        );
        let policy = RetryPolicy {
            max_retries: 0,
            base_timeout: 4,
            backoff: 2,
            jitter: None,
        };
        let mut total = FaultStats::default();
        for k in 0..40u64 {
            let (_, stats) = net.lookup_faulty(0, mix64(k), &plan, &policy, 0, k);
            total.absorb(&stats);
        }
        assert_eq!(total.retries, 0, "fail-fast policy never retries");
        assert_eq!(total.dropped, total.timeouts);
    }
}

#[cfg(test)]
mod timed_tests {
    //! Virtual-time lookup: the reply/timer race, the relaxed
    //! accounting identity, and deadline truncation.
    use super::*;
    use qcp_faults::FaultConfig;

    #[test]
    fn none_plan_timed_lookup_matches_the_oracle_with_unit_latency() {
        let net = ChordNetwork::new(256, 50);
        let plan = FaultPlan::none(256);
        let policy = RetryPolicy::default();
        for k in 0..60u64 {
            let key = mix64(k ^ 0x71);
            let (r, stats) = net.lookup_timed(7, key, &plan, &policy, 0, k, None);
            assert_eq!(r.owner, Some(net.successor_of_key(key)));
            assert!(!r.truncated);
            // Unit latency, no loss: every message is a delivered hop
            // and each hop costs exactly one tick.
            assert_eq!(r.messages, r.hops as u64);
            assert_eq!(r.elapsed, r.hops as u64);
            assert_eq!(stats.ticks, r.elapsed);
            assert_eq!(stats.wasted(), 0);
            assert_eq!(stats.retries + stats.timeouts, 0);
        }
    }

    #[test]
    fn timer_outruns_slow_replies_relaxing_the_drop_identity() {
        // No loss, no churn — but mean latency 8 makes many replies
        // slower than the first (4-tick) timeout. Those attempts are
        // abandoned, not dropped: retries happen with dropped == 0,
        // the timed path's relaxed identity.
        let net = ChordNetwork::new(256, 51);
        let plan = FaultPlan::build(
            256,
            &FaultConfig {
                loss: 0.0,
                churn: 0.0,
                mean_latency: 8,
                ..Default::default()
            },
        );
        let policy = RetryPolicy::default();
        let mut total = FaultStats::default();
        for k in 0..40u64 {
            let key = mix64(k ^ 0x9a);
            let (r, stats) = net.lookup_timed((k % 256) as u32, key, &plan, &policy, 0, k, None);
            total.absorb(&stats);
            assert_eq!(r.owner, Some(net.successor_of_key(key)), "k {k}");
            assert!(r.messages >= r.hops as u64 + stats.wasted());
        }
        assert_eq!(total.dropped, 0, "no loss configured");
        assert!(total.retries > 0, "slow replies must be outrun");
        assert!(total.dropped <= total.retries + total.timeouts);
    }

    #[test]
    fn dead_candidates_cost_the_full_retry_ladder() {
        // Loss 0 + churn: the only timer fires are dead candidates, and
        // each costs exactly (max_retries + 1) silent attempts before
        // its single hop timeout.
        let net = ChordNetwork::new(200, 52);
        let plan = FaultPlan::build(
            200,
            &FaultConfig {
                loss: 0.0,
                churn: 0.5,
                ..Default::default()
            },
        );
        let policy = RetryPolicy::default();
        let mut total = FaultStats::default();
        for t in [0u64, 200, 700] {
            for k in 0..40u64 {
                let (_, stats) =
                    net.lookup_timed((k % 200) as u32, mix64(k ^ t), &plan, &policy, t, k, None);
                total.absorb(&stats);
            }
        }
        assert!(total.dead_targets > 0, "50% churn must hit dead fingers");
        assert_eq!(total.dropped, 0);
        assert_eq!(
            total.dead_targets,
            (policy.max_retries as u64 + 1) * total.timeouts,
            "each dead candidate runs the whole ladder"
        );
    }

    #[test]
    fn cutoff_truncates_at_the_deadline() {
        let net = ChordNetwork::new(256, 53);
        let plan = FaultPlan::build(
            256,
            &FaultConfig {
                loss: 0.0,
                churn: 0.0,
                mean_latency: 6,
                ..Default::default()
            },
        );
        let policy = RetryPolicy::default();
        let key = mix64(0xdead);
        let (full, _) = net.lookup_timed(3, key, &plan, &policy, 0, 1, None);
        assert!(full.owner.is_some());
        if full.elapsed > 1 {
            let cutoff = full.elapsed / 2;
            let (cut, stats) = net.lookup_timed(3, key, &plan, &policy, 0, 1, Some(cutoff));
            assert!(cut.truncated);
            assert!(cut.owner.is_none());
            assert_eq!(cut.elapsed, cutoff);
            assert_eq!(stats.ticks, cutoff);
        }
        // A generous cutoff changes nothing.
        let (easy, _) = net.lookup_timed(3, key, &plan, &policy, 0, 1, Some(full.elapsed));
        assert_eq!(easy, full);
    }

    #[test]
    fn timed_lookup_is_deterministic_with_and_without_jitter() {
        let net = ChordNetwork::new(128, 54);
        let plan = FaultPlan::build(
            128,
            &FaultConfig {
                loss: 0.25,
                churn: 0.25,
                mean_latency: 4,
                ..Default::default()
            },
        );
        for policy in [
            RetryPolicy::default(),
            RetryPolicy {
                jitter: Some(0x5eed),
                ..Default::default()
            },
        ] {
            for k in 0..30u64 {
                let key = mix64(k);
                let a = net.lookup_timed(3, key, &plan, &policy, k, k, Some(200));
                let b = net.lookup_timed(3, key, &plan, &policy, k, k, Some(200));
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn recorded_timed_lookup_is_bitwise_identical_and_reconciles() {
        use qcp_obs::MetricsRecorder;
        let net = ChordNetwork::new(128, 55);
        let plan = FaultPlan::build(
            128,
            &FaultConfig {
                loss: 0.2,
                churn: 0.2,
                mean_latency: 3,
                ..Default::default()
            },
        );
        let policy = RetryPolicy::default();
        let mut rec = MetricsRecorder::new();
        let mut hits = 0u64;
        let mut elapsed_sum = 0u64;
        let trials = 40u64;
        for k in 0..trials {
            let key = mix64(k);
            let plain = net.lookup_timed(3, key, &plan, &policy, k, k, Some(300));
            let (result, stats) =
                net.lookup_timed_rec(3, key, &plan, &policy, k, k, Some(300), &mut rec);
            assert_eq!((result, stats), plain, "recording must not perturb routing");
            if result.owner.is_some() {
                hits += 1;
                elapsed_sum += result.elapsed;
            }
        }
        assert_eq!(rec.spans(Kernel::ChordLookup), trials);
        assert_eq!(rec.event_count(Kernel::ChordLookup, Event::Hit), hits);
        // The latency histogram holds one entry per successful lookup,
        // totaling the summed elapsed time.
        assert_eq!(rec.time_weight(Kernel::ChordLookup), hits);
        let hist = rec.time_histogram(Kernel::ChordLookup);
        let mass: u64 = hist.iter().enumerate().map(|(t, &n)| t as u64 * n).sum();
        assert_eq!(mass, elapsed_sum);
    }
}

#[cfg(test)]
mod dangling_regression {
    //! Satellite regression (ISSUE 4): a departure must *dangle* —
    //! other nodes' fingers and successor lists keep pointing at the
    //! departed node until maintenance repairs them. These tests pin the
    //! broken state first, then assert the stabilization rounds fix it.

    use super::*;

    #[test]
    fn depart_without_maintenance_leaves_dangling_pointers() {
        // r = 1: a single departed successor is enough to strand a node.
        let mut net = ChordNetwork::with_succ_len(32, 44, 1);
        let v = 10u32;
        let succ_of_v = net.succ_list(v)[0];
        net.depart(succ_of_v);
        // Pin the dangling behavior: v's only successor entry is dead,
        // and nobody repaired it.
        assert!(net.is_departed(net.succ_list(v)[0]));
        assert!(net.stale_entries() > 0, "depart must leave stale entries");
        // A lookup that must leave v through its successor fails outright
        // — the dangling-pointer failure mode.
        let key = net.id_of(succ_of_v); // owned by the departed node's successor region
        let (r, messages) = net.lookup_stale(v, key);
        assert!(r.is_none(), "stranded node must fail the lookup");
        assert!(messages > 0, "the failure costs wasted probes");
    }

    #[test]
    fn stabilize_fixes_the_dangling_pointers_and_lookups_succeed() {
        let mut net = ChordNetwork::with_succ_len(32, 44, 1);
        let v = 10u32;
        let succ_of_v = net.succ_list(v)[0];
        net.depart(succ_of_v);
        // The fix: stabilization rounds (with the bootstrap rescue for
        // fully-dead lists) plus finger repair.
        net.stabilize();
        net.fix_fingers();
        net.check_successor_lists();
        assert_eq!(net.stale_entries(), 0);
        // Post-stabilize, every lookup from a live source succeeds and
        // agrees with the live-ring oracle.
        for k in 0..40u64 {
            let key = mix64(k ^ 0xabcd);
            for from in [v, 0u32, 31] {
                let (r, _) = net.lookup_stale(from, key);
                let r = r.expect("post-stabilize lookup must succeed");
                assert_eq!(Some(r.owner), net.first_live_successor_of_key(key));
            }
        }
    }

    #[test]
    fn leave_keeps_departed_mask_aligned() {
        let mut net = ChordNetwork::new(16, 45);
        net.depart(5);
        net.leave(11); // indices past 11 shift down
        assert_eq!(net.len(), 15);
        assert!(net.is_departed(5), "depart mark must survive the shift");
        assert_eq!(net.live_count(), 14);
        let joined = net.join(0x7e57);
        assert!(!net.is_departed(joined));
    }
}
