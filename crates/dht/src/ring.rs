//! 64-bit identifier-ring arithmetic.
//!
//! Chord places nodes and keys on a ring of size `2^64`; a key is owned by
//! its *successor* — the first node clockwise at or after the key. All
//! interval logic here is modular.

use qcp_util::hash::{hash_bytes, mix64};

/// Clockwise distance from `a` to `b` on the 2^64 ring.
#[inline]
pub fn distance_cw(a: u64, b: u64) -> u64 {
    b.wrapping_sub(a)
}

/// True when `x` lies in the half-open clockwise interval `(a, b]`.
///
/// When `a == b` the interval covers the whole ring (every `x` except
///... none: by convention the full ring, matching Chord's single-node
/// case where the node owns everything).
#[inline]
pub fn in_interval_oc(x: u64, a: u64, b: u64) -> bool {
    if a == b {
        return true;
    }
    distance_cw(a, x) <= distance_cw(a, b) && x != a
}

/// True when `x` lies in the open clockwise interval `(a, b)`.
#[inline]
pub fn in_interval_oo(x: u64, a: u64, b: u64) -> bool {
    if a == b {
        return x != a;
    }
    distance_cw(a, x) < distance_cw(a, b) && x != a
}

/// Ring key for a term string.
#[inline]
pub fn key_for_term(term: &str) -> u64 {
    mix64(hash_bytes(term.as_bytes()))
}

/// Ring key for an exact object name (structured lookups are exact-match —
/// §I of the paper).
#[inline]
pub fn key_for_name(name: &str) -> u64 {
    mix64(hash_bytes(name.as_bytes()) ^ 0x000b_9ec7_ba5e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_wraps() {
        assert_eq!(distance_cw(10, 20), 10);
        assert_eq!(distance_cw(20, 10), u64::MAX - 9);
        assert_eq!(distance_cw(5, 5), 0);
    }

    #[test]
    fn interval_oc_basic() {
        assert!(in_interval_oc(15, 10, 20));
        assert!(in_interval_oc(20, 10, 20)); // closed at b
        assert!(!in_interval_oc(10, 10, 20)); // open at a
        assert!(!in_interval_oc(25, 10, 20));
    }

    #[test]
    fn interval_oc_wrapping() {
        // Interval (u64::MAX - 5, 5].
        assert!(in_interval_oc(0, u64::MAX - 5, 5));
        assert!(in_interval_oc(5, u64::MAX - 5, 5));
        assert!(in_interval_oc(u64::MAX, u64::MAX - 5, 5));
        assert!(!in_interval_oc(100, u64::MAX - 5, 5));
    }

    #[test]
    fn interval_oc_degenerate_full_ring() {
        assert!(in_interval_oc(123, 7, 7));
    }

    #[test]
    fn interval_oo_excludes_both_ends() {
        assert!(in_interval_oo(15, 10, 20));
        assert!(!in_interval_oo(20, 10, 20));
        assert!(!in_interval_oo(10, 10, 20));
    }

    #[test]
    fn term_keys_spread() {
        let a = key_for_term("madonna");
        let b = key_for_term("madonnb");
        assert_ne!(a, b);
        // Same string, same key.
        assert_eq!(a, key_for_term("madonna"));
        // Term and name keys are independent spaces.
        assert_ne!(key_for_term("x"), key_for_name("x"));
    }
}
