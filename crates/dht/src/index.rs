//! Distributed inverted keyword index over the Chord ring.
//!
//! Keyword search over a DHT (the approach of the paper's hybrid refs):
//! every object is published once per annotation term — the posting list
//! for term `t` lives at `successor(hash(t))`. A multi-term query performs
//! one lookup per term, fetches the posting lists, and intersects them at
//! the querier (Gnutella AND semantics). Costs are accounted in routing
//! hops plus one message per posting-list transfer.

use crate::chord::ChordNetwork;
use crate::ring::key_for_term;
use qcp_util::FxHashMap;

/// Outcome of a DHT keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhtQueryOutcome {
    /// Objects matching *all* query terms.
    pub results: Vec<u32>,
    /// Total routing hops across all term lookups.
    pub hops: u32,
    /// Total messages: hops plus one transfer per posting list.
    pub messages: u64,
}

/// The index: per-node storage of term posting lists.
#[derive(Debug, Clone)]
pub struct DhtIndex {
    /// Per node: term-key → sorted posting list of object ids.
    storage: Vec<FxHashMap<u64, Vec<u32>>>,
    /// Publication cost in hops (accumulated for reporting).
    publish_hops: u64,
}

impl DhtIndex {
    /// Creates an empty index for `net`.
    pub fn new(net: &ChordNetwork) -> Self {
        Self {
            storage: vec![FxHashMap::default(); net.len()],
            publish_hops: 0,
        }
    }

    /// Publishes `object` under `term`, routing from `from`.
    pub fn publish(&mut self, net: &ChordNetwork, from: u32, term: &str, object: u32) {
        self.publish_key(net, from, key_for_term(term), object);
    }

    /// Publishes `object` under a pre-hashed ring key (symbol-level callers
    /// hash their own term space).
    pub fn publish_key(&mut self, net: &ChordNetwork, from: u32, key: u64, object: u32) {
        let r = net.lookup(from, key);
        self.publish_hops += r.hops as u64;
        let list = self.storage[r.owner as usize].entry(key).or_default();
        if let Err(pos) = list.binary_search(&object) {
            list.insert(pos, object);
        }
    }

    /// Total hops spent on publications so far.
    pub fn publish_hops(&self) -> u64 {
        self.publish_hops
    }

    /// Number of `(node, term)` posting lists stored.
    pub fn stored_lists(&self) -> usize {
        self.storage.iter().map(|m| m.len()).sum()
    }

    /// Multi-term AND query from node `from`.
    ///
    /// Empty term sets return no results (as in `qcp-terms` matching).
    pub fn query(&self, net: &ChordNetwork, from: u32, terms: &[&str]) -> DhtQueryOutcome {
        let keys: Vec<u64> = terms.iter().map(|t| key_for_term(t)).collect();
        self.query_keys(net, from, &keys)
    }

    /// Multi-key AND query (symbol-level variant of [`Self::query`]).
    pub fn query_keys(&self, net: &ChordNetwork, from: u32, terms: &[u64]) -> DhtQueryOutcome {
        if terms.is_empty() {
            return DhtQueryOutcome {
                results: Vec::new(),
                hops: 0,
                messages: 0,
            };
        }
        let mut hops = 0u32;
        let mut messages = 0u64;
        let mut result: Option<Vec<u32>> = None;
        for &key in terms {
            let r = net.lookup(from, key);
            hops += r.hops;
            messages += r.hops as u64 + 1; // +1 posting-list transfer
            let empty: Vec<u32> = Vec::new();
            let list = self.storage[r.owner as usize].get(&key).unwrap_or(&empty);
            result = Some(match result {
                None => list.clone(),
                Some(acc) => intersect_sorted(&acc, list),
            });
            if result.as_ref().is_some_and(|r| r.is_empty()) {
                break; // AND already failed; remaining terms can't help
            }
        }
        DhtQueryOutcome {
            results: result.unwrap_or_default(),
            hops,
            messages,
        }
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indexed_net() -> (ChordNetwork, DhtIndex) {
        let net = ChordNetwork::new(64, 42);
        let mut idx = DhtIndex::new(&net);
        // Object 1: "madonna like prayer"; object 2: "madonna hits";
        // object 3: "nirvana hits".
        for (obj, terms) in [
            (1u32, vec!["madonna", "like", "prayer"]),
            (2, vec!["madonna", "hits"]),
            (3, vec!["nirvana", "hits"]),
        ] {
            for t in terms {
                idx.publish(&net, obj % 64, t, obj);
            }
        }
        (net, idx)
    }

    #[test]
    fn single_term_query_returns_posting_list() {
        let (net, idx) = indexed_net();
        let out = idx.query(&net, 0, &["madonna"]);
        assert_eq!(out.results, vec![1, 2]);
        assert!(out.messages >= 1);
    }

    #[test]
    fn multi_term_query_intersects() {
        let (net, idx) = indexed_net();
        let out = idx.query(&net, 5, &["madonna", "hits"]);
        assert_eq!(out.results, vec![2]);
        let out2 = idx.query(&net, 5, &["madonna", "nirvana"]);
        assert!(out2.results.is_empty());
    }

    #[test]
    fn unknown_term_yields_empty() {
        let (net, idx) = indexed_net();
        let out = idx.query(&net, 9, &["unknown"]);
        assert!(out.results.is_empty());
    }

    #[test]
    fn empty_query_is_empty_and_free() {
        let (net, idx) = indexed_net();
        let out = idx.query(&net, 0, &[]);
        assert!(out.results.is_empty());
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn duplicate_publish_is_idempotent() {
        let net = ChordNetwork::new(16, 1);
        let mut idx = DhtIndex::new(&net);
        idx.publish(&net, 0, "dup", 7);
        idx.publish(&net, 3, "dup", 7);
        let out = idx.query(&net, 2, &["dup"]);
        assert_eq!(out.results, vec![7]);
    }

    #[test]
    fn query_cost_scales_with_terms_not_network() {
        let net = ChordNetwork::new(1024, 2);
        let mut idx = DhtIndex::new(&net);
        idx.publish(&net, 0, "aa", 1);
        idx.publish(&net, 0, "bb", 1);
        idx.publish(&net, 0, "cc", 1);
        let one = idx.query(&net, 7, &["aa"]);
        let three = idx.query(&net, 7, &["aa", "bb", "cc"]);
        assert_eq!(three.results, vec![1]);
        // Each term lookup is O(log n): 3-term cost is bounded by ~3x the
        // 1-term bound, not by network size.
        assert!(three.hops <= 3 * net.hop_bound());
        assert!(one.hops <= net.hop_bound());
    }

    #[test]
    fn posting_lists_live_on_the_ring_owner() {
        let net = ChordNetwork::new(32, 3);
        let mut idx = DhtIndex::new(&net);
        idx.publish(&net, 11, "owner-check", 5);
        let key = key_for_term("owner-check");
        let owner = net.successor_of_key(key);
        assert!(idx.storage[owner as usize].contains_key(&key));
        assert_eq!(idx.stored_lists(), 1);
    }

    #[test]
    fn intersect_sorted_basic() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert!(intersect_sorted(&[], &[1]).is_empty());
    }
}
