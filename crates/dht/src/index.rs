//! Distributed inverted keyword index over the Chord ring.
//!
//! Keyword search over a DHT (the approach of the paper's hybrid refs):
//! every object is published once per annotation term — the posting list
//! for term `t` lives at `successor(hash(t))`. A multi-term query performs
//! one lookup per term, fetches the posting lists, and intersects them at
//! the querier (Gnutella AND semantics). Costs are accounted in routing
//! hops plus one message per posting-list transfer.

use crate::chord::ChordNetwork;
use crate::ring::key_for_term;
use qcp_faults::{FaultPlan, FaultStats, RetryPolicy};
use qcp_util::hash::mix64;
use qcp_util::FxHashMap;

/// Outcome of a DHT keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhtQueryOutcome {
    /// Objects matching *all* query terms.
    pub results: Vec<u32>,
    /// Total routing hops across all term lookups.
    pub hops: u32,
    /// Total messages: hops plus one transfer per posting list.
    pub messages: u64,
}

/// Outcome of a deadline-bounded DHT keyword query
/// ([`DhtIndex::query_keys_timed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedQueryOutcome {
    /// Objects matching all terms *resolved so far* — the full AND
    /// intersection when the query completed, the best-so-far partial
    /// intersection when the deadline landed mid-query.
    pub results: Vec<u32>,
    /// Total routing hops across the resolved term lookups.
    pub hops: u32,
    /// Total messages: lookup transmissions plus posting-list transfers.
    pub messages: u64,
    /// Virtual time consumed: lookup elapsed times plus transfer
    /// latencies, serial across terms.
    pub elapsed: u64,
    /// Whether the budget ran out before every term resolved.
    pub deadline_exceeded: bool,
}

/// The index: per-node storage of term posting lists.
#[derive(Debug, Clone)]
pub struct DhtIndex {
    /// Per node: term-key → sorted posting list of object ids.
    storage: Vec<FxHashMap<u64, Vec<u32>>>,
    /// Publication cost in hops (accumulated for reporting).
    publish_hops: u64,
}

impl DhtIndex {
    /// Creates an empty index for `net`.
    pub fn new(net: &ChordNetwork) -> Self {
        Self {
            storage: vec![FxHashMap::default(); net.len()],
            publish_hops: 0,
        }
    }

    /// Publishes `object` under `term`, routing from `from`.
    pub fn publish(&mut self, net: &ChordNetwork, from: u32, term: &str, object: u32) {
        self.publish_key(net, from, key_for_term(term), object);
    }

    /// Publishes `object` under a pre-hashed ring key (symbol-level callers
    /// hash their own term space).
    pub fn publish_key(&mut self, net: &ChordNetwork, from: u32, key: u64, object: u32) {
        let r = net.lookup(from, key);
        self.publish_hops += r.hops as u64;
        let list = self.storage[r.owner as usize].entry(key).or_default();
        if let Err(pos) = list.binary_search(&object) {
            list.insert(pos, object);
        }
    }

    /// Total hops spent on publications so far.
    pub fn publish_hops(&self) -> u64 {
        self.publish_hops
    }

    /// Number of `(node, term)` posting lists stored.
    pub fn stored_lists(&self) -> usize {
        self.storage.iter().map(|m| m.len()).sum()
    }

    /// Multi-term AND query from node `from`.
    ///
    /// Empty term sets return no results (as in `qcp-terms` matching).
    pub fn query(&self, net: &ChordNetwork, from: u32, terms: &[&str]) -> DhtQueryOutcome {
        let keys: Vec<u64> = terms.iter().map(|t| key_for_term(t)).collect();
        self.query_keys(net, from, &keys)
    }

    /// Multi-key AND query (symbol-level variant of [`Self::query`]).
    pub fn query_keys(&self, net: &ChordNetwork, from: u32, terms: &[u64]) -> DhtQueryOutcome {
        if terms.is_empty() {
            return DhtQueryOutcome {
                results: Vec::new(),
                hops: 0,
                messages: 0,
            };
        }
        let mut hops = 0u32;
        let mut messages = 0u64;
        let mut result: Option<Vec<u32>> = None;
        for &key in terms {
            let r = net.lookup(from, key);
            hops += r.hops;
            messages += r.hops as u64 + 1; // +1 posting-list transfer
            let empty: Vec<u32> = Vec::new();
            let list = self.storage[r.owner as usize].get(&key).unwrap_or(&empty);
            result = Some(match result {
                None => list.clone(),
                Some(acc) => intersect_sorted(&acc, list),
            });
            if result.as_ref().is_some_and(|r| r.is_empty()) {
                break; // AND already failed; remaining terms can't help
            }
        }
        DhtQueryOutcome {
            results: result.unwrap_or_default(),
            hops,
            messages,
        }
    }

    /// Multi-key AND query under a [`FaultPlan`].
    ///
    /// Each term lookup routes with [`ChordNetwork::lookup_faulty`] (so
    /// hops can be dropped, retried, and timed out). A term whose lookup
    /// fails outright makes the whole AND query fail — the querier cannot
    /// distinguish "no postings" from "index unreachable".
    ///
    /// **Staleness**: when a resolved (alive) owner has no posting list
    /// for a term, but the term's *fault-free* home node is currently
    /// down and does hold the list, the posting is stranded on a departed
    /// owner — counted in [`FaultStats::stale_misses`]. This models an
    /// index whose re-replication has not caught up with churn.
    #[allow(clippy::too_many_arguments)] // mirrors `query_keys` + the fault context
    pub fn query_keys_faulty(
        &self,
        net: &ChordNetwork,
        from: u32,
        terms: &[u64],
        plan: &FaultPlan,
        policy: &RetryPolicy,
        time: u64,
        nonce: u64,
    ) -> (DhtQueryOutcome, FaultStats) {
        let mut stats = FaultStats::default();
        if terms.is_empty() {
            return (
                DhtQueryOutcome {
                    results: Vec::new(),
                    hops: 0,
                    messages: 0,
                },
                stats,
            );
        }
        let mut hops = 0u32;
        let mut messages = 0u64;
        let mut result: Option<Vec<u32>> = None;
        for (i, &key) in terms.iter().enumerate() {
            let (r, term_stats) =
                net.lookup_faulty(from, key, plan, policy, time, mix64(nonce ^ i as u64));
            stats.absorb(&term_stats);
            hops += r.hops;
            messages += r.messages;
            let Some(owner) = r.owner else {
                // Routing failed: the AND query fails outright.
                result = Some(Vec::new());
                break;
            };
            messages += 1; // posting-list transfer
            let list = self.storage[owner as usize].get(&key);
            if list.is_none() {
                let home = net.successor_of_key(key);
                if home != owner && self.storage[home as usize].contains_key(&key) {
                    stats.stale_misses += 1;
                }
            }
            let empty: Vec<u32> = Vec::new();
            let list = list.unwrap_or(&empty);
            result = Some(match result {
                None => list.clone(),
                Some(acc) => intersect_sorted(&acc, list),
            });
            if result.as_ref().is_some_and(|r| r.is_empty()) {
                break; // AND already failed; remaining terms can't help
            }
        }
        (
            DhtQueryOutcome {
                results: result.unwrap_or_default(),
                hops,
                messages,
            },
            stats,
        )
    }

    /// Deadline-bounded multi-key AND query on the virtual-time engine.
    ///
    /// Term lookups run *serially* on one virtual timeline — each term
    /// routes with [`ChordNetwork::lookup_timed`] under the budget that
    /// remains after its predecessors, and a resolved term's
    /// posting-list transfer charges one message plus
    /// `plan.latency(from, owner)` ticks before the next term starts.
    ///
    /// Degradation contract (the deadline-degraded search's backbone):
    ///
    /// * a lookup truncated by the budget — or a budget already
    ///   exhausted before a term starts — sets `deadline_exceeded` and
    ///   returns the **best-so-far partial intersection** over the terms
    ///   that did resolve (possibly over-approximate: unresolved terms
    ///   never filtered it);
    /// * a lookup that fails outright *within* the budget keeps the
    ///   fail-hard semantics of [`Self::query_keys_faulty`]: the AND
    ///   query returns no results (the querier cannot distinguish "no
    ///   postings" from "index unreachable");
    /// * stale-miss accounting is identical to the instant-path query.
    #[allow(clippy::too_many_arguments)] // mirrors `query_keys_faulty` + the budget
    pub fn query_keys_timed(
        &self,
        net: &ChordNetwork,
        from: u32,
        terms: &[u64],
        plan: &FaultPlan,
        policy: &RetryPolicy,
        time: u64,
        nonce: u64,
        budget: Option<u64>,
    ) -> (TimedQueryOutcome, FaultStats) {
        let mut stats = FaultStats::default();
        let mut out = TimedQueryOutcome {
            results: Vec::new(),
            hops: 0,
            messages: 0,
            elapsed: 0,
            deadline_exceeded: false,
        };
        if terms.is_empty() {
            return (out, stats);
        }
        let mut result: Option<Vec<u32>> = None;
        for (i, &key) in terms.iter().enumerate() {
            let remaining = budget.map(|b| b.saturating_sub(out.elapsed));
            if remaining == Some(0) {
                out.deadline_exceeded = true;
                break;
            }
            let (r, term_stats) = net.lookup_timed(
                from,
                key,
                plan,
                policy,
                time,
                mix64(nonce ^ i as u64),
                remaining,
            );
            stats.absorb(&term_stats);
            out.hops += r.hops;
            out.messages += r.messages;
            out.elapsed += r.elapsed;
            if r.truncated {
                out.deadline_exceeded = true;
                break; // partial intersection over the resolved terms
            }
            let Some(owner) = r.owner else {
                // Routing failed within budget: the AND fails outright.
                result = Some(Vec::new());
                break;
            };
            out.messages += 1; // posting-list transfer
            let transfer = plan.latency(from, owner);
            out.elapsed += transfer;
            stats.ticks += transfer;
            let list = self.storage[owner as usize].get(&key);
            if list.is_none() {
                let home = net.successor_of_key(key);
                if home != owner && self.storage[home as usize].contains_key(&key) {
                    stats.stale_misses += 1;
                }
            }
            let empty: Vec<u32> = Vec::new();
            let list = list.unwrap_or(&empty);
            result = Some(match result {
                None => list.clone(),
                Some(acc) => intersect_sorted(&acc, list),
            });
            if result.as_ref().is_some_and(|r| r.is_empty()) {
                break; // AND already failed; remaining terms can't help
            }
        }
        if budget.is_some_and(|b| out.elapsed > b) {
            out.deadline_exceeded = true;
        }
        out.results = result.unwrap_or_default();
        (out, stats)
    }

    /// Removes node `v`'s storage slot, keeping the index aligned with the
    /// shifted node table after [`ChordNetwork::leave`]. Call this with
    /// the same `v` passed to `leave`, *after* the ring update.
    ///
    /// Returns the departed node's posting lists. Callers model a
    /// *graceful* departure by re-publishing the returned `(key, objects)`
    /// pairs (ownership handoff), or an *abrupt* one by dropping them —
    /// in which case those postings are simply gone and later queries for
    /// the keys come back empty.
    pub fn remove_node(&mut self, v: u32) -> FxHashMap<u64, Vec<u32>> {
        self.storage.remove(v as usize)
    }

    /// Re-replicates posting lists orphaned by owner departure: every
    /// list held by a node that is down under `alive` is copied (merged)
    /// onto the key's first **alive** successor — the owner that faulty
    /// queries actually resolve, so their `stale_misses` decay as this
    /// maintenance catches up with churn.
    ///
    /// Modeling note: in a deployed ring the data survives on the
    /// owner's `r` successor replicas; the simulator keeps one copy and
    /// lets the maintenance daemon re-materialize it on the new owner.
    /// The down node keeps its copy (it may come back; publishes are
    /// idempotent merges, so double-placement is harmless).
    ///
    /// Keys are visited in sorted order per node (never hash order), so
    /// the pass is deterministic. A transfer is skipped when the
    /// destination already holds every object (the daemon compares digests
    /// before shipping), so the pass is *idempotent with zero cost at the
    /// fixed point*: a second identical call returns `(0, 0)`. Returns
    /// `(lists_copied, messages)` with one transfer message per copied
    /// list.
    pub fn re_replicate(&mut self, net: &ChordNetwork, alive: &[bool]) -> (u64, u64) {
        assert_eq!(alive.len(), net.len(), "alive mask must cover the ring");
        let mut lists = 0u64;
        let mut messages = 0u64;
        for h in 0..net.len() {
            if alive[h] || self.storage[h].is_empty() {
                continue;
            }
            let mut keys: Vec<u64> = self.storage[h].keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let Some(dest) = net.first_alive_successor(key, alive) else {
                    continue; // nobody alive to host the list
                };
                if dest as usize == h {
                    continue;
                }
                let Some(src) = self.storage[h].get(&key).cloned() else {
                    continue;
                };
                let list = self.storage[dest as usize].entry(key).or_default();
                let mut changed = false;
                for object in src {
                    if let Err(pos) = list.binary_search(&object) {
                        list.insert(pos, object);
                        changed = true;
                    }
                }
                if changed {
                    lists += 1;
                    messages += 1;
                }
            }
        }
        (lists, messages)
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indexed_net() -> (ChordNetwork, DhtIndex) {
        let net = ChordNetwork::new(64, 42);
        let mut idx = DhtIndex::new(&net);
        // Object 1: "madonna like prayer"; object 2: "madonna hits";
        // object 3: "nirvana hits".
        for (obj, terms) in [
            (1u32, vec!["madonna", "like", "prayer"]),
            (2, vec!["madonna", "hits"]),
            (3, vec!["nirvana", "hits"]),
        ] {
            for t in terms {
                idx.publish(&net, obj % 64, t, obj);
            }
        }
        (net, idx)
    }

    #[test]
    fn single_term_query_returns_posting_list() {
        let (net, idx) = indexed_net();
        let out = idx.query(&net, 0, &["madonna"]);
        assert_eq!(out.results, vec![1, 2]);
        assert!(out.messages >= 1);
    }

    #[test]
    fn multi_term_query_intersects() {
        let (net, idx) = indexed_net();
        let out = idx.query(&net, 5, &["madonna", "hits"]);
        assert_eq!(out.results, vec![2]);
        let out2 = idx.query(&net, 5, &["madonna", "nirvana"]);
        assert!(out2.results.is_empty());
    }

    #[test]
    fn unknown_term_yields_empty() {
        let (net, idx) = indexed_net();
        let out = idx.query(&net, 9, &["unknown"]);
        assert!(out.results.is_empty());
    }

    #[test]
    fn empty_query_is_empty_and_free() {
        let (net, idx) = indexed_net();
        let out = idx.query(&net, 0, &[]);
        assert!(out.results.is_empty());
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn duplicate_publish_is_idempotent() {
        let net = ChordNetwork::new(16, 1);
        let mut idx = DhtIndex::new(&net);
        idx.publish(&net, 0, "dup", 7);
        idx.publish(&net, 3, "dup", 7);
        let out = idx.query(&net, 2, &["dup"]);
        assert_eq!(out.results, vec![7]);
    }

    #[test]
    fn query_cost_scales_with_terms_not_network() {
        let net = ChordNetwork::new(1024, 2);
        let mut idx = DhtIndex::new(&net);
        idx.publish(&net, 0, "aa", 1);
        idx.publish(&net, 0, "bb", 1);
        idx.publish(&net, 0, "cc", 1);
        let one = idx.query(&net, 7, &["aa"]);
        let three = idx.query(&net, 7, &["aa", "bb", "cc"]);
        assert_eq!(three.results, vec![1]);
        // Each term lookup is O(log n): 3-term cost is bounded by ~3x the
        // 1-term bound, not by network size.
        assert!(three.hops <= 3 * net.hop_bound());
        assert!(one.hops <= net.hop_bound());
    }

    #[test]
    fn posting_lists_live_on_the_ring_owner() {
        let net = ChordNetwork::new(32, 3);
        let mut idx = DhtIndex::new(&net);
        idx.publish(&net, 11, "owner-check", 5);
        let key = key_for_term("owner-check");
        let owner = net.successor_of_key(key);
        assert!(idx.storage[owner as usize].contains_key(&key));
        assert_eq!(idx.stored_lists(), 1);
    }

    #[test]
    fn intersect_sorted_basic() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert!(intersect_sorted(&[], &[1]).is_empty());
    }

    #[test]
    fn faulty_query_under_none_plan_matches_plain_results() {
        let (net, idx) = indexed_net();
        let plan = FaultPlan::none(64);
        let policy = RetryPolicy::default();
        for terms in [vec!["madonna"], vec!["madonna", "hits"], vec!["unknown"]] {
            let keys: Vec<u64> = terms.iter().map(|t| key_for_term(t)).collect();
            let plain = idx.query_keys(&net, 0, &keys);
            let (faulty, stats) = idx.query_keys_faulty(&net, 0, &keys, &plan, &policy, 0, 7);
            assert_eq!(plain.results, faulty.results, "terms {terms:?}");
            assert_eq!(stats.wasted(), 0);
            assert_eq!(stats.stale_misses, 0);
        }
    }

    #[test]
    fn timed_query_with_generous_budget_matches_plain_results() {
        let (net, idx) = indexed_net();
        let plan = FaultPlan::none(64);
        let policy = RetryPolicy::default();
        for terms in [vec!["madonna"], vec!["madonna", "hits"], vec!["unknown"]] {
            let keys: Vec<u64> = terms.iter().map(|t| key_for_term(t)).collect();
            let plain = idx.query_keys(&net, 0, &keys);
            let (faulty, _) = idx.query_keys_faulty(&net, 0, &keys, &plan, &policy, 0, 7);
            for budget in [None, Some(10_000)] {
                let (timed, stats) =
                    idx.query_keys_timed(&net, 0, &keys, &plan, &policy, 0, 7, budget);
                assert_eq!(plain.results, timed.results, "terms {terms:?}");
                // Same router as the instant fault path: identical route.
                assert_eq!(faulty.hops, timed.hops, "terms {terms:?} budget {budget:?}");
                assert_eq!(faulty.messages, timed.messages, "terms {terms:?}");
                assert!(!timed.deadline_exceeded);
                assert_eq!(stats.ticks, timed.elapsed);
            }
        }
    }

    #[test]
    fn timed_query_degrades_to_partial_results_at_the_deadline() {
        let (net, idx) = indexed_net();
        let plan = FaultPlan::none(64);
        let policy = RetryPolicy::default();
        let keys: Vec<u64> = ["madonna", "hits"]
            .iter()
            .map(|t| key_for_term(t))
            .collect();
        let (full, _) = idx.query_keys_timed(&net, 0, &keys, &plan, &policy, 0, 7, None);
        assert_eq!(full.results, vec![2]);
        assert!(full.elapsed > 1, "two lookups plus transfers take time");
        // Find a budget that resolves the first term but not the second:
        // the partial intersection is term one's whole posting list —
        // over-approximate best-so-far, flagged as deadline-exceeded.
        let partial = (1..full.elapsed).find_map(|budget| {
            let (out, _) = idx.query_keys_timed(&net, 0, &keys, &plan, &policy, 0, 7, Some(budget));
            (out.deadline_exceeded && !out.results.is_empty()).then_some(out)
        });
        let partial = partial.expect("some budget must cut between the two terms");
        assert_eq!(partial.results, vec![1, 2], "madonna postings, unfiltered");
        assert!(partial.elapsed <= full.elapsed);
        // Budget 0-ish: exceeded before anything resolves.
        let (none, _) = idx.query_keys_timed(&net, 0, &keys, &plan, &policy, 0, 7, Some(1));
        assert!(none.deadline_exceeded);
        assert!(none.results.is_empty());
    }

    #[test]
    fn timed_query_is_deterministic_under_faults() {
        use qcp_faults::FaultConfig;
        let (net, idx) = indexed_net();
        let plan = FaultPlan::build(
            64,
            &FaultConfig {
                loss: 0.2,
                churn: 0.2,
                mean_latency: 4,
                ..Default::default()
            },
        );
        let policy = RetryPolicy {
            jitter: Some(0xfee1),
            ..Default::default()
        };
        let keys: Vec<u64> = ["madonna", "hits"]
            .iter()
            .map(|t| key_for_term(t))
            .collect();
        for t in 0..20u64 {
            let run = || idx.query_keys_timed(&net, 0, &keys, &plan, &policy, t, t, Some(150));
            assert_eq!(run(), run());
        }
    }

    #[test]
    fn stranded_posting_on_departed_owner_counts_stale() {
        let net = ChordNetwork::new(48, 5);
        let mut idx = DhtIndex::new(&net);
        idx.publish(&net, 0, "stale-term", 9);
        let key = key_for_term("stale-term");
        let home = net.successor_of_key(key);
        // Find a (plan, time) where the term's home node is down but
        // routing still resolves (some successor alive) and the querier
        // lives. Deterministic scan over seeds and ticks.
        let policy = RetryPolicy::default();
        let (plan, t) = stranding_scenario(&net, home, key);
        let (out, stats) = idx.query_keys_faulty(&net, 0, &[key], &plan, &policy, t, 11);
        assert!(
            out.results.is_empty(),
            "posting stranded on dead owner is unreachable"
        );
        assert_eq!(stats.stale_misses, 1, "stranded posting must count stale");
    }

    /// Deterministic scan for a `(plan, time)` where `home` is down, node
    /// 0 is alive, and routing can still resolve the key — shared by the
    /// staleness and re-replication tests.
    #[cfg(test)]
    fn stranding_scenario(net: &ChordNetwork, home: u32, key: u64) -> (qcp_faults::FaultPlan, u64) {
        use qcp_faults::FaultConfig;
        (0..200u64)
            .find_map(|seed| {
                let plan = FaultPlan::build(
                    net.len(),
                    &FaultConfig {
                        loss: 0.0,
                        churn: 0.6,
                        seed,
                        ..Default::default()
                    },
                );
                (0..1_000u64)
                    .find(|&t| {
                        !plan.alive_at(home, t)
                            && plan.alive_at(0, t)
                            && net.first_alive_successor_at(key, &plan, t).is_some()
                    })
                    .map(|t| (plan, t))
            })
            .expect("churn=0.6 must down the home node somewhere")
    }

    #[test]
    fn re_replication_decays_stale_misses() {
        let net = ChordNetwork::new(48, 5);
        let mut idx = DhtIndex::new(&net);
        idx.publish(&net, 0, "stale-term", 9);
        let key = key_for_term("stale-term");
        let home = net.successor_of_key(key);
        let policy = RetryPolicy::default();
        let (plan, t) = stranding_scenario(&net, home, key);
        // Before maintenance: the posting is stranded and counted stale.
        let (out, stats) = idx.query_keys_faulty(&net, 0, &[key], &plan, &policy, t, 11);
        assert!(out.results.is_empty());
        assert_eq!(stats.stale_misses, 1);
        // One maintenance pass at the churn snapshot: the orphaned list is
        // copied to the first alive successor...
        let alive = plan.alive_mask_at(t);
        let (lists, messages) = idx.re_replicate(&net, &alive);
        assert_eq!(lists, 1, "exactly the stranded list moves");
        assert_eq!(messages, 1);
        // ...and the same query now succeeds with zero stale misses.
        let (out, stats) = idx.query_keys_faulty(&net, 0, &[key], &plan, &policy, t, 11);
        assert_eq!(out.results, vec![9], "re-replicated posting is reachable");
        assert_eq!(stats.stale_misses, 0, "stale miss decays after maintenance");
        // The pass is idempotent with zero cost at the fixed point.
        assert_eq!(idx.re_replicate(&net, &alive), (0, 0));
    }

    #[test]
    fn re_replicate_is_deterministic_and_noop_when_all_alive() {
        let net = ChordNetwork::new(48, 5);
        let mut a = DhtIndex::new(&net);
        for (i, term) in ["aa", "bb", "cc", "dd"].iter().enumerate() {
            a.publish(&net, i as u32, term, i as u32);
        }
        let mut b = a.clone();
        // All alive: nothing is orphaned, nothing moves.
        let all = vec![true; net.len()];
        assert_eq!(a.re_replicate(&net, &all), (0, 0));
        // Under churn: two independent runs produce identical storage and
        // identical accounting.
        let mut alive = vec![true; net.len()];
        for (term, owner) in ["aa", "bb", "cc", "dd"]
            .iter()
            .map(|t| (*t, net.successor_of_key(key_for_term(t))))
        {
            let _ = term;
            alive[owner as usize] = false;
        }
        let ra = a.re_replicate(&net, &alive);
        let rb = b.re_replicate(&net, &alive);
        assert_eq!(ra, rb);
        assert!(ra.0 >= 1, "downed owners must orphan at least one list");
        for v in 0..net.len() {
            let mut ka: Vec<u64> = a.storage[v].keys().copied().collect();
            let mut kb: Vec<u64> = b.storage[v].keys().copied().collect();
            ka.sort_unstable();
            kb.sort_unstable();
            assert_eq!(ka, kb, "storage diverged at node {v}");
            for k in ka {
                assert_eq!(a.storage[v][&k], b.storage[v][&k]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "alive mask must cover the ring")]
    fn re_replicate_rejects_short_mask() {
        let net = ChordNetwork::new(8, 1);
        let mut idx = DhtIndex::new(&net);
        let _ = idx.re_replicate(&net, &[true; 4]);
    }

    #[test]
    fn remove_node_keeps_surviving_postings_aligned() {
        let net0 = ChordNetwork::new(32, 7);
        let mut net = net0.clone();
        let mut idx = DhtIndex::new(&net);
        let terms = ["alpha", "beta", "gamma", "delta", "epsilon"];
        for (i, t) in terms.iter().enumerate() {
            idx.publish(&net, (i % 32) as u32, t, i as u32);
        }
        // Remove a node that is NOT the owner of any published term, so
        // every posting must survive the index shift.
        let owners: Vec<u32> = terms
            .iter()
            .map(|t| net.successor_of_key(key_for_term(t)))
            .collect();
        let victim = (0..32u32)
            .find(|v| !owners.contains(v))
            .expect("32 nodes, 5 owners");
        net.leave(victim);
        let stranded = idx.remove_node(victim);
        assert!(stranded.is_empty(), "victim owned no posting lists");
        for (i, t) in terms.iter().enumerate() {
            let out = idx.query(&net, 0, &[t]);
            assert_eq!(out.results, vec![i as u32], "term {t} lost after leave");
        }
    }
}
