//! `qcp-vtime` — a deterministic discrete-event engine over virtual time.
//!
//! Every latency-sensitive kernel in the workspace (event-driven floods
//! and walks in `qcp-overlay`, timed Chord lookups in `qcp-dht`) runs on
//! the [`Calendar`] defined here: a priority queue of events keyed by
//! `(virtual_time, tie_break, seq)`.
//!
//! The determinism contract has three legs:
//!
//! * **No wall clock.** Virtual time is a plain `u64` tick counter that
//!   only [`Calendar::pop`] advances. Reading `Instant`/`SystemTime`
//!   anywhere in this crate is banned by `cargo xtask lint` (rule D1 —
//!   the crate is `sim_facing`).
//! * **Stateless tie-breaks.** Two events scheduled for the same tick
//!   are ordered by a `tie` key the caller derives as a stateless hash
//!   of the *event identity* (edge, message index, walker id — see
//!   [`tie_break`]), never from arrival order across threads. Runs are
//!   therefore bitwise-identical across runs and thread-pool widths:
//!   parallelism in this workspace is across trials/cells, and each
//!   trial's calendar is single-threaded and fully ordered.
//! * **Strict total order.** A monotone insertion sequence number breaks
//!   residual `(time, tie)` collisions FIFO, so even a degenerate tie
//!   hash cannot make `pop` order depend on heap internals.
//!
//! [`Deadline`] is the virtual-time budget the search layer attaches to
//! a query ([`SearchSpec::deadline`]); kernels treat it as an event-time
//! cutoff and report truncation instead of silently completing late.
//!
//! [`SearchSpec::deadline`]: https://docs.rs/qcp-search

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qcp_util::hash::mix64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Derives a tie-break key from an event's identity.
///
/// A thin alias over the SplitMix64 finalizer: callers fold the fields
/// that identify the event (edge endpoints, message index, walker id)
/// into one `u64` and hash it here. The hash is stateless, so the same
/// event gets the same key no matter when or where it is scheduled.
#[inline]
pub fn tie_break(identity: u64) -> u64 {
    mix64(identity)
}

/// A virtual-time budget for one query: the deadline in ticks after
/// which a search must stop expanding and return best-so-far results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Deadline {
    /// The budget, in virtual-time ticks (latency units of the
    /// governing `FaultPlan`).
    pub ticks: u64,
}

impl Deadline {
    /// A deadline `ticks` into the query's virtual timeline.
    pub fn after(ticks: u64) -> Self {
        Self { ticks }
    }
}

/// One scheduled entry. Ordered by `(time, tie, seq)` — strict total
/// order, compared field-by-field.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Entry<E> {
    time: u64,
    tie: u64,
    seq: u64,
    event: E,
}

/// The calendar queue: a min-heap of events in virtual time.
///
/// `pop` advances [`Calendar::now`] to the popped event's timestamp;
/// scheduling into the past is a logic error and panics in debug builds.
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: u64,
    seq: u64,
}

impl<E: Ord> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Ord> Calendar<E> {
    /// An empty calendar at virtual time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// The current virtual time: the timestamp of the last popped event
    /// (0 before any pop).
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Pending event count.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the next event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Schedules `event` at absolute virtual time `time` with tie-break
    /// key `tie` (see [`tie_break`]). `time` must not precede `now`.
    #[inline]
    pub fn schedule_at(&mut self, time: u64, tie: u64, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time,
            tie,
            seq,
            event,
        }));
    }

    /// Schedules `event` `delay` ticks after `now`.
    #[inline]
    pub fn schedule_after(&mut self, delay: u64, tie: u64, event: E) {
        self.schedule_at(self.now.saturating_add(delay), tie, event);
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    /// Virtual time never moves backwards.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.time >= self.now, "calendar time went backwards");
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// Drops every pending event without advancing `now`. Used by the
    /// timed DHT lookup to abandon a late reply once its timer fires.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Rewinds the calendar to virtual time 0 for reuse across trials:
    /// drops every pending event, resets `now` and the insertion
    /// sequence, and **retains the heap's allocation**. Per-trial event
    /// loops that keep one calendar around therefore allocate nothing
    /// in steady state (the PR 8 arena discipline).
    pub fn reset(&mut self) {
        self.heap.clear();
        self.now = 0;
        self.seq = 0;
    }

    /// The heap's retained capacity, in entries. Exposed so reuse tests
    /// (and curious drivers) can verify that [`Calendar::reset`] keeps
    /// the allocation instead of shrinking it.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut c = Calendar::new();
        c.schedule_at(5, 0, "c");
        c.schedule_at(1, 0, "a");
        c.schedule_at(3, 0, "b");
        let order: Vec<_> = std::iter::from_fn(|| c.pop()).collect();
        assert_eq!(order, vec![(1, "a"), (3, "b"), (5, "c")]);
        assert_eq!(c.now(), 5);
    }

    #[test]
    fn equal_times_order_by_tie_then_seq() {
        let mut c = Calendar::new();
        c.schedule_at(2, 9, "high-tie");
        c.schedule_at(2, 1, "low-tie-first");
        c.schedule_at(2, 1, "low-tie-second");
        let order: Vec<_> = std::iter::from_fn(|| c.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["low-tie-first", "low-tie-second", "high-tie"]);
    }

    #[test]
    fn pop_order_is_insertion_order_independent_given_distinct_ties() {
        // The same event set inserted in two different orders pops
        // identically: (time, tie) is a total order when ties are
        // distinct hashes of event identity.
        let events: Vec<(u64, u64, u32)> = (0..64u64)
            .map(|i| (i % 7, tie_break(i), i as u32))
            .collect();
        let run = |perm: &[(u64, u64, u32)]| {
            let mut c = Calendar::new();
            for &(t, tie, id) in perm {
                c.schedule_at(t, tie, id);
            }
            std::iter::from_fn(|| c.pop()).collect::<Vec<_>>()
        };
        let mut reversed = events.clone();
        reversed.reverse();
        assert_eq!(run(&events), run(&reversed));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut c = Calendar::new();
        c.schedule_at(10, 0, 'a');
        assert_eq!(c.pop(), Some((10, 'a')));
        c.schedule_after(5, 0, 'b');
        assert_eq!(c.peek_time(), Some(15));
        assert_eq!(c.pop(), Some((15, 'b')));
    }

    #[test]
    fn clear_abandons_pending_events_without_time_travel() {
        let mut c = Calendar::new();
        c.schedule_at(4, 0, 1u8);
        c.schedule_at(8, 0, 2u8);
        assert_eq!(c.pop(), Some((4, 1)));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.now(), 4);
        c.schedule_after(1, 0, 3u8);
        assert_eq!(c.pop(), Some((5, 3)));
    }

    #[test]
    fn reset_rewinds_time_and_retains_capacity() {
        let mut c = Calendar::new();
        for i in 0..256u64 {
            c.schedule_at(i, tie_break(i), i);
        }
        let cap = c.capacity();
        assert!(cap >= 256);
        assert_eq!(c.pop(), Some((0, 0)));
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.now(), 0, "reset rewinds virtual time");
        assert_eq!(c.capacity(), cap, "reset retains the heap allocation");
        // The rewound calendar accepts early times again (clear() alone
        // would leave `now` stuck at the last popped timestamp) and
        // replays identically: same events, same pop order, no growth.
        for i in 0..256u64 {
            c.schedule_at(i, tie_break(i), i);
        }
        assert_eq!(c.capacity(), cap, "steady-state reuse allocates nothing");
        let order: Vec<_> = std::iter::from_fn(|| c.pop()).collect();
        assert_eq!(order.len(), 256);
        assert_eq!(order[0], (0, 0));
        assert_eq!(order[255], (255, 255));
    }

    #[test]
    fn tie_break_is_stateless_and_spreads() {
        assert_eq!(tie_break(42), tie_break(42));
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1_000u64 {
            assert!(seen.insert(tie_break(i)));
        }
    }

    #[test]
    fn deadline_constructor() {
        assert_eq!(Deadline::after(48).ticks, 48);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics_in_debug() {
        let mut c = Calendar::new();
        c.schedule_at(10, 0, ());
        let _ = c.pop();
        c.schedule_at(3, 0, ());
    }
}
