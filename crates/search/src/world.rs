//! The shared simulation world for search-system comparisons.
//!
//! A [`SearchWorld`] is a realized P2P content universe: an overlay
//! topology, objects annotated with term sets drawn from a Zipf *file*
//! ranking, replica placement drawn from the measured power law, and a
//! query workload keyed to a *query* ranking whose popular head overlaps
//! the file head only by a planted fraction — the same dual-ranking
//! construction as `qcp-tracegen`, here at the symbol level for
//! simulation speed.
//!
//! Every search system sees exactly the same world and the same queries;
//! only the routing strategy differs.

use qcp_overlay::topology::{gnutella_two_tier, Topology};
use qcp_overlay::{Placement, PlacementModel, TopologyConfig};
use qcp_util::rng::Pcg64;
use qcp_util::{FxHashMap, FxHashSet};
use qcp_zipf::{Zipf, ZipfMandelbrot};

/// World generation parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of peers.
    pub num_peers: usize,
    /// Number of objects.
    pub num_objects: u32,
    /// Term universe size.
    pub num_terms: usize,
    /// Terms per object (inclusive range).
    pub terms_per_object: (usize, usize),
    /// Zipf exponent of file-side term popularity.
    pub term_zipf_s: f64,
    /// Replica-count power-law exponent.
    pub placement_tau: f64,
    /// When set, overrides Zipf placement with uniform `k`-replica
    /// placement (used by the Gia ablation, which contrasts the two).
    pub uniform_replicas: Option<u32>,
    /// Popular-head size on both rankings.
    pub head_size: usize,
    /// Fraction of the query head shared with the file head.
    pub head_overlap: f64,
    /// Query-side Zipf–Mandelbrot exponent.
    pub query_zipf_s: f64,
    /// Query-side head-flattening offset.
    pub query_zipf_q: f64,
    /// Extra terms appended to a query beyond the anchor (max).
    pub max_extra_terms: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            num_peers: 2_000,
            num_objects: 20_000,
            num_terms: 20_000,
            terms_per_object: (2, 4),
            term_zipf_s: 1.05,
            placement_tau: 2.4,
            uniform_replicas: None,
            head_size: 200,
            head_overlap: 0.30,
            query_zipf_s: 1.05,
            query_zipf_q: 15.0,
            max_extra_terms: 2,
            seed: 0x0a1d,
        }
    }
}

/// One query: term ids plus the issuing peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Sorted, deduplicated term ids.
    pub terms: Vec<u32>,
    /// Source peer.
    pub source: u32,
}

/// A realized world.
#[derive(Debug)]
pub struct SearchWorld {
    /// Overlay topology (two-tier Gnutella by default).
    pub topology: Topology,
    /// Object → holder peers.
    pub placement: Placement,
    /// Sorted term ids per object.
    pub object_terms: Vec<Vec<u32>>,
    /// Term → sorted posting list of objects.
    pub postings: FxHashMap<u32, Vec<u32>>,
    /// Objects held per peer (sorted).
    pub peer_contents: Vec<Vec<u32>>,
    /// Query-rank → term id (file ranking is the identity).
    pub query_ranking: Vec<u32>,
    /// Head size used for the dual ranking.
    pub head_size: usize,
    query_zipf: ZipfMandelbrot,
    max_extra_terms: usize,
}

impl SearchWorld {
    /// Generates a world.
    pub fn generate(config: &WorldConfig) -> Self {
        let (lo, hi) = config.terms_per_object;
        assert!(lo >= 1 && hi >= lo);
        assert!(config.num_terms >= 2 * config.head_size);
        let mut rng = Pcg64::with_stream(config.seed, 0x0a1d);

        let topology = gnutella_two_tier(&TopologyConfig {
            num_nodes: config.num_peers,
            seed: config.seed ^ 0x7079,
            ..Default::default()
        });

        // Object annotations: Zipf over file ranking (identity: term id r
        // is the r-th most file-popular term).
        let term_zipf = Zipf::new(config.num_terms, config.term_zipf_s);
        let object_terms: Vec<Vec<u32>> = (0..config.num_objects)
            .map(|_| {
                let k = lo + rng.index(hi - lo + 1);
                let mut terms: Vec<u32> = Vec::with_capacity(k);
                while terms.len() < k {
                    let t = term_zipf.sample_index(&mut rng) as u32;
                    if !terms.contains(&t) {
                        terms.push(t);
                    }
                }
                terms.sort_unstable();
                terms
            })
            .collect();

        // Posting lists.
        let mut postings: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (obj, terms) in object_terms.iter().enumerate() {
            for &t in terms {
                postings.entry(t).or_default().push(obj as u32);
            }
        }
        // Objects were visited in order, so lists are already sorted.

        // Placement + reverse map.
        let model = match config.uniform_replicas {
            Some(k) => PlacementModel::UniformK(k),
            None => PlacementModel::ZipfReplicas {
                tau: config.placement_tau,
            },
        };
        let placement = Placement::generate(
            model,
            config.num_peers as u32,
            config.num_objects,
            config.seed ^ 0x91ace,
        );
        let mut peer_contents: Vec<Vec<u32>> = vec![Vec::new(); config.num_peers];
        for obj in 0..config.num_objects {
            for &peer in placement.holders(obj) {
                peer_contents[peer as usize].push(obj);
            }
        }
        for c in &mut peer_contents {
            c.sort_unstable();
        }

        // Dual ranking: same construction as qcp-tracegen's vocabulary.
        let h = config.head_size;
        let overlap_count = (config.head_overlap * h as f64).round() as usize;
        let from_file_head = rng.sample_distinct(h, overlap_count);
        let mid_span = (h * 20).min(config.num_terms) - h;
        let from_mid: Vec<usize> = rng
            .sample_distinct(mid_span, h - overlap_count)
            .into_iter()
            .map(|x| x + h)
            .collect();
        let mut query_head: Vec<u32> = from_file_head
            .into_iter()
            .chain(from_mid)
            .map(|x| x as u32)
            .collect();
        rng.shuffle(&mut query_head);
        let head_set: FxHashSet<u32> = query_head.iter().copied().collect();
        let mut tail: Vec<u32> = (0..config.num_terms as u32)
            .filter(|t| !head_set.contains(t))
            .collect();
        rng.shuffle(&mut tail);
        let mut query_ranking = query_head;
        query_ranking.extend(tail);

        let query_zipf =
            ZipfMandelbrot::new(config.num_terms, config.query_zipf_s, config.query_zipf_q);

        Self {
            topology,
            placement,
            object_terms,
            postings,
            peer_contents,
            query_ranking,
            head_size: h,
            query_zipf,
            max_extra_terms: config.max_extra_terms,
        }
    }

    /// Number of peers.
    pub fn num_peers(&self) -> usize {
        self.peer_contents.len()
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.object_terms.len()
    }

    /// Objects matching *all* `terms` (sorted input not required).
    pub fn matching_objects(&self, terms: &[u32]) -> Vec<u32> {
        if terms.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&Vec<u32>> = Vec::with_capacity(terms.len());
        for t in terms {
            match self.postings.get(t) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        // Intersect smallest-first.
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<u32> = lists[0].clone();
        for list in &lists[1..] {
            acc = intersect_sorted(&acc, list);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Sorted union of holder peers over `objects`.
    pub fn holders_of(&self, objects: &[u32]) -> Vec<u32> {
        let mut peers: Vec<u32> = objects
            .iter()
            .flat_map(|&o| self.placement.holders(o).iter().copied())
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// True if `peer` holds an object matching all `terms`.
    ///
    /// `matching` must be the sorted output of [`Self::matching_objects`]
    /// for the same terms (precomputed once per query).
    pub fn peer_answers(&self, peer: u32, matching: &[u32]) -> bool {
        intersects_sorted(&self.peer_contents[peer as usize], matching)
    }

    /// Term ids present in a peer's content, with local occurrence counts.
    pub fn peer_term_counts(&self, peer: u32) -> FxHashMap<u32, u32> {
        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        for &obj in &self.peer_contents[peer as usize] {
            for &t in &self.object_terms[obj as usize] {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Samples one query from the workload model: an anchor term drawn
    /// from the query-popularity Zipf, an object containing it, and up to
    /// `max_extra_terms` additional terms from that object (so the query
    /// is satisfiable whenever the anchor term exists in the corpus).
    pub fn sample_query(&self, rng: &mut Pcg64) -> QuerySpec {
        let source = rng.index(self.num_peers()) as u32;
        let anchor_rank = self.query_zipf.sample_index(rng);
        let anchor = self.query_ranking[anchor_rank];
        let mut terms = vec![anchor];
        if let Some(posting) = self.postings.get(&anchor) {
            let obj = posting[rng.index(posting.len())];
            let extra = rng.index(self.max_extra_terms + 1);
            let obj_terms = &self.object_terms[obj as usize];
            for _ in 0..extra {
                let t = obj_terms[rng.index(obj_terms.len())];
                if !terms.contains(&t) {
                    terms.push(t);
                }
            }
        }
        terms.sort_unstable();
        terms.dedup();
        QuerySpec { terms, source }
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn intersects_sorted(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 400,
            num_objects: 3_000,
            num_terms: 4_000,
            head_size: 80,
            seed: 99,
            ..Default::default()
        })
    }

    #[test]
    fn world_shapes_are_consistent() {
        let w = tiny_world();
        assert_eq!(w.num_peers(), 400);
        assert_eq!(w.num_objects(), 3_000);
        assert_eq!(w.peer_contents.len(), 400);
        // Every placed object appears in its holders' content lists.
        for obj in 0..100u32 {
            for &peer in w.placement.holders(obj) {
                assert!(w.peer_contents[peer as usize].binary_search(&obj).is_ok());
            }
        }
    }

    #[test]
    fn postings_invert_object_terms() {
        let w = tiny_world();
        for obj in 0..200u32 {
            for &t in &w.object_terms[obj as usize] {
                assert!(w.postings[&t].binary_search(&obj).is_ok());
            }
        }
    }

    #[test]
    fn matching_objects_respects_and_semantics() {
        let w = tiny_world();
        let terms = w.object_terms[7].clone();
        let matches = w.matching_objects(&terms);
        assert!(matches.contains(&7));
        for &m in &matches {
            let mt = &w.object_terms[m as usize];
            assert!(terms.iter().all(|t| mt.binary_search(t).is_ok()));
        }
    }

    #[test]
    fn matching_unknown_term_is_empty() {
        let w = tiny_world();
        assert!(w.matching_objects(&[3_999_999]).is_empty());
        assert!(w.matching_objects(&[]).is_empty());
    }

    #[test]
    fn peer_answers_agrees_with_holders() {
        let w = tiny_world();
        let terms = w.object_terms[3].clone();
        let matching = w.matching_objects(&terms);
        let holders = w.holders_of(&matching);
        for peer in 0..400u32 {
            assert_eq!(
                w.peer_answers(peer, &matching),
                holders.binary_search(&peer).is_ok()
            );
        }
    }

    #[test]
    fn sampled_queries_are_mostly_satisfiable() {
        let w = tiny_world();
        let mut rng = Pcg64::new(1);
        let mut satisfiable = 0;
        let n = 500;
        for _ in 0..n {
            let q = w.sample_query(&mut rng);
            assert!(!q.terms.is_empty());
            assert!((q.source as usize) < w.num_peers());
            if !w.matching_objects(&q.terms).is_empty() {
                satisfiable += 1;
            }
        }
        // Anchor+own-object construction keeps a query satisfiable except
        // when the anchor term never occurs in the corpus — which the
        // query/file mismatch makes genuinely common (the paper's point).
        let frac = satisfiable as f64 / n as f64;
        assert!((0.4..0.95).contains(&frac), "satisfiable {satisfiable}/{n}");
    }

    #[test]
    fn query_ranking_is_permutation() {
        let w = tiny_world();
        let mut r = w.query_ranking.clone();
        r.sort_unstable();
        r.dedup();
        assert_eq!(r.len(), 4_000);
    }

    #[test]
    fn deterministic_generation() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.object_terms[55], b.object_terms[55]);
        assert_eq!(a.query_ranking[..10], b.query_ranking[..10]);
    }
}
