//! Hybrid flood + DHT search (Loo et al., IPTPS'04 — the paper's ref [5]).
//!
//! The hybrid strategy: flood with a small TTL first (cheap for popular
//! content); if the flood returns fewer than `rare_threshold` results the
//! query is deemed *rare* and re-issued over the structured overlay, whose
//! global inverted index always finds published content in `O(log n)` hops
//! per term.
//!
//! The paper's §V claim, which `repro table3` reproduces: under the real
//! (Zipf) replica distribution almost every query is "rare", so the hybrid
//! pays the flood *and* the DHT cost and ends up strictly worse than a
//! pure DHT. The [`DhtOnlySearch`] baseline makes that comparison direct.

#[cfg(any(test, doc))]
use crate::spec::SearchSpec;
use crate::systems::{
    reject_admission, FaultContext, MaintenanceSchedule, OverloadStats, SearchOutcome, SearchSystem,
};
use crate::world::{QuerySpec, SearchWorld};
use qcp_dht::{ChordNetwork, DhtIndex};
use qcp_faults::{CapacityPlan, FaultStats};
use qcp_obs::{Counter, Event, Kernel, NoopRecorder, Recorder};
use qcp_overlay::flood::{FloodEngine, FloodSpec};
use qcp_overlay::{event_flood_rec, OverloadEngine, OverloadOutcome};
use qcp_util::hash::mix64;
use qcp_util::rng::Pcg64;
use qcp_vtime::Deadline;

/// Ring key for a world term id.
#[inline]
fn term_key(term: u32) -> u64 {
    mix64(term as u64 ^ 0xd47_0000_7e21)
}

/// Domain tag deriving the DHT-phase nonce from a query's fault nonce.
/// The synchronous fallback and the deadline fallback share it
/// *deliberately*: both paths must address the same per-query fault
/// stream, or a generous deadline could not reproduce the synchronous
/// outcome (pinned by `spec::deadline_tests`).
const DHT_PHASE_TAG: u64 = 0xd47;

/// Builds the global DHT index for a world: every object published under
/// every one of its terms, from one of its holders.
fn build_index(world: &SearchWorld, net: &ChordNetwork) -> DhtIndex {
    let mut index = DhtIndex::new(net);
    for obj in 0..world.num_objects() as u32 {
        let holders = world.placement.holders(obj);
        if holders.is_empty() {
            continue;
        }
        let publisher = holders[0];
        for &t in &world.object_terms[obj as usize] {
            index.publish_key(net, publisher, term_key(t), obj);
        }
    }
    index
}

/// Records one completed structured lookup (record-after style: the
/// lookup's own accounting is the source of truth, the recorder only
/// mirrors it, so recording cannot perturb the lookup).
fn record_lookup<R: Recorder>(rec: &mut R, messages: u64, hops: u32, success: bool) {
    rec.rec_span(Kernel::ChordLookup);
    rec.rec_count(Kernel::ChordLookup, Counter::Messages, messages);
    rec.rec_hop(Kernel::ChordLookup, hops, 1);
    rec.rec_event(
        Kernel::ChordLookup,
        if success { Event::Hit } else { Event::Miss },
    );
}

/// Flood-then-DHT hybrid search.
///
/// Generic over an instrumentation [`Recorder`] (default
/// [`NoopRecorder`], which compiles recording away): the flood phase
/// records in-kernel under [`Kernel::Flood`]; the structured fallback
/// and repair passes record after the fact under
/// [`Kernel::ChordLookup`] / [`Kernel::Repair`].
#[derive(Debug)]
pub struct HybridSearch<R: Recorder = NoopRecorder> {
    /// Unstructured phase TTL.
    pub flood_ttl: u32,
    /// Result-count threshold below which the query is "rare".
    pub rare_threshold: u32,
    net: ChordNetwork,
    index: DhtIndex,
    engine: FloodEngine,
    overload: OverloadEngine,
    forwarders: Vec<bool>,
    faults: Option<FaultContext>,
    maintenance: Option<MaintenanceSchedule>,
    deadline: Option<Deadline>,
    capacity: Option<CapacityPlan>,
    repair_messages: u64,
    recorder: R,
    /// Queries that fell back to the DHT (for reports).
    pub fallbacks: u64,
    /// Total queries served.
    pub queries: u64,
}

impl<R: Recorder> HybridSearch<R> {
    /// Builder-internal constructor (see [`SearchSpec::hybrid`]). The
    /// parameter list mirrors the spec's fields one-to-one; callers go
    /// through the builder, never this signature.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        world: &SearchWorld,
        flood_ttl: u32,
        rare_threshold: u32,
        seed: u64,
        faults: Option<FaultContext>,
        deadline: Option<Deadline>,
        capacity: Option<CapacityPlan>,
        recorder: R,
    ) -> Self {
        let net = ChordNetwork::new(world.num_peers(), seed ^ 0xcd);
        let index = build_index(world, &net);
        Self {
            flood_ttl,
            rare_threshold,
            net,
            index,
            engine: FloodEngine::new(world.num_peers()),
            overload: OverloadEngine::new(),
            forwarders: world.topology.forwarders(),
            faults,
            maintenance: None,
            deadline,
            capacity,
            repair_messages: 0,
            recorder,
            fallbacks: 0,
            queries: 0,
        }
    }

    /// The recorder this system has been writing into.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the system, returning its recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Attaches a maintenance schedule: before every `schedule`-th query
    /// the index re-replicates posting lists stranded on departed owners
    /// (against the plan's alive mask at that query's tick), so stale
    /// misses decay mid-workload. Only meaningful together with
    /// [`Self::with_faults`]; without a fault context every node is
    /// alive and the pass is a free no-op.
    pub fn with_maintenance(mut self, schedule: MaintenanceSchedule) -> Self {
        self.maintenance = Some(schedule);
        self
    }

    /// Maintenance passes fired so far (0 without a schedule).
    pub fn maintenance_passes(&self) -> u64 {
        self.maintenance.as_ref().map_or(0, |m| m.passes)
    }

    /// Fraction of queries that needed the structured fallback.
    pub fn fallback_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.fallbacks as f64 / self.queries as f64
    }

    /// The faulty query path (see [`Self::with_faults`]).
    fn search_faulty(&mut self, world: &SearchWorld, query: &QuerySpec) -> SearchOutcome {
        // qcplint: allow(panic) — only called when `faults` is set.
        let ctx = self.faults.as_mut().expect("faulty path requires context");
        let (time, nonce) = ctx.next_query();
        // The repair daemon runs on the query clock, independent of the
        // issuer: stranded posting lists move to their first alive
        // successor, so later lookups stop missing stale.
        if let Some(sched) = &mut self.maintenance {
            if sched.due() {
                let alive = ctx.plan.alive_mask_at(time);
                let (_, messages) = self.index.re_replicate(&self.net, &alive);
                self.repair_messages += messages;
                self.recorder.rec_span(Kernel::Repair);
                self.recorder
                    .rec_count(Kernel::Repair, Counter::Messages, messages);
            }
        }
        if !ctx.plan.alive_at(query.source, time) {
            // A departed peer issues nothing.
            self.recorder.rec_span(Kernel::Flood);
            self.recorder.rec_event(Kernel::Flood, Event::DeadSource);
            return SearchOutcome {
                success: false,
                messages: 0,
                hops: None,
                faults: FaultStats::default(),
                elapsed: 0,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        let matching = world.matching_objects(&query.terms);
        let holders = world.holders_of(&matching);
        // Unified flood entry: the census at `flood_ttl` reconstructs
        // the legacy `flood_faulty` call bitwise (BFS prefix property).
        let spec = FloodSpec::new(self.flood_ttl).faulty(&ctx.plan, time, nonce);
        let (census, level_stats) = self.engine.run(
            &world.topology.graph,
            query.source,
            &holders,
            Some(&self.forwarders),
            &spec,
            &mut self.recorder,
        );
        let flood = census.at(self.flood_ttl);
        let mut stats = level_stats[self.flood_ttl.min(census.levels()) as usize];
        let hits = self.engine.hits_in_last_flood(&holders);
        if hits >= self.rare_threshold {
            return SearchOutcome {
                success: true,
                messages: flood.messages,
                hops: flood.found_at_hop,
                faults: stats,
                elapsed: stats.ticks,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        // Rare query: re-issue over the DHT with retry/backoff per hop.
        self.fallbacks += 1;
        let keys: Vec<u64> = query.terms.iter().map(|&t| term_key(t)).collect();
        let (dht, dht_stats) = self.index.query_keys_faulty(
            &self.net,
            query.source,
            &keys,
            &ctx.plan,
            &ctx.policy,
            time,
            mix64(nonce ^ DHT_PHASE_TAG),
        );
        stats.absorb(&dht_stats);
        self.recorder.rec_span(Kernel::ChordLookup);
        self.recorder
            .rec_event(Kernel::ChordLookup, Event::Fallback);
        self.recorder
            .rec_count(Kernel::ChordLookup, Counter::Messages, dht.messages);
        self.recorder.rec_hop(Kernel::ChordLookup, dht.hops, 1);
        self.recorder.rec_faults(Kernel::ChordLookup, &dht_stats);
        SearchOutcome {
            success: flood.found || !dht.results.is_empty(),
            messages: flood.messages + dht.messages,
            hops: flood.found_at_hop.or(Some(dht.hops)),
            faults: stats,
            elapsed: stats.ticks,
            deadline_exceeded: false,
            overload: OverloadStats::default(),
        }
    }

    /// The deadline query path: an event-driven flood phase cut off at
    /// the deadline, then — for rare queries — the timed DHT fallback
    /// against whatever budget the flood left. A query that runs out of
    /// time degrades to its best-so-far answer: the flood's hit if it
    /// had one, or the DHT's partial intersection, with
    /// `deadline_exceeded` marking that the clock ended the search.
    fn search_deadline(
        &mut self,
        world: &SearchWorld,
        query: &QuerySpec,
        deadline: Deadline,
    ) -> SearchOutcome {
        // qcplint: allow(panic) — build() rejects deadline sans faults.
        let ctx = self.faults.as_mut().expect("deadline requires faults");
        let (time, nonce) = ctx.next_query();
        if let Some(sched) = &mut self.maintenance {
            if sched.due() {
                let alive = ctx.plan.alive_mask_at(time);
                let (_, messages) = self.index.re_replicate(&self.net, &alive);
                self.repair_messages += messages;
                self.recorder.rec_span(Kernel::Repair);
                self.recorder
                    .rec_count(Kernel::Repair, Counter::Messages, messages);
            }
        }
        if let Some(cap) = &self.capacity {
            // Ingress admission control: a refused query pays nothing
            // and skips both phases.
            if !cap.admit(query.source, nonce) {
                return reject_admission(Kernel::Flood, &mut self.recorder);
            }
        }
        if !ctx.plan.alive_at(query.source, time) {
            self.recorder.rec_span(Kernel::Flood);
            self.recorder.rec_event(Kernel::Flood, Event::DeadSource);
            return SearchOutcome {
                success: false,
                messages: 0,
                hops: None,
                faults: FaultStats::default(),
                elapsed: 0,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        let matching = world.matching_objects(&query.terms);
        let holders = world.holders_of(&matching);
        // The flood phase alone is capacity-bound; the structured
        // fallback models provisioned infrastructure and keeps its
        // retry/timeout semantics.
        let (flood, mut stats, over) = match &self.capacity {
            Some(cap) => self.overload.flood_rec(
                &world.topology.graph,
                query.source,
                self.flood_ttl,
                &holders,
                Some(&self.forwarders),
                &ctx.plan,
                cap,
                time,
                nonce,
                Some(deadline.ticks),
                &mut self.recorder,
            ),
            None => {
                let (flood, stats) = event_flood_rec(
                    &world.topology.graph,
                    query.source,
                    self.flood_ttl,
                    &holders,
                    Some(&self.forwarders),
                    &ctx.plan,
                    time,
                    nonce,
                    Some(deadline.ticks),
                    &mut self.recorder,
                );
                (flood, stats, OverloadOutcome::default())
            }
        };
        let overload = OverloadStats::from_outcome(&over);
        if overload.overloaded {
            self.recorder.rec_event(Kernel::Flood, Event::Overloaded);
        }
        if flood.holders_reached >= self.rare_threshold {
            let exceeded = flood.truncated && !flood.flood.found;
            if exceeded {
                self.recorder
                    .rec_event(Kernel::Flood, Event::DeadlineExceeded);
            }
            return SearchOutcome {
                success: true,
                messages: flood.flood.messages,
                hops: flood.flood.found_at_hop,
                faults: stats,
                elapsed: flood.first_hit_time.unwrap_or(flood.completion_time),
                deadline_exceeded: exceeded,
                overload,
            };
        }
        // Rare query: the timed DHT phase starts when the flood drains
        // (or is cut off) and inherits only the remaining budget.
        self.fallbacks += 1;
        let keys: Vec<u64> = query.terms.iter().map(|&t| term_key(t)).collect();
        let budget = deadline.ticks.saturating_sub(flood.completion_time);
        let (dht, dht_stats) = self.index.query_keys_timed(
            &self.net,
            query.source,
            &keys,
            &ctx.plan,
            &ctx.policy,
            time,
            mix64(nonce ^ DHT_PHASE_TAG),
            Some(budget),
        );
        stats.absorb(&dht_stats);
        let success = flood.flood.found || !dht.results.is_empty();
        let elapsed = if flood.flood.found {
            // qcplint: allow(panic) — `found` implies a hit time.
            flood.first_hit_time.expect("flood hit carries a time")
        } else {
            flood.completion_time + dht.elapsed
        };
        self.recorder.rec_span(Kernel::ChordLookup);
        self.recorder
            .rec_event(Kernel::ChordLookup, Event::Fallback);
        self.recorder
            .rec_count(Kernel::ChordLookup, Counter::Messages, dht.messages);
        self.recorder.rec_hop(Kernel::ChordLookup, dht.hops, 1);
        self.recorder.rec_faults(Kernel::ChordLookup, &dht_stats);
        if success && !flood.flood.found {
            self.recorder.rec_time(Kernel::ChordLookup, elapsed, 1);
        }
        if dht.deadline_exceeded {
            self.recorder
                .rec_event(Kernel::ChordLookup, Event::DeadlineExceeded);
        }
        SearchOutcome {
            success,
            messages: flood.flood.messages + dht.messages,
            hops: flood.flood.found_at_hop.or(Some(dht.hops)),
            faults: stats,
            elapsed,
            deadline_exceeded: dht.deadline_exceeded,
            overload,
        }
    }
}

impl<R: Recorder> SearchSystem for HybridSearch<R> {
    fn name(&self) -> String {
        format!(
            "hybrid(ttl={},rare<{})",
            self.flood_ttl, self.rare_threshold
        )
    }

    fn search(
        &mut self,
        world: &SearchWorld,
        query: &QuerySpec,
        _rng: &mut Pcg64,
    ) -> SearchOutcome {
        self.queries += 1;
        if let Some(deadline) = self.deadline {
            return self.search_deadline(world, query, deadline);
        }
        if self.faults.is_some() {
            return self.search_faulty(world, query);
        }
        let matching = world.matching_objects(&query.terms);
        let holders = world.holders_of(&matching);
        let spec = FloodSpec::new(self.flood_ttl);
        let (census, _) = self.engine.run(
            &world.topology.graph,
            query.source,
            &holders,
            Some(&self.forwarders),
            &spec,
            &mut self.recorder,
        );
        let flood = census.at(self.flood_ttl);
        let hits = self.engine.hits_in_last_flood(&holders);
        if hits >= self.rare_threshold {
            return SearchOutcome {
                success: true,
                messages: flood.messages,
                hops: flood.found_at_hop,
                faults: FaultStats::default(),
                elapsed: 0,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        // Rare query: re-issue over the DHT.
        self.fallbacks += 1;
        let keys: Vec<u64> = query.terms.iter().map(|&t| term_key(t)).collect();
        let dht = self.index.query_keys(&self.net, query.source, &keys);
        self.recorder.rec_span(Kernel::ChordLookup);
        self.recorder
            .rec_event(Kernel::ChordLookup, Event::Fallback);
        self.recorder
            .rec_count(Kernel::ChordLookup, Counter::Messages, dht.messages);
        self.recorder.rec_hop(Kernel::ChordLookup, dht.hops, 1);
        SearchOutcome {
            success: flood.found || !dht.results.is_empty(),
            messages: flood.messages + dht.messages,
            hops: flood.found_at_hop.or(Some(dht.hops)),
            faults: FaultStats::default(),
            elapsed: 0,
            deadline_exceeded: false,
            overload: OverloadStats::default(),
        }
    }

    fn maintenance_messages(&self) -> u64 {
        self.index.publish_hops() + self.repair_messages
    }
}

/// Pure structured search: every query goes straight to the DHT index.
///
/// Generic over an instrumentation [`Recorder`] (default
/// [`NoopRecorder`]); lookups record after the fact under
/// [`Kernel::ChordLookup`], repair passes under [`Kernel::Repair`].
#[derive(Debug)]
pub struct DhtOnlySearch<R: Recorder = NoopRecorder> {
    net: ChordNetwork,
    index: DhtIndex,
    faults: Option<FaultContext>,
    maintenance: Option<MaintenanceSchedule>,
    deadline: Option<Deadline>,
    capacity: Option<CapacityPlan>,
    repair_messages: u64,
    recorder: R,
}

impl<R: Recorder> DhtOnlySearch<R> {
    /// Builder-internal constructor (see [`SearchSpec::dht_only`]).
    pub(crate) fn assemble(
        world: &SearchWorld,
        seed: u64,
        faults: Option<FaultContext>,
        deadline: Option<Deadline>,
        capacity: Option<CapacityPlan>,
        recorder: R,
    ) -> Self {
        let net = ChordNetwork::new(world.num_peers(), seed ^ 0xcd);
        let index = build_index(world, &net);
        Self {
            net,
            index,
            faults,
            maintenance: None,
            deadline,
            capacity,
            repair_messages: 0,
            recorder,
        }
    }

    /// The recorder this system has been writing into.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the system, returning its recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Attaches a maintenance schedule (see
    /// [`HybridSearch::with_maintenance`]): the index heals mid-workload
    /// by re-replicating orphaned posting lists every `schedule`-th query.
    pub fn with_maintenance(mut self, schedule: MaintenanceSchedule) -> Self {
        self.maintenance = Some(schedule);
        self
    }

    /// Maintenance passes fired so far (0 without a schedule).
    pub fn maintenance_passes(&self) -> u64 {
        self.maintenance.as_ref().map_or(0, |m| m.passes)
    }
}

impl<R: Recorder> SearchSystem for DhtOnlySearch<R> {
    fn name(&self) -> String {
        "dht-only".to_string()
    }

    fn search(
        &mut self,
        world: &SearchWorld,
        query: &QuerySpec,
        _rng: &mut Pcg64,
    ) -> SearchOutcome {
        let _ = world;
        let keys: Vec<u64> = query.terms.iter().map(|&t| term_key(t)).collect();
        if let Some(ctx) = &mut self.faults {
            let (time, nonce) = ctx.next_query();
            if let Some(sched) = &mut self.maintenance {
                if sched.due() {
                    let alive = ctx.plan.alive_mask_at(time);
                    let (_, messages) = self.index.re_replicate(&self.net, &alive);
                    self.repair_messages += messages;
                    self.recorder.rec_span(Kernel::Repair);
                    self.recorder
                        .rec_count(Kernel::Repair, Counter::Messages, messages);
                }
            }
            if let Some(deadline) = self.deadline {
                // The DHT is provisioned infrastructure: no queueing
                // model, but the ingress admission gate still applies.
                if let Some(cap) = &self.capacity {
                    if !cap.admit(query.source, nonce) {
                        return reject_admission(Kernel::ChordLookup, &mut self.recorder);
                    }
                }
                // Deadline path: per-hop timeout expiry on the event
                // calendar, degrading to a partial (per-term best-so-far)
                // intersection when the budget runs out.
                let (out, stats) = self.index.query_keys_timed(
                    &self.net,
                    query.source,
                    &keys,
                    &ctx.plan,
                    &ctx.policy,
                    time,
                    nonce,
                    Some(deadline.ticks),
                );
                let success = !out.results.is_empty();
                record_lookup(&mut self.recorder, out.messages, out.hops, success);
                self.recorder.rec_faults(Kernel::ChordLookup, &stats);
                if success {
                    self.recorder.rec_time(Kernel::ChordLookup, out.elapsed, 1);
                }
                if out.deadline_exceeded {
                    self.recorder
                        .rec_event(Kernel::ChordLookup, Event::DeadlineExceeded);
                }
                return SearchOutcome {
                    success,
                    messages: out.messages,
                    hops: Some(out.hops),
                    faults: stats,
                    elapsed: out.elapsed,
                    deadline_exceeded: out.deadline_exceeded,
                    overload: OverloadStats::default(),
                };
            }
            let (out, stats) = self.index.query_keys_faulty(
                &self.net,
                query.source,
                &keys,
                &ctx.plan,
                &ctx.policy,
                time,
                nonce,
            );
            let success = !out.results.is_empty();
            record_lookup(&mut self.recorder, out.messages, out.hops, success);
            self.recorder.rec_faults(Kernel::ChordLookup, &stats);
            return SearchOutcome {
                success,
                messages: out.messages,
                hops: Some(out.hops),
                faults: stats,
                elapsed: stats.ticks,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        let out = self.index.query_keys(&self.net, query.source, &keys);
        let success = !out.results.is_empty();
        record_lookup(&mut self.recorder, out.messages, out.hops, success);
        SearchOutcome {
            success,
            messages: out.messages,
            hops: Some(out.hops),
            faults: FaultStats::default(),
            elapsed: 0,
            deadline_exceeded: false,
            overload: OverloadStats::default(),
        }
    }

    fn maintenance_messages(&self) -> u64 {
        self.index.publish_hops() + self.repair_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 500,
            num_objects: 4_000,
            num_terms: 5_000,
            head_size: 100,
            seed: 55,
            ..Default::default()
        })
    }

    #[test]
    fn dht_only_always_finds_published_content() {
        let w = world();
        let mut dht = SearchSpec::dht_only(1).build(&w).into_dht_only();
        let mut rng = Pcg64::new(2);
        for obj in [3u32, 77, 512] {
            let q = QuerySpec {
                terms: w.object_terms[obj as usize].clone(),
                source: 9,
            };
            let out = dht.search(&w, &q, &mut rng);
            assert!(out.success, "object {obj} must be findable via DHT");
        }
    }

    #[test]
    fn dht_only_fails_cleanly_for_absent_terms() {
        let w = world();
        let mut dht = SearchSpec::dht_only(1).build(&w).into_dht_only();
        let mut rng = Pcg64::new(3);
        let out = dht.search(
            &w,
            &QuerySpec {
                terms: vec![4_999_999],
                source: 0,
            },
            &mut rng,
        );
        assert!(!out.success);
    }

    #[test]
    fn hybrid_succeeds_via_fallback_for_rare_objects() {
        let w = world();
        // Find a singleton object (rare by construction under Zipf).
        let rare_obj = (0..w.num_objects() as u32)
            .find(|&o| w.placement.replicas(o) == 1)
            .expect("zipf placement has singletons");
        let mut hybrid = SearchSpec::hybrid(2, 5, 4).build(&w).into_hybrid();
        let mut rng = Pcg64::new(5);
        let q = QuerySpec {
            terms: w.object_terms[rare_obj as usize].clone(),
            source: 0,
        };
        let out = hybrid.search(&w, &q, &mut rng);
        assert!(out.success, "hybrid must find rare content via the DHT");
        assert_eq!(hybrid.fallbacks, 1);
    }

    #[test]
    fn hybrid_pays_more_than_dht_when_floods_fail() {
        let w = world();
        let mut hybrid = SearchSpec::hybrid(3, 20, 6).build(&w).into_hybrid();
        let mut dht = SearchSpec::dht_only(6).build(&w).into_dht_only();
        let mut rng = Pcg64::new(7);
        let queries: Vec<QuerySpec> = (0..150).map(|_| w.sample_query(&mut rng)).collect();
        let mut hybrid_msgs = 0u64;
        let mut dht_msgs = 0u64;
        for q in &queries {
            hybrid_msgs += hybrid.search(&w, q, &mut rng).messages;
            dht_msgs += dht.search(&w, q, &mut rng).messages;
        }
        // Under Zipf replicas + Loo's threshold, nearly every query falls
        // back: hybrid cost strictly dominates pure DHT (the paper's §V).
        assert!(
            hybrid.fallback_rate() > 0.8,
            "fallback {}",
            hybrid.fallback_rate()
        );
        assert!(
            hybrid_msgs > dht_msgs,
            "hybrid {hybrid_msgs} must exceed dht {dht_msgs}"
        );
    }

    #[test]
    fn well_replicated_query_avoids_fallback() {
        let w = world();
        // Most-replicated object.
        let popular = (0..w.num_objects() as u32)
            .max_by_key(|&o| w.placement.replicas(o))
            .unwrap();
        assert!(w.placement.replicas(popular) >= 10, "need a popular object");
        let mut hybrid = SearchSpec::hybrid(4, 3, 8).build(&w).into_hybrid();
        let mut rng = Pcg64::new(9);
        let q = QuerySpec {
            terms: w.object_terms[popular as usize].clone(),
            source: 1,
        };
        let out = hybrid.search(&w, &q, &mut rng);
        assert!(out.success);
        assert_eq!(
            hybrid.fallbacks, 0,
            "popular content should resolve in the flood phase"
        );
    }

    #[test]
    fn maintenance_cost_reported() {
        let w = world();
        let hybrid = SearchSpec::hybrid(2, 10, 10).build(&w).into_hybrid();
        assert!(hybrid.maintenance_messages() > 0);
    }
}

#[cfg(test)]
mod faulty_tests {
    use super::*;
    use crate::world::WorldConfig;
    use qcp_faults::{FaultConfig, FaultPlan, RetryPolicy};

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 500,
            num_objects: 4_000,
            num_terms: 5_000,
            head_size: 100,
            seed: 55,
            ..Default::default()
        })
    }

    fn ctx(n: usize, loss: f64, churn: f64, seed: u64) -> FaultContext {
        FaultContext::new(
            FaultPlan::build(
                n,
                &FaultConfig {
                    loss,
                    churn,
                    seed,
                    ..Default::default()
                },
            ),
            RetryPolicy::default(),
            seed ^ 0x0c7e,
        )
    }

    /// Runs `queries` through a system, returning (success rate, stats).
    fn run(
        sys: &mut dyn SearchSystem,
        w: &SearchWorld,
        queries: &[QuerySpec],
    ) -> (f64, FaultStats) {
        let mut rng = Pcg64::new(77);
        let mut hits = 0usize;
        let mut stats = FaultStats::default();
        for q in queries {
            let out = sys.search(w, q, &mut rng);
            hits += out.success as usize;
            stats.absorb(&out.faults);
        }
        (hits as f64 / queries.len() as f64, stats)
    }

    fn queries(w: &SearchWorld, n: usize) -> Vec<QuerySpec> {
        let mut rng = Pcg64::new(13);
        (0..n).map(|_| w.sample_query(&mut rng)).collect()
    }

    #[test]
    fn none_plan_hybrid_matches_fault_free_success() {
        let w = world();
        let qs = queries(&w, 120);
        let mut plain = SearchSpec::hybrid(2, 5, 4).build(&w).into_hybrid();
        let mut faulty = SearchSpec::hybrid(2, 5, 4)
            .faults(FaultContext::new(
                FaultPlan::none(500),
                RetryPolicy::default(),
                1,
            ))
            .build(&w)
            .into_hybrid();
        let mut rng = Pcg64::new(9);
        for q in &qs {
            let a = plain.search(&w, q, &mut rng);
            let b = faulty.search(&w, q, &mut rng);
            assert_eq!(a.success, b.success, "none plan must not change outcomes");
            // Latency ticks are charged even without faults; everything
            // else must be zero.
            assert_eq!(b.faults.wasted(), 0);
            assert_eq!(b.faults.retries, 0);
            assert_eq!(b.faults.timeouts, 0);
            assert_eq!(b.faults.stale_misses, 0);
        }
        assert_eq!(plain.fallbacks, faulty.fallbacks);
    }

    #[test]
    fn hybrid_success_falls_monotonically_with_loss() {
        let w = world();
        let qs = queries(&w, 200);
        let mut rates = Vec::new();
        for loss in [0.0f64, 0.25, 0.6] {
            let mut sys = SearchSpec::hybrid(2, 5, 4)
                .faults(ctx(500, loss, 0.0, 21))
                .build(&w)
                .into_hybrid();
            rates.push(run(&mut sys, &w, &qs).0);
        }
        for wnd in rates.windows(2) {
            assert!(
                wnd[1] <= wnd[0] + 0.03,
                "success must fall (within noise) as loss rises: {rates:?}"
            );
        }
        assert!(
            rates[2] < rates[0] - 0.05,
            "60% loss must visibly hurt: {rates:?}"
        );
    }

    #[test]
    fn hybrid_success_falls_monotonically_with_churn() {
        let w = world();
        let qs = queries(&w, 200);
        let mut rates = Vec::new();
        for churn in [0.0f64, 0.25, 0.6] {
            let mut sys = SearchSpec::hybrid(2, 5, 4)
                .faults(ctx(500, 0.0, churn, 22))
                .build(&w)
                .into_hybrid();
            rates.push(run(&mut sys, &w, &qs).0);
        }
        for wnd in rates.windows(2) {
            assert!(
                wnd[1] <= wnd[0] + 0.03,
                "success must fall (within noise) as churn rises: {rates:?}"
            );
        }
        assert!(
            rates[2] < rates[0] - 0.05,
            "60% churn must visibly hurt: {rates:?}"
        );
    }

    #[test]
    fn hybrid_counters_respect_the_accounting_identities() {
        let w = world();
        let qs = queries(&w, 150);
        let mut sys = SearchSpec::hybrid(2, 5, 4)
            .faults(ctx(500, 0.3, 0.2, 23))
            .build(&w)
            .into_hybrid();
        let (_, stats) = run(&mut sys, &w, &qs);
        assert!(stats.dropped > 0, "30% loss must drop");
        assert!(stats.retries > 0, "DHT fallback must retry");
        assert!(stats.timeouts > 0, "some retry budgets must exhaust");
        assert_eq!(stats.wasted(), stats.dropped + stats.dead_targets);
        // The flood phase is fire-and-forget (drops never retried); the
        // DHT phase retries every drop. So across the hybrid:
        assert!(
            stats.retries + stats.timeouts <= stats.dropped,
            "only the DHT share of drops is retried: {stats:?}"
        );
        assert!(stats.ticks > 0, "timeouts and latency must consume time");
    }

    #[test]
    fn dht_only_drops_are_all_retried_or_timed_out() {
        let w = world();
        let qs = queries(&w, 120);
        let mut sys = SearchSpec::dht_only(6)
            .faults(ctx(500, 0.3, 0.0, 24))
            .build(&w)
            .into_dht_only();
        let (rate, stats) = run(&mut sys, &w, &qs);
        assert!(stats.dropped > 0);
        assert_eq!(
            stats.dropped,
            stats.retries + stats.timeouts,
            "request/response engine: every drop is retried or times out"
        );
        // Retries keep the DHT useful under 30% loss.
        let mut clean = SearchSpec::dht_only(6).build(&w).into_dht_only();
        let (clean_rate, _) = run(&mut clean, &w, &qs);
        assert!(rate > clean_rate * 0.5, "{rate} vs clean {clean_rate}");
    }

    #[test]
    fn stale_misses_surface_under_churn() {
        let w = world();
        let qs = queries(&w, 250);
        let mut sys = SearchSpec::dht_only(6)
            .faults(ctx(500, 0.0, 0.5, 25))
            .build(&w)
            .into_dht_only();
        let (_, stats) = run(&mut sys, &w, &qs);
        assert!(
            stats.stale_misses > 0,
            "50% churn strands postings on departed owners: {stats:?}"
        );
    }

    #[test]
    fn maintenance_heals_the_index_mid_workload() {
        let w = world();
        let qs = queries(&w, 300);
        // Same plan both times: churn strands postings; only one system
        // runs the repair daemon.
        let mut plain = SearchSpec::dht_only(6)
            .faults(ctx(500, 0.0, 0.5, 25))
            .build(&w)
            .into_dht_only();
        let mut healed = SearchSpec::dht_only(6)
            .faults(ctx(500, 0.0, 0.5, 25))
            .maintenance(crate::systems::MaintenanceSchedule::every(20))
            .build(&w)
            .into_dht_only();
        let (rate_plain, stats_plain) = run(&mut plain, &w, &qs);
        let (rate_healed, stats_healed) = run(&mut healed, &w, &qs);
        assert!(stats_plain.stale_misses > 0, "churn must strand postings");
        assert!(
            stats_healed.stale_misses < stats_plain.stale_misses,
            "re-replication must decay stale misses: {} vs {}",
            stats_healed.stale_misses,
            stats_plain.stale_misses
        );
        assert!(
            rate_healed >= rate_plain,
            "healing cannot hurt success: {rate_healed} vs {rate_plain}"
        );
        assert_eq!(healed.maintenance_passes(), (qs.len() as u64 - 1) / 20);
        assert!(
            healed.maintenance_messages() > plain.maintenance_messages(),
            "repair transfers are accounted as maintenance cost"
        );
    }

    #[test]
    fn hybrid_accepts_a_maintenance_schedule() {
        let w = world();
        let qs = queries(&w, 200);
        let mut sys = SearchSpec::hybrid(2, 5, 4)
            .faults(ctx(500, 0.0, 0.5, 27))
            .maintenance(crate::systems::MaintenanceSchedule::every(25))
            .build(&w)
            .into_hybrid();
        let publish_cost = sys.maintenance_messages();
        let (_, stats) = run(&mut sys, &w, &qs);
        assert!(sys.maintenance_passes() > 0);
        assert!(
            sys.maintenance_messages() > publish_cost,
            "passes under churn must move at least one list"
        );
        // Zero loss: nothing is dropped, so nothing retries or times out —
        // the daemon adds no fault noise of its own.
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.retries + stats.timeouts, 0);
    }

    #[test]
    fn maintenance_under_none_plan_is_inert() {
        let w = world();
        let qs = queries(&w, 80);
        let none = || FaultContext::new(FaultPlan::none(500), RetryPolicy::default(), 1);
        let mut bare = SearchSpec::dht_only(9)
            .faults(none())
            .build(&w)
            .into_dht_only();
        let mut scheduled = SearchSpec::dht_only(9)
            .faults(none())
            .maintenance(crate::systems::MaintenanceSchedule::every(10))
            .build(&w)
            .into_dht_only();
        let mut rng = Pcg64::new(31);
        for q in &qs {
            let a = bare.search(&w, q, &mut rng);
            let b = scheduled.search(&w, q, &mut rng);
            assert_eq!(a, b, "all-alive maintenance must be a perfect no-op");
        }
        assert_eq!(
            bare.maintenance_messages(),
            scheduled.maintenance_messages()
        );
        assert!(scheduled.maintenance_passes() > 0, "schedule still fires");
    }

    #[test]
    #[should_panic(expected = "maintenance period must be positive")]
    fn zero_period_schedule_rejected() {
        let _ = crate::systems::MaintenanceSchedule::every(0);
    }

    #[test]
    fn eval_rows_carry_fault_counters() {
        let w = world();
        let qs = queries(&w, 60);
        let mut faulty = SearchSpec::hybrid(2, 5, 4)
            .faults(ctx(500, 0.3, 0.2, 26))
            .build(&w)
            .into_hybrid();
        let mut plain = SearchSpec::hybrid(2, 5, 4).build(&w).into_hybrid();
        let rows = crate::eval::evaluate(
            &w,
            &mut [&mut faulty as &mut dyn SearchSystem, &mut plain],
            &qs,
            3,
        );
        assert!(rows[0].faults.wasted() > 0, "faulty row must degrade");
        assert_eq!(rows[1].faults, FaultStats::default());
    }
}
