//! Hybrid flood + DHT search (Loo et al., IPTPS'04 — the paper's ref [5]).
//!
//! The hybrid strategy: flood with a small TTL first (cheap for popular
//! content); if the flood returns fewer than `rare_threshold` results the
//! query is deemed *rare* and re-issued over the structured overlay, whose
//! global inverted index always finds published content in `O(log n)` hops
//! per term.
//!
//! The paper's §V claim, which `repro table3` reproduces: under the real
//! (Zipf) replica distribution almost every query is "rare", so the hybrid
//! pays the flood *and* the DHT cost and ends up strictly worse than a
//! pure DHT. The [`DhtOnlySearch`] baseline makes that comparison direct.

use crate::systems::{SearchOutcome, SearchSystem};
use crate::world::{QuerySpec, SearchWorld};
use qcp_dht::{ChordNetwork, DhtIndex};
use qcp_overlay::flood::FloodEngine;
use qcp_util::hash::mix64;
use qcp_util::rng::Pcg64;

/// Ring key for a world term id.
#[inline]
fn term_key(term: u32) -> u64 {
    mix64(term as u64 ^ 0xd47_0000_7e21)
}

/// Builds the global DHT index for a world: every object published under
/// every one of its terms, from one of its holders.
fn build_index(world: &SearchWorld, net: &ChordNetwork) -> DhtIndex {
    let mut index = DhtIndex::new(net);
    for obj in 0..world.num_objects() as u32 {
        let holders = world.placement.holders(obj);
        if holders.is_empty() {
            continue;
        }
        let publisher = holders[0];
        for &t in &world.object_terms[obj as usize] {
            index.publish_key(net, publisher, term_key(t), obj);
        }
    }
    index
}

/// Flood-then-DHT hybrid search.
#[derive(Debug)]
pub struct HybridSearch {
    /// Unstructured phase TTL.
    pub flood_ttl: u32,
    /// Result-count threshold below which the query is "rare".
    pub rare_threshold: u32,
    net: ChordNetwork,
    index: DhtIndex,
    engine: FloodEngine,
    forwarders: Vec<bool>,
    /// Queries that fell back to the DHT (for reports).
    pub fallbacks: u64,
    /// Total queries served.
    pub queries: u64,
}

impl HybridSearch {
    /// Creates the hybrid system: Chord ring over the same peer population
    /// plus a fully published inverted index.
    pub fn new(world: &SearchWorld, flood_ttl: u32, rare_threshold: u32, seed: u64) -> Self {
        let net = ChordNetwork::new(world.num_peers(), seed ^ 0xcd);
        let index = build_index(world, &net);
        Self {
            flood_ttl,
            rare_threshold,
            net,
            index,
            engine: FloodEngine::new(world.num_peers()),
            forwarders: world.topology.forwarders(),
            fallbacks: 0,
            queries: 0,
        }
    }

    /// Fraction of queries that needed the structured fallback.
    pub fn fallback_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.fallbacks as f64 / self.queries as f64
    }
}

impl SearchSystem for HybridSearch {
    fn name(&self) -> String {
        format!(
            "hybrid(ttl={},rare<{})",
            self.flood_ttl, self.rare_threshold
        )
    }

    fn search(
        &mut self,
        world: &SearchWorld,
        query: &QuerySpec,
        _rng: &mut Pcg64,
    ) -> SearchOutcome {
        self.queries += 1;
        let matching = world.matching_objects(&query.terms);
        let holders = world.holders_of(&matching);
        let flood = self.engine.flood(
            &world.topology.graph,
            query.source,
            self.flood_ttl,
            &holders,
            Some(&self.forwarders),
        );
        let hits = self.engine.hits_in_last_flood(&holders);
        if hits >= self.rare_threshold {
            return SearchOutcome {
                success: true,
                messages: flood.messages,
                hops: flood.found_at_hop,
            };
        }
        // Rare query: re-issue over the DHT.
        self.fallbacks += 1;
        let keys: Vec<u64> = query.terms.iter().map(|&t| term_key(t)).collect();
        let dht = self.index.query_keys(&self.net, query.source, &keys);
        SearchOutcome {
            success: flood.found || !dht.results.is_empty(),
            messages: flood.messages + dht.messages,
            hops: flood.found_at_hop.or(Some(dht.hops)),
        }
    }

    fn maintenance_messages(&self) -> u64 {
        self.index.publish_hops()
    }
}

/// Pure structured search: every query goes straight to the DHT index.
#[derive(Debug)]
pub struct DhtOnlySearch {
    net: ChordNetwork,
    index: DhtIndex,
}

impl DhtOnlySearch {
    /// Builds the ring + index.
    pub fn new(world: &SearchWorld, seed: u64) -> Self {
        let net = ChordNetwork::new(world.num_peers(), seed ^ 0xcd);
        let index = build_index(world, &net);
        Self { net, index }
    }
}

impl SearchSystem for DhtOnlySearch {
    fn name(&self) -> String {
        "dht-only".to_string()
    }

    fn search(
        &mut self,
        world: &SearchWorld,
        query: &QuerySpec,
        _rng: &mut Pcg64,
    ) -> SearchOutcome {
        let _ = world;
        let keys: Vec<u64> = query.terms.iter().map(|&t| term_key(t)).collect();
        let out = self.index.query_keys(&self.net, query.source, &keys);
        SearchOutcome {
            success: !out.results.is_empty(),
            messages: out.messages,
            hops: Some(out.hops),
        }
    }

    fn maintenance_messages(&self) -> u64 {
        self.index.publish_hops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 500,
            num_objects: 4_000,
            num_terms: 5_000,
            head_size: 100,
            seed: 55,
            ..Default::default()
        })
    }

    #[test]
    fn dht_only_always_finds_published_content() {
        let w = world();
        let mut dht = DhtOnlySearch::new(&w, 1);
        let mut rng = Pcg64::new(2);
        for obj in [3u32, 77, 512] {
            let q = QuerySpec {
                terms: w.object_terms[obj as usize].clone(),
                source: 9,
            };
            let out = dht.search(&w, &q, &mut rng);
            assert!(out.success, "object {obj} must be findable via DHT");
        }
    }

    #[test]
    fn dht_only_fails_cleanly_for_absent_terms() {
        let w = world();
        let mut dht = DhtOnlySearch::new(&w, 1);
        let mut rng = Pcg64::new(3);
        let out = dht.search(
            &w,
            &QuerySpec {
                terms: vec![4_999_999],
                source: 0,
            },
            &mut rng,
        );
        assert!(!out.success);
    }

    #[test]
    fn hybrid_succeeds_via_fallback_for_rare_objects() {
        let w = world();
        // Find a singleton object (rare by construction under Zipf).
        let rare_obj = (0..w.num_objects() as u32)
            .find(|&o| w.placement.replicas(o) == 1)
            .expect("zipf placement has singletons");
        let mut hybrid = HybridSearch::new(&w, 2, 5, 4);
        let mut rng = Pcg64::new(5);
        let q = QuerySpec {
            terms: w.object_terms[rare_obj as usize].clone(),
            source: 0,
        };
        let out = hybrid.search(&w, &q, &mut rng);
        assert!(out.success, "hybrid must find rare content via the DHT");
        assert_eq!(hybrid.fallbacks, 1);
    }

    #[test]
    fn hybrid_pays_more_than_dht_when_floods_fail() {
        let w = world();
        let mut hybrid = HybridSearch::new(&w, 3, 20, 6);
        let mut dht = DhtOnlySearch::new(&w, 6);
        let mut rng = Pcg64::new(7);
        let queries: Vec<QuerySpec> = (0..150).map(|_| w.sample_query(&mut rng)).collect();
        let mut hybrid_msgs = 0u64;
        let mut dht_msgs = 0u64;
        for q in &queries {
            hybrid_msgs += hybrid.search(&w, q, &mut rng).messages;
            dht_msgs += dht.search(&w, q, &mut rng).messages;
        }
        // Under Zipf replicas + Loo's threshold, nearly every query falls
        // back: hybrid cost strictly dominates pure DHT (the paper's §V).
        assert!(
            hybrid.fallback_rate() > 0.8,
            "fallback {}",
            hybrid.fallback_rate()
        );
        assert!(
            hybrid_msgs > dht_msgs,
            "hybrid {hybrid_msgs} must exceed dht {dht_msgs}"
        );
    }

    #[test]
    fn well_replicated_query_avoids_fallback() {
        let w = world();
        // Most-replicated object.
        let popular = (0..w.num_objects() as u32)
            .max_by_key(|&o| w.placement.replicas(o))
            .unwrap();
        assert!(w.placement.replicas(popular) >= 10, "need a popular object");
        let mut hybrid = HybridSearch::new(&w, 4, 3, 8);
        let mut rng = Pcg64::new(9);
        let q = QuerySpec {
            terms: w.object_terms[popular as usize].clone(),
            source: 1,
        };
        let out = hybrid.search(&w, &q, &mut rng);
        assert!(out.success);
        assert_eq!(
            hybrid.fallbacks, 0,
            "popular content should resolve in the flood phase"
        );
    }

    #[test]
    fn maintenance_cost_reported() {
        let w = world();
        let hybrid = HybridSearch::new(&w, 2, 10, 10);
        assert!(hybrid.maintenance_messages() > 0);
    }
}
