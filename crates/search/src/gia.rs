//! Gia baseline (Chawathe et al., SIGCOMM'03 — the paper's ref [17]).
//!
//! Gia improves Gnutella with (i) capacity-aware topology adaptation,
//! (ii) one-hop replication of *indices* (each node can answer for its
//! neighbors' content), and (iii) random walks biased toward
//! high-capacity nodes. The paper's related-work section argues Gia's
//! evaluation assumed uniform replication at up to 0.5% of peers — far
//! above what the measured Zipf distribution provides — so its real-world
//! success rate is much lower (ablation A2 quantifies this).
//!
//! The simulation models capacities as a discrete heavy-tailed ladder
//! (the Gia paper's own 1x/10x/100x/1000x gnutella-like distribution),
//! biases walks by capacity, and answers queries from one-hop indices.

use crate::systems::{OverloadStats, SearchOutcome, SearchSystem};
use crate::world::{QuerySpec, SearchWorld};
use qcp_faults::capacity::{gia_tier, GIA_MULTIPLIERS};
use qcp_util::rng::Pcg64;
use qcp_util::FxHashSet;

/// Gia search system.
#[derive(Debug)]
pub struct GiaSearch {
    /// Walk budget in steps.
    pub ttl: u32,
    /// Node capacities (heavy-tailed ladder).
    capacities: Vec<f64>,
}

impl GiaSearch {
    /// Creates a Gia system over `world` with the classic capacity ladder.
    pub fn new(world: &SearchWorld, ttl: u32, seed: u64) -> Self {
        let mut rng = Pcg64::with_stream(seed, 0x61a);
        // Gia's measured capacity distribution: 20% at 1x, 45% at 10x,
        // 30% at 100x, 4.9% at 1000x, 0.1% at 10000x. The ladder is
        // shared with the qcp-faults overload model; the sequential
        // 0x61a draw stream here predates it and stays bitwise intact.
        let capacities = (0..world.num_peers())
            .map(|_| GIA_MULTIPLIERS[gia_tier(rng.next_f64())])
            .collect();
        Self { ttl, capacities }
    }

    /// Capacity of a node (exposed for tests/reports).
    pub fn capacity(&self, node: u32) -> f64 {
        self.capacities[node as usize]
    }

    /// One-hop-replication answer check: `node` answers if it or any
    /// neighbor holds a matching object.
    fn answers(&self, world: &SearchWorld, node: u32, matching: &[u32]) -> bool {
        if world.peer_answers(node, matching) {
            return true;
        }
        world
            .topology
            .graph
            .neighbors(node)
            .iter()
            .any(|&nb| world.peer_answers(nb, matching))
    }
}

impl SearchSystem for GiaSearch {
    fn name(&self) -> String {
        format!("gia(ttl={})", self.ttl)
    }

    fn search(&mut self, world: &SearchWorld, query: &QuerySpec, rng: &mut Pcg64) -> SearchOutcome {
        let matching = world.matching_objects(&query.terms);
        if matching.is_empty() {
            return SearchOutcome {
                success: false,
                messages: 0,
                hops: None,
                faults: Default::default(),
                elapsed: 0,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        let graph = &world.topology.graph;
        let mut visited: FxHashSet<u32> = FxHashSet::default();
        let mut current = query.source;
        visited.insert(current);
        let mut messages = 0u64;

        if self.answers(world, current, &matching) {
            return SearchOutcome {
                success: true,
                messages: 0,
                hops: Some(0),
                faults: Default::default(),
                elapsed: 0,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        for step in 1..=self.ttl {
            // Choose the highest-capacity unvisited neighbor (Gia's bias);
            // fall back to any neighbor when all are visited.
            let neighbors = graph.neighbors(current);
            if neighbors.is_empty() {
                break;
            }
            let mut best: Option<u32> = None;
            let mut best_cap = f64::NEG_INFINITY;
            for &nb in neighbors {
                if visited.contains(&nb) {
                    continue;
                }
                let cap = self.capacities[nb as usize];
                // Random jitter breaks capacity ties without bias.
                let jitter = cap * (1.0 + 0.01 * rng.next_f64());
                if jitter > best_cap {
                    best_cap = jitter;
                    best = Some(nb);
                }
            }
            let next = best.unwrap_or_else(|| neighbors[rng.index(neighbors.len())]);
            messages += 1;
            visited.insert(next);
            current = next;
            if self.answers(world, current, &matching) {
                return SearchOutcome {
                    success: true,
                    messages,
                    hops: Some(step),
                    faults: Default::default(),
                    elapsed: 0,
                    deadline_exceeded: false,
                    overload: OverloadStats::default(),
                };
            }
        }
        SearchOutcome {
            success: false,
            messages,
            hops: None,
            faults: Default::default(),
            elapsed: 0,
            deadline_exceeded: false,
            overload: OverloadStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 600,
            num_objects: 4_000,
            num_terms: 5_000,
            head_size: 100,
            seed: 77,
            ..Default::default()
        })
    }

    #[test]
    fn capacity_ladder_has_expected_levels() {
        let w = world();
        let gia = GiaSearch::new(&w, 20, 1);
        let mut levels: Vec<f64> = (0..600).map(|n| gia.capacity(n)).collect();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        levels.dedup();
        assert!(levels
            .iter()
            .all(|c| { [1.0, 10.0, 100.0, 1_000.0, 10_000.0].contains(c) }));
        assert!(levels.len() >= 3, "expected several capacity levels");
    }

    #[test]
    fn answers_via_one_hop_index() {
        let w = world();
        let gia = GiaSearch::new(&w, 20, 2);
        let obj = 10u32;
        let holder = w.placement.holders(obj)[0];
        let matching = w.matching_objects(&w.object_terms[obj as usize]);
        // The holder answers; so does each of its neighbors.
        assert!(gia.answers(&w, holder, &matching));
        for &nb in w.topology.graph.neighbors(holder) {
            assert!(gia.answers(&w, nb, &matching));
        }
    }

    #[test]
    fn gia_beats_plain_walk_on_same_budget() {
        let w = world();
        let mut rng = Pcg64::new(3);
        let queries: Vec<QuerySpec> = (0..300).map(|_| w.sample_query(&mut rng)).collect();
        let mut gia = GiaSearch::new(&w, 30, 4);
        let mut walk = crate::spec::SearchSpec::walk(1, 30).build(&w).into_walk();
        let mut gia_hits = 0;
        let mut walk_hits = 0;
        for q in &queries {
            if gia.search(&w, q, &mut rng).success {
                gia_hits += 1;
            }
            if walk.search(&w, q, &mut rng).success {
                walk_hits += 1;
            }
        }
        assert!(
            gia_hits > walk_hits,
            "gia {gia_hits} should beat 1-walker walk {walk_hits}"
        );
    }

    #[test]
    fn unsatisfiable_query_is_free_failure() {
        let w = world();
        let mut gia = GiaSearch::new(&w, 30, 5);
        let mut rng = Pcg64::new(6);
        let out = gia.search(
            &w,
            &QuerySpec {
                terms: vec![4_999_999],
                source: 1,
            },
            &mut rng,
        );
        assert!(!out.success);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn ttl_bounds_cost() {
        let w = world();
        let mut gia = GiaSearch::new(&w, 7, 7);
        let mut rng = Pcg64::new(8);
        for _ in 0..50 {
            let q = w.sample_query(&mut rng);
            let out = gia.search(&w, &q, &mut rng);
            assert!(out.messages <= 7);
        }
    }
}
