//! The search-system interface and the two classic baselines.

#[cfg(any(test, doc))]
use crate::spec::SearchSpec;
use crate::world::{QuerySpec, SearchWorld};
use qcp_faults::{CapacityPlan, FaultPlan, FaultStats, RetryPolicy};
use qcp_obs::{Counter, Event, Kernel, NoopRecorder, Recorder};
use qcp_overlay::expanding::{expanding_ring_search_faulty_rec, expanding_ring_search_rec};
use qcp_overlay::flood::{FloodEngine, FloodSpec};
use qcp_overlay::walk::{random_walk_search_faulty_rec, random_walk_search_rec};
use qcp_overlay::{
    event_flood_rec, event_walk_rec, OverloadEngine, OverloadOutcome, Placement, ReplicationPlan,
};
use qcp_util::hash::mix64;
use qcp_util::rng::{child_seed, Pcg64};
use qcp_vtime::Deadline;

/// The replicated placement a [`SearchSpec::replication`] build searches
/// over: the plan applied once against the world's base placement at
/// build time, plus the copy count for the `CopiesPlaced` counter.
///
/// Holder lookups go through [`Self::holders_of`] instead of
/// [`SearchWorld::holders_of`]; the world's own placement stays the
/// owner-only ground truth, which the copies-hit shadow runs replay
/// against.
#[derive(Debug)]
pub(crate) struct ReplicaSet {
    placement: Placement,
    /// Extra copies the plan placed (== the plan's budget, exactly).
    copies: u64,
}

impl ReplicaSet {
    pub(crate) fn build(world: &SearchWorld, plan: &ReplicationPlan) -> Self {
        Self {
            placement: plan.apply(&world.topology.graph, &world.placement),
            copies: plan.budget,
        }
    }

    /// Sorted, deduplicated union of the replicated holder lists
    /// (mirrors [`SearchWorld::holders_of`] over the grown placement).
    pub(crate) fn holders_of(&self, objects: &[u32]) -> Vec<u32> {
        let mut peers: Vec<u32> = objects
            .iter()
            .flat_map(|&o| self.placement.holders(o).iter().copied())
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }
}

/// Records the one-time `CopiesPlaced` total at assemble time and hands
/// the recorder back (shared by the three unstructured assembles).
fn note_copies_placed<R: Recorder>(kernel: Kernel, replication: Option<&ReplicaSet>, rec: &mut R) {
    if let Some(r) = replication {
        rec.rec_count(kernel, Counter::CopiesPlaced, r.copies);
    }
}

/// Result of one query through one system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOutcome {
    /// Whether a peer holding a matching object was located.
    pub success: bool,
    /// Query messages spent.
    pub messages: u64,
    /// Hop distance at which the result was found (if any).
    pub hops: Option<u32>,
    /// Degraded-mode accounting for this query (all zero in fault-free
    /// runs: drops, retries, timeouts, stale index misses, ticks).
    pub faults: FaultStats,
    /// Virtual time consumed, in ticks of the fault plan's latency model.
    /// Under a [`Deadline`] this is the time of the first hit (the
    /// time-to-first-hit metric) when the query succeeds, and the total
    /// time spent when it fails; synchronous fault paths report the
    /// engine ticks; 0 without a fault context.
    pub elapsed: u64,
    /// Whether a [`Deadline`] cut the query off before its engines
    /// drained. Best-so-far results are still reported, so `success`
    /// and `deadline_exceeded` can both be true (a partial answer that
    /// arrived in time, with work still pending at the cutoff).
    pub deadline_exceeded: bool,
    /// Overload accounting under a [`CapacityPlan`] (all zero without
    /// one, and under an unlimited plan).
    pub overload: OverloadStats,
}

/// Per-query overload accounting, populated when a [`CapacityPlan`] is
/// attached (see `SearchSpec::capacity`). Composes with [`Deadline`]
/// best-so-far answers: an overloaded query still reports whatever it
/// found before shedding cost it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadStats {
    /// Query messages admitted into a node queue.
    pub enqueued: u64,
    /// Query messages dequeued and processed at their node's rate.
    pub served: u64,
    /// Query messages evicted by the shedding policy.
    pub shed: u64,
    /// Synthetic background entries this query's arrivals displaced
    /// from full queues — refused background work.
    pub displaced: u64,
    /// Synthetic background entries seeded into queues the query
    /// touched — the background work offered alongside the query.
    pub backlog_seeded: u64,
    /// Total ticks the query's messages waited in queues.
    pub queue_delay: u64,
    /// 1 when the ingress admission gate rejected the query outright.
    pub admission_rejected: u64,
    /// Degraded flag: the query lost work to shedding or was refused
    /// admission. The answer (if any) is best-so-far, not exhaustive.
    pub overloaded: bool,
}

impl OverloadStats {
    /// Accounting for a query rejected at the admission gate.
    pub fn rejected() -> Self {
        Self {
            admission_rejected: 1,
            overloaded: true,
            ..Self::default()
        }
    }

    /// Folds one kernel run's overload outcome into this query's stats.
    pub fn absorb_outcome(&mut self, o: &OverloadOutcome) {
        self.enqueued += o.enqueued;
        self.served += o.served;
        self.shed += o.shed;
        self.displaced += o.displaced;
        self.backlog_seeded += o.backlog_seeded;
        self.queue_delay += o.queue_delay;
        self.overloaded |= o.shed > 0;
    }

    /// Stats for a single kernel run.
    pub fn from_outcome(o: &OverloadOutcome) -> Self {
        let mut s = Self::default();
        s.absorb_outcome(o);
        s
    }

    /// Aggregates another query's stats (for workload-level reporting).
    pub fn absorb(&mut self, other: &OverloadStats) {
        self.enqueued += other.enqueued;
        self.served += other.served;
        self.shed += other.shed;
        self.displaced += other.displaced;
        self.backlog_seeded += other.backlog_seeded;
        self.queue_delay += other.queue_delay;
        self.admission_rejected += other.admission_rejected;
        self.overloaded |= other.overloaded;
    }
}

/// The outcome of a query the admission gate refused: zero cost, zero
/// answer, explicitly overloaded. Records the span (the query still
/// happened), the rejection counter, and the overload event.
pub(crate) fn reject_admission<R: Recorder>(kernel: Kernel, rec: &mut R) -> SearchOutcome {
    rec.rec_span(kernel);
    rec.rec_count(kernel, Counter::AdmissionRejected, 1);
    rec.rec_event(kernel, Event::Overloaded);
    SearchOutcome {
        success: false,
        messages: 0,
        hops: None,
        faults: FaultStats::default(),
        elapsed: 0,
        deadline_exceeded: false,
        overload: OverloadStats::rejected(),
    }
}

/// Per-system fault context: the shared [`FaultPlan`], the retry policy
/// for request/response engines, and a query clock.
///
/// Each query the system serves advances the clock by one tick (wrapping
/// at the plan horizon), so the plan's churn schedule plays out across a
/// workload; per-query fault nonces come from a dedicated `child_seed`
/// stream, so attaching faults never perturbs the query RNG.
#[derive(Debug, Clone)]
pub struct FaultContext {
    /// The fault plan every transmission consults.
    pub plan: FaultPlan,
    /// Retry/backoff policy for DHT-style request/response hops.
    pub policy: RetryPolicy,
    clock: u64,
    nonce_seed: u64,
}

impl FaultContext {
    /// Creates a context at tick 0.
    pub fn new(plan: FaultPlan, policy: RetryPolicy, nonce_seed: u64) -> Self {
        Self {
            plan,
            policy,
            clock: 0,
            nonce_seed,
        }
    }

    /// Advances the query clock; returns `(time, nonce)` for this query.
    pub fn next_query(&mut self) -> (u64, u64) {
        let time = self.clock % self.plan.horizon().max(1);
        let nonce = child_seed(self.nonce_seed, self.clock);
        self.clock = self.clock.wrapping_add(1);
        (time, nonce)
    }
}

/// A periodic maintenance schedule driven by the query clock.
///
/// Systems that accept one (see [`HybridSearch::with_maintenance`] and
/// [`DhtOnlySearch::with_maintenance`]) run a repair pass immediately
/// before every `period`-th query, so a degraded index heals *mid*
/// workload instead of only between experiments: stale-miss counters
/// decay as re-replication catches up with the fault plan's churn.
///
/// The schedule is pure bookkeeping — it decides *when*, the owning
/// system decides *what* (for the DHT-backed systems: one
/// [`re_replicate`](qcp_dht::DhtIndex::re_replicate) pass against the
/// plan's alive mask at the current tick). Firing depends only on the
/// count of queries served, never on query outcomes, so attaching a
/// schedule cannot perturb per-query fault draws.
///
/// [`HybridSearch::with_maintenance`]: crate::hybrid::HybridSearch::with_maintenance
/// [`DhtOnlySearch::with_maintenance`]: crate::hybrid::DhtOnlySearch::with_maintenance
#[derive(Debug, Clone)]
pub struct MaintenanceSchedule {
    period: u64,
    served: u64,
    /// Maintenance passes fired so far (for reports).
    pub passes: u64,
}

impl MaintenanceSchedule {
    /// A pass before every `period`-th query (the first pass fires just
    /// before query number `period`, counting from 1 — never before the
    /// very first query, whose index is still fresh by construction).
    pub fn every(period: u64) -> Self {
        assert!(period > 0, "maintenance period must be positive");
        Self {
            period,
            served: 0,
            passes: 0,
        }
    }

    /// Advances the served-query count; returns whether a maintenance
    /// pass is due before this query.
    pub fn due(&mut self) -> bool {
        let fire = self.served > 0 && self.served.is_multiple_of(self.period);
        self.served = self.served.wrapping_add(1);
        if fire {
            self.passes += 1;
        }
        fire
    }
}

/// A search system: given a world and a query, locate a matching peer.
pub trait SearchSystem {
    /// Display name for reports.
    fn name(&self) -> String;

    /// Executes one query.
    fn search(&mut self, world: &SearchWorld, query: &QuerySpec, rng: &mut Pcg64) -> SearchOutcome;

    /// One-time/maintenance message cost this system has accumulated
    /// outside of queries (index publication, synopsis gossip). Reported
    /// separately from per-query cost.
    fn maintenance_messages(&self) -> u64 {
        0
    }
}

/// Gnutella-style TTL-limited flooding.
///
/// Generic over an instrumentation [`Recorder`]; the default
/// [`NoopRecorder`] monomorphizes every recording call away, so the
/// uninstrumented system is exactly the pre-recorder code.
#[derive(Debug)]
pub struct FloodSearch<R: Recorder = NoopRecorder> {
    /// Flood TTL.
    pub ttl: u32,
    engine: FloodEngine,
    overload: OverloadEngine,
    forwarders: Vec<bool>,
    faults: Option<FaultContext>,
    deadline: Option<Deadline>,
    capacity: Option<CapacityPlan>,
    replication: Option<ReplicaSet>,
    recorder: R,
}

impl<R: Recorder> FloodSearch<R> {
    /// Builder-internal constructor (see [`SearchSpec::flood`]).
    pub(crate) fn assemble(
        world: &SearchWorld,
        ttl: u32,
        faults: Option<FaultContext>,
        deadline: Option<Deadline>,
        capacity: Option<CapacityPlan>,
        replication: Option<ReplicaSet>,
        mut recorder: R,
    ) -> Self {
        note_copies_placed(Kernel::Flood, replication.as_ref(), &mut recorder);
        Self {
            ttl,
            engine: FloodEngine::new(world.num_peers()),
            overload: OverloadEngine::new(),
            forwarders: world.topology.forwarders(),
            faults,
            deadline,
            capacity,
            replication,
            recorder,
        }
    }

    /// The recorder this system has been writing into.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the system, returning its recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }
}

/// One flood query against an explicit holder set: the engine body
/// shared by the recorded primary run and the owner-only shadow run
/// that [`SearchSpec::replication`] uses for copies-hit accounting.
/// Admission control, engine selection (capacity / deadline / census)
/// and event recording all happen here, against whichever recorder is
/// passed.
#[allow(clippy::too_many_arguments)]
fn flood_once<R: Recorder>(
    engine: &mut FloodEngine,
    overload: &mut OverloadEngine,
    forwarders: &[bool],
    faults: Option<&FaultContext>,
    deadline: Option<Deadline>,
    capacity: Option<&CapacityPlan>,
    ttl: u32,
    world: &SearchWorld,
    query: &QuerySpec,
    holders: &[u32],
    draw: Option<(u64, u64)>,
    rec: &mut R,
) -> SearchOutcome {
    if let (Some(deadline), Some((time, nonce))) = (deadline, draw) {
        // Deadline path: the event-driven flood on real link
        // latencies, cut off at the deadline.
        // qcplint: allow(panic) — build() rejects deadline sans faults.
        let ctx = faults.expect("deadline requires faults");
        if let Some(cap) = capacity {
            // Capacity path: bounded queues and service rates on the
            // overload engine (bitwise the plain event flood under an
            // unlimited plan), gated by ingress admission control.
            if !cap.admit(query.source, nonce) {
                return reject_admission(Kernel::Flood, rec);
            }
            let (out, stats, over) = overload.flood_rec(
                &world.topology.graph,
                query.source,
                ttl,
                holders,
                Some(forwarders),
                &ctx.plan,
                cap,
                time,
                nonce,
                Some(deadline.ticks),
                rec,
            );
            let exceeded = out.truncated && !out.flood.found;
            if exceeded {
                rec.rec_event(Kernel::Flood, Event::DeadlineExceeded);
            }
            let overload = OverloadStats::from_outcome(&over);
            if overload.overloaded {
                rec.rec_event(Kernel::Flood, Event::Overloaded);
            }
            return SearchOutcome {
                success: out.flood.found,
                messages: out.flood.messages,
                hops: out.flood.found_at_hop,
                faults: stats,
                elapsed: out.first_hit_time.unwrap_or(out.completion_time),
                deadline_exceeded: exceeded,
                overload,
            };
        }
        let (out, stats) = event_flood_rec(
            &world.topology.graph,
            query.source,
            ttl,
            holders,
            Some(forwarders),
            &ctx.plan,
            time,
            nonce,
            Some(deadline.ticks),
            rec,
        );
        let exceeded = out.truncated && !out.flood.found;
        if exceeded {
            rec.rec_event(Kernel::Flood, Event::DeadlineExceeded);
        }
        return SearchOutcome {
            success: out.flood.found,
            messages: out.flood.messages,
            hops: out.flood.found_at_hop,
            faults: stats,
            elapsed: out.first_hit_time.unwrap_or(out.completion_time),
            deadline_exceeded: exceeded,
            overload: OverloadStats::default(),
        };
    }
    let mut spec = FloodSpec::new(ttl);
    if let (Some(ctx), Some((time, nonce))) = (faults, draw) {
        spec = spec.faulty(&ctx.plan, time, nonce);
    }
    let (census, stats) = engine.run(
        &world.topology.graph,
        query.source,
        holders,
        Some(forwarders),
        &spec,
        rec,
    );
    let out = census.at(ttl);
    let level = ttl.min(census.levels()) as usize;
    SearchOutcome {
        success: out.found,
        messages: out.messages,
        hops: out.found_at_hop,
        faults: stats[level],
        elapsed: stats[level].ticks,
        deadline_exceeded: false,
        overload: OverloadStats::default(),
    }
}

impl<R: Recorder> SearchSystem for FloodSearch<R> {
    fn name(&self) -> String {
        format!("flood(ttl={})", self.ttl)
    }

    fn search(
        &mut self,
        world: &SearchWorld,
        query: &QuerySpec,
        _rng: &mut Pcg64,
    ) -> SearchOutcome {
        let matching = world.matching_objects(&query.terms);
        let holders = match &self.replication {
            Some(r) => r.holders_of(&matching),
            None => world.holders_of(&matching),
        };
        // Draw the fault clock first (field-disjoint from engine/recorder),
        // then run the one unified flood entry point: the census at
        // `ttl` reconstructs the standalone flood bitwise (the BFS
        // prefix property, pinned in qcp-overlay).
        let draw = self.faults.as_mut().map(FaultContext::next_query);
        let out = flood_once(
            &mut self.engine,
            &mut self.overload,
            &self.forwarders,
            self.faults.as_ref(),
            self.deadline,
            self.capacity.as_ref(),
            self.ttl,
            world,
            query,
            &holders,
            draw,
            &mut self.recorder,
        );
        if out.success && self.replication.is_some() {
            // Copies-hit accounting: replay the identical engine run
            // (same draws, same deadline/capacity path) over the
            // owner-only holders, recorder-free. A miss there means
            // replication rescued this query.
            let base = world.holders_of(&matching);
            let mut noop = NoopRecorder;
            let shadow = flood_once(
                &mut self.engine,
                &mut self.overload,
                &self.forwarders,
                self.faults.as_ref(),
                self.deadline,
                self.capacity.as_ref(),
                self.ttl,
                world,
                query,
                &base,
                draw,
                &mut noop,
            );
            if !shadow.success {
                self.recorder
                    .rec_count(Kernel::Flood, Counter::CopiesHit, 1);
            }
        }
        out
    }
}

/// k-walker random walk search.
#[derive(Debug)]
pub struct RandomWalkSearch<R: Recorder = NoopRecorder> {
    /// Number of walkers.
    pub walkers: usize,
    /// Steps per walker.
    pub ttl: u32,
    overload: OverloadEngine,
    faults: Option<FaultContext>,
    deadline: Option<Deadline>,
    capacity: Option<CapacityPlan>,
    replication: Option<ReplicaSet>,
    recorder: R,
}

impl<R: Recorder> RandomWalkSearch<R> {
    /// Builder-internal constructor (see [`SearchSpec::walk`]).
    pub(crate) fn assemble(
        walkers: usize,
        ttl: u32,
        faults: Option<FaultContext>,
        deadline: Option<Deadline>,
        capacity: Option<CapacityPlan>,
        replication: Option<ReplicaSet>,
        mut recorder: R,
    ) -> Self {
        note_copies_placed(Kernel::Walk, replication.as_ref(), &mut recorder);
        Self {
            walkers,
            ttl,
            overload: OverloadEngine::new(),
            faults,
            deadline,
            capacity,
            replication,
            recorder,
        }
    }

    /// The recorder this system has been writing into.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the system, returning its recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }
}

/// One walk query against an explicit holder set (see [`flood_once`]):
/// draws the walk seed (deadline path) or walker steps (sync paths)
/// from `rng`, so the copies-hit shadow passes a pre-primary clone to
/// replay the exact walker trajectories over the owner-only holders.
#[allow(clippy::too_many_arguments)]
fn walk_once<R: Recorder>(
    overload: &mut OverloadEngine,
    walkers: usize,
    ttl: u32,
    faults: Option<&FaultContext>,
    deadline: Option<Deadline>,
    capacity: Option<&CapacityPlan>,
    world: &SearchWorld,
    query: &QuerySpec,
    holders: &[u32],
    draw: Option<(u64, u64)>,
    rng: &mut Pcg64,
    rec: &mut R,
) -> SearchOutcome {
    if let (Some(deadline), Some((time, nonce))) = (deadline, draw) {
        // Deadline path: walkers race over real link latencies on the
        // event calendar; each walker draws from its own seeded
        // stream, so this path's one extra `rng` draw (the walk seed)
        // is its only RNG footprint.
        // qcplint: allow(panic) — build() rejects deadline sans faults.
        let ctx = faults.expect("deadline requires faults");
        let walk_seed = rng.next();
        if let Some(cap) = capacity {
            // Capacity path: walker steps queue for service at each
            // node (bitwise the plain event walk under an unlimited
            // plan). The walk seed is drawn before the admission
            // gate, so rejection never shifts later queries' draws.
            if !cap.admit(query.source, nonce) {
                return reject_admission(Kernel::Walk, rec);
            }
            let (out, stats, over) = overload.walk_rec(
                &world.topology.graph,
                query.source,
                walkers,
                ttl,
                holders,
                walk_seed,
                &ctx.plan,
                cap,
                time,
                nonce,
                Some(deadline.ticks),
                rec,
            );
            let exceeded = out.truncated && !out.walk.found;
            if exceeded {
                rec.rec_event(Kernel::Walk, Event::DeadlineExceeded);
            }
            let overload = OverloadStats::from_outcome(&over);
            if overload.overloaded {
                rec.rec_event(Kernel::Walk, Event::Overloaded);
            }
            return SearchOutcome {
                success: out.walk.found,
                messages: out.walk.messages,
                hops: out.walk.found_at_step,
                faults: stats,
                elapsed: out.first_hit_time.unwrap_or(out.completion_time),
                deadline_exceeded: exceeded,
                overload,
            };
        }
        let (out, stats) = event_walk_rec(
            &world.topology.graph,
            query.source,
            walkers,
            ttl,
            holders,
            walk_seed,
            &ctx.plan,
            time,
            nonce,
            Some(deadline.ticks),
            rec,
        );
        let exceeded = out.truncated && !out.walk.found;
        if exceeded {
            rec.rec_event(Kernel::Walk, Event::DeadlineExceeded);
        }
        return SearchOutcome {
            success: out.walk.found,
            messages: out.walk.messages,
            hops: out.walk.found_at_step,
            faults: stats,
            elapsed: out.first_hit_time.unwrap_or(out.completion_time),
            deadline_exceeded: exceeded,
            overload: OverloadStats::default(),
        };
    }
    if let (Some(ctx), Some((time, nonce))) = (faults, draw) {
        let (out, stats) = random_walk_search_faulty_rec(
            &world.topology.graph,
            query.source,
            walkers,
            ttl,
            holders,
            rng,
            &ctx.plan,
            time,
            nonce,
            rec,
        );
        return SearchOutcome {
            success: out.found,
            messages: out.messages,
            hops: out.found_at_step,
            faults: stats,
            elapsed: stats.ticks,
            deadline_exceeded: false,
            overload: OverloadStats::default(),
        };
    }
    let out = random_walk_search_rec(
        &world.topology.graph,
        query.source,
        walkers,
        ttl,
        holders,
        rng,
        rec,
    );
    SearchOutcome {
        success: out.found,
        messages: out.messages,
        hops: out.found_at_step,
        faults: FaultStats::default(),
        elapsed: 0,
        deadline_exceeded: false,
        overload: OverloadStats::default(),
    }
}

impl<R: Recorder> SearchSystem for RandomWalkSearch<R> {
    fn name(&self) -> String {
        format!("walk(k={},ttl={})", self.walkers, self.ttl)
    }

    fn search(&mut self, world: &SearchWorld, query: &QuerySpec, rng: &mut Pcg64) -> SearchOutcome {
        let matching = world.matching_objects(&query.terms);
        let holders = match &self.replication {
            Some(r) => r.holders_of(&matching),
            None => world.holders_of(&matching),
        };
        let draw = self.faults.as_mut().map(FaultContext::next_query);
        // Snapshot the walker RNG before the primary run so the shadow
        // replays the identical trajectories (the clone is dropped
        // unused when the query fails or replication is off).
        let mut shadow_rng = self.replication.as_ref().map(|_| rng.clone());
        let out = walk_once(
            &mut self.overload,
            self.walkers,
            self.ttl,
            self.faults.as_ref(),
            self.deadline,
            self.capacity.as_ref(),
            world,
            query,
            &holders,
            draw,
            rng,
            &mut self.recorder,
        );
        if let (true, Some(srng)) = (out.success, shadow_rng.as_mut()) {
            let base = world.holders_of(&matching);
            let mut noop = NoopRecorder;
            let shadow = walk_once(
                &mut self.overload,
                self.walkers,
                self.ttl,
                self.faults.as_ref(),
                self.deadline,
                self.capacity.as_ref(),
                world,
                query,
                &base,
                draw,
                srng,
                &mut noop,
            );
            if !shadow.success {
                self.recorder.rec_count(Kernel::Walk, Counter::CopiesHit, 1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{SearchWorld, WorldConfig};

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 400,
            num_objects: 3_000,
            num_terms: 4_000,
            head_size: 80,
            seed: 99,
            ..Default::default()
        })
    }

    /// A query that matches an object held by a known peer.
    fn query_for_object(world: &SearchWorld, obj: u32) -> QuerySpec {
        QuerySpec {
            terms: world.object_terms[obj as usize].clone(),
            source: 0,
        }
    }

    #[test]
    fn flood_from_holder_succeeds_immediately() {
        let w = world();
        let obj = 5u32;
        let holder = w.placement.holders(obj)[0];
        let mut sys = SearchSpec::flood(0).build(&w).into_flood();
        let q = QuerySpec {
            terms: w.object_terms[obj as usize].clone(),
            source: holder,
        };
        let mut rng = Pcg64::new(1);
        let out = sys.search(&w, &q, &mut rng);
        assert!(out.success);
        assert_eq!(out.hops, Some(0));
    }

    #[test]
    fn flood_success_grows_with_ttl() {
        let w = world();
        let mut rng = Pcg64::new(2);
        let queries: Vec<QuerySpec> = (0..150).map(|_| w.sample_query(&mut rng)).collect();
        let mut hits_low = 0;
        let mut hits_high = 0;
        let mut low = SearchSpec::flood(1).build(&w).into_flood();
        let mut high = SearchSpec::flood(5).build(&w).into_flood();
        for q in &queries {
            if low.search(&w, q, &mut rng).success {
                hits_low += 1;
            }
            if high.search(&w, q, &mut rng).success {
                hits_high += 1;
            }
        }
        assert!(hits_high >= hits_low);
        assert!(hits_high > 0);
    }

    #[test]
    fn unsatisfiable_query_fails_everywhere() {
        let w = world();
        let q = QuerySpec {
            terms: vec![999_999],
            source: 3,
        };
        let mut rng = Pcg64::new(3);
        let mut flood = SearchSpec::flood(6).build(&w).into_flood();
        let mut walk = SearchSpec::walk(8, 100).build(&w).into_walk();
        assert!(!flood.search(&w, &q, &mut rng).success);
        assert!(!walk.search(&w, &q, &mut rng).success);
    }

    #[test]
    fn walk_costs_less_than_flood_at_scale() {
        let w = world();
        let mut rng = Pcg64::new(4);
        let q = query_for_object(&w, 100);
        let mut flood = SearchSpec::flood(5).build(&w).into_flood();
        let mut walk = SearchSpec::walk(4, 20).build(&w).into_walk();
        let f = flood.search(&w, &q, &mut rng);
        let wk = walk.search(&w, &q, &mut rng);
        assert!(
            wk.messages < f.messages,
            "walk {} flood {}",
            wk.messages,
            f.messages
        );
    }

    #[test]
    fn names_describe_parameters() {
        let w = world();
        assert_eq!(
            SearchSpec::flood(3).build(&w).into_flood().name(),
            "flood(ttl=3)"
        );
        assert_eq!(
            SearchSpec::walk(2, 7).build(&w).into_walk().name(),
            "walk(k=2,ttl=7)"
        );
    }
}

/// Expanding-ring (iterative-deepening) search: floods with TTL 1, 2, …
/// `max_ttl`, stopping at the first ring that finds a match. Cheap for
/// nearby content, wasteful for distant content — §V's observation that
/// "lower TTL values … rapidly identify rare queries" is this system's
/// failure mode under Zipf placement.
#[derive(Debug)]
pub struct ExpandingRingSearch<R: Recorder = NoopRecorder> {
    /// Deepest ring to try.
    pub max_ttl: u32,
    engine: FloodEngine,
    overload: OverloadEngine,
    forwarders: Vec<bool>,
    faults: Option<FaultContext>,
    deadline: Option<Deadline>,
    capacity: Option<CapacityPlan>,
    replication: Option<ReplicaSet>,
    recorder: R,
    /// Total rings attempted across every query served (for reports):
    /// `rings_attempted / queries` is the mean iterative-deepening depth,
    /// the knob §V's "rapidly identify rare queries" observation turns on.
    pub rings_attempted: u64,
    /// Total queries served.
    pub queries: u64,
}

impl<R: Recorder> ExpandingRingSearch<R> {
    /// Builder-internal constructor (see [`SearchSpec::expanding_ring`]).
    pub(crate) fn assemble(
        world: &SearchWorld,
        max_ttl: u32,
        faults: Option<FaultContext>,
        deadline: Option<Deadline>,
        capacity: Option<CapacityPlan>,
        replication: Option<ReplicaSet>,
        mut recorder: R,
    ) -> Self {
        note_copies_placed(Kernel::ExpandingRing, replication.as_ref(), &mut recorder);
        Self {
            max_ttl,
            engine: FloodEngine::new(world.num_peers()),
            overload: OverloadEngine::new(),
            forwarders: world.topology.forwarders(),
            faults,
            deadline,
            capacity,
            replication,
            recorder,
            rings_attempted: 0,
            queries: 0,
        }
    }

    /// Mean number of rings a query needed (0.0 before any query).
    pub fn mean_rings(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.rings_attempted as f64 / self.queries as f64
    }

    /// The recorder this system has been writing into.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the system, returning its recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }
}

/// One expanding-ring query against an explicit holder set (see
/// [`flood_once`]): returns the outcome plus the number of rings
/// attempted, which only the recorded primary run folds into the
/// system's depth accounting.
///
/// The deadline path runs rings as sequential event floods on one
/// virtual timeline, each cut off at whatever budget the earlier rings
/// left. Iterative deepening under a clock is exactly the paper's
/// trade-off — cheap rings first, but every miss burns time the deeper
/// rings no longer have.
#[allow(clippy::too_many_arguments)]
fn ring_once<R: Recorder>(
    engine: &mut FloodEngine,
    overload: &mut OverloadEngine,
    forwarders: &[bool],
    faults: Option<&FaultContext>,
    deadline: Option<Deadline>,
    capacity: Option<&CapacityPlan>,
    max_ttl: u32,
    world: &SearchWorld,
    query: &QuerySpec,
    holders: &[u32],
    draw: Option<(u64, u64)>,
    rec: &mut R,
) -> (SearchOutcome, u64) {
    if let (Some(deadline), Some((time, nonce))) = (deadline, draw) {
        // qcplint: allow(panic) — build() rejects deadline sans faults.
        let ctx = faults.expect("deadline requires faults");
        if let Some(cap) = capacity {
            // Admission control gates the whole deepening schedule: a
            // rejected query never issues its first ring.
            if !cap.admit(query.source, nonce) {
                return (reject_admission(Kernel::ExpandingRing, rec), 0);
            }
        }
        rec.rec_span(Kernel::ExpandingRing);
        if !ctx.plan.alive_at(query.source, time) {
            rec.rec_event(Kernel::ExpandingRing, Event::DeadSource);
            return (
                SearchOutcome {
                    success: false,
                    messages: 0,
                    hops: None,
                    faults: FaultStats::default(),
                    elapsed: 0,
                    deadline_exceeded: false,
                    overload: OverloadStats::default(),
                },
                0,
            );
        }
        let mut messages = 0u64;
        let mut stats = FaultStats::default();
        let mut spent = 0u64;
        let mut rings = 0u64;
        let mut exceeded = false;
        let mut success = false;
        let mut hops = None;
        let mut elapsed = 0u64;
        let mut overload_stats = OverloadStats::default();
        for ttl in 1..=max_ttl {
            // Each ring is an independent flood with its own drop-stream
            // position, as in the synchronous schedule's re-floods.
            let ring_nonce = mix64(nonce ^ u64::from(ttl));
            let (out, ring_stats) = match capacity {
                Some(cap) => {
                    let (out, ring_stats, over) = overload.flood_rec(
                        &world.topology.graph,
                        query.source,
                        ttl,
                        holders,
                        Some(forwarders),
                        &ctx.plan,
                        cap,
                        time,
                        ring_nonce,
                        Some(deadline.ticks - spent),
                        rec,
                    );
                    overload_stats.absorb_outcome(&over);
                    (out, ring_stats)
                }
                None => event_flood_rec(
                    &world.topology.graph,
                    query.source,
                    ttl,
                    holders,
                    Some(forwarders),
                    &ctx.plan,
                    time,
                    ring_nonce,
                    Some(deadline.ticks - spent),
                    rec,
                ),
            };
            rings += 1;
            messages += out.flood.messages;
            stats.absorb(&ring_stats);
            if out.flood.found {
                success = true;
                hops = out.flood.found_at_hop;
                elapsed = spent + out.first_hit_time.unwrap_or(out.completion_time);
                break;
            }
            spent += out.completion_time;
            elapsed = spent;
            if out.truncated || spent >= deadline.ticks {
                exceeded = true;
                break;
            }
        }
        // Answer-time semantics: the schedule stops at the hit, so its
        // consumed time is `elapsed`, not the sum of full ring drains.
        stats.ticks = elapsed;
        rec.rec_count(Kernel::ExpandingRing, Counter::Messages, messages);
        rec.rec_count(Kernel::ExpandingRing, Counter::Rings, rings);
        rec.rec_faults(Kernel::ExpandingRing, &stats);
        if let Some(h) = hops {
            rec.rec_hop(Kernel::ExpandingRing, h, 1);
        }
        if success {
            rec.rec_time(Kernel::ExpandingRing, elapsed, 1);
        }
        rec.rec_event(
            Kernel::ExpandingRing,
            if success { Event::Hit } else { Event::Miss },
        );
        if exceeded {
            rec.rec_event(Kernel::ExpandingRing, Event::DeadlineExceeded);
        }
        if overload_stats.overloaded {
            rec.rec_event(Kernel::ExpandingRing, Event::Overloaded);
        }
        return (
            SearchOutcome {
                success,
                messages,
                hops,
                faults: stats,
                elapsed,
                deadline_exceeded: exceeded,
                overload: overload_stats,
            },
            rings,
        );
    }
    if let (Some(ctx), Some((time, nonce))) = (faults, draw) {
        let (out, stats) = expanding_ring_search_faulty_rec(
            engine,
            &world.topology.graph,
            query.source,
            max_ttl,
            holders,
            Some(forwarders),
            &ctx.plan,
            time,
            nonce,
            rec,
        );
        return (
            SearchOutcome {
                success: out.found,
                messages: out.messages,
                hops: out.found_at_ttl,
                faults: stats,
                elapsed: stats.ticks,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            },
            out.rings as u64,
        );
    }
    let out = expanding_ring_search_rec(
        engine,
        &world.topology.graph,
        query.source,
        max_ttl,
        holders,
        Some(forwarders),
        rec,
    );
    (
        SearchOutcome {
            success: out.found,
            messages: out.messages,
            hops: out.found_at_ttl,
            faults: FaultStats::default(),
            elapsed: 0,
            deadline_exceeded: false,
            overload: OverloadStats::default(),
        },
        out.rings as u64,
    )
}

impl<R: Recorder> SearchSystem for ExpandingRingSearch<R> {
    fn name(&self) -> String {
        format!("expanding-ring(max={})", self.max_ttl)
    }

    fn search(
        &mut self,
        world: &SearchWorld,
        query: &QuerySpec,
        _rng: &mut Pcg64,
    ) -> SearchOutcome {
        self.queries += 1;
        let matching = world.matching_objects(&query.terms);
        let holders = match &self.replication {
            Some(r) => r.holders_of(&matching),
            None => world.holders_of(&matching),
        };
        let draw = self.faults.as_mut().map(FaultContext::next_query);
        let (out, rings) = ring_once(
            &mut self.engine,
            &mut self.overload,
            &self.forwarders,
            self.faults.as_ref(),
            self.deadline,
            self.capacity.as_ref(),
            self.max_ttl,
            world,
            query,
            &holders,
            draw,
            &mut self.recorder,
        );
        self.rings_attempted += rings;
        if out.success && self.replication.is_some() {
            // Copies-hit accounting (see FloodSearch::search): the
            // shadow's rings are not depth accounting, so they are
            // dropped along with its recording.
            let base = world.holders_of(&matching);
            let mut noop = NoopRecorder;
            let (shadow, _) = ring_once(
                &mut self.engine,
                &mut self.overload,
                &self.forwarders,
                self.faults.as_ref(),
                self.deadline,
                self.capacity.as_ref(),
                self.max_ttl,
                world,
                query,
                &base,
                draw,
                &mut noop,
            );
            if !shadow.success {
                self.recorder
                    .rec_count(Kernel::ExpandingRing, Counter::CopiesHit, 1);
            }
        }
        out
    }
}

#[cfg(test)]
mod expanding_tests {
    use super::*;
    use crate::world::{SearchWorld, WorldConfig};

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 400,
            num_objects: 3_000,
            num_terms: 4_000,
            head_size: 80,
            seed: 99,
            ..Default::default()
        })
    }

    #[test]
    fn expanding_ring_matches_flood_success_at_equal_depth() {
        let w = world();
        let mut rng = Pcg64::new(1);
        let queries: Vec<QuerySpec> = (0..150).map(|_| w.sample_query(&mut rng)).collect();
        let mut ring = SearchSpec::expanding_ring(4)
            .build(&w)
            .into_expanding_ring();
        let mut flood = SearchSpec::flood(4).build(&w).into_flood();
        for q in &queries {
            let a = ring.search(&w, q, &mut rng);
            let b = flood.search(&w, q, &mut rng);
            assert_eq!(
                a.success, b.success,
                "ring and flood must agree on reachability"
            );
        }
    }

    #[test]
    fn expanding_ring_cheaper_for_nearby_content() {
        let w = world();
        let mut rng = Pcg64::new(2);
        // Query issued by a direct neighbor of a holder: ring stops at 1.
        let obj = 40u32;
        let holder = w.placement.holders(obj)[0];
        let neighbor = w.topology.graph.neighbors(holder)[0];
        let q = QuerySpec {
            terms: w.object_terms[obj as usize].clone(),
            source: neighbor,
        };
        let mut ring = SearchSpec::expanding_ring(5)
            .build(&w)
            .into_expanding_ring();
        let mut flood = SearchSpec::flood(5).build(&w).into_flood();
        let a = ring.search(&w, &q, &mut rng);
        let b = flood.search(&w, &q, &mut rng);
        assert!(a.success);
        assert!(
            a.messages < b.messages,
            "ring {} should be cheaper than full flood {}",
            a.messages,
            b.messages
        );
    }

    #[test]
    fn ring_depth_accounting_tracks_queries() {
        let w = world();
        let mut rng = Pcg64::new(3);
        let mut ring = SearchSpec::expanding_ring(4)
            .build(&w)
            .into_expanding_ring();
        assert_eq!(ring.mean_rings(), 0.0, "no queries yet");
        let queries: Vec<QuerySpec> = (0..50).map(|_| w.sample_query(&mut rng)).collect();
        for q in &queries {
            ring.search(&w, q, &mut rng);
        }
        assert_eq!(ring.queries, 50);
        assert!(ring.rings_attempted >= 50, "every query tries >=1 ring");
        assert!(ring.rings_attempted <= 50 * 4, "bounded by max_ttl");
        let mean = ring.mean_rings();
        assert!((1.0..=4.0).contains(&mean), "mean depth {mean}");
    }
}
