//! Workload evaluation: the same query set through every system.

use crate::systems::{SearchOutcome, SearchSystem};
use crate::world::{QuerySpec, SearchWorld};
use qcp_faults::FaultStats;
use qcp_util::rng::{child_seed, Pcg64};

/// Workload generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of queries.
    pub num_queries: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_queries: 1_000,
            seed: 0xe7a1,
        }
    }
}

/// Generates a query workload from the world's mismatch model.
pub fn gen_queries(world: &SearchWorld, config: &WorkloadConfig) -> Vec<QuerySpec> {
    let mut rng = Pcg64::new(config.seed);
    (0..config.num_queries)
        .map(|_| world.sample_query(&mut rng))
        .collect()
}

/// Aggregate result for one system over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// System name.
    pub system: String,
    /// Queries evaluated.
    pub queries: usize,
    /// Fraction of queries resolved.
    pub success_rate: f64,
    /// Mean per-query messages.
    pub mean_messages: f64,
    /// Mean hops for successful queries.
    pub mean_success_hops: f64,
    /// One-time/maintenance messages accumulated by the system.
    pub maintenance_messages: u64,
    /// Degraded-mode counters summed over the workload (all zero for
    /// fault-free systems).
    pub faults: FaultStats,
}

/// Runs every system over the same queries; per-query RNG streams are
/// derived from `(seed, query index)` so systems see identical randomness
/// structure and runs are reproducible.
pub fn evaluate(
    world: &SearchWorld,
    systems: &mut [&mut dyn SearchSystem],
    queries: &[QuerySpec],
    seed: u64,
) -> Vec<ComparisonRow> {
    systems
        .iter_mut()
        .map(|system| {
            let mut successes = 0usize;
            let mut messages = 0u64;
            let mut hop_sum = 0u64;
            let mut hop_count = 0u64;
            let mut faults = FaultStats::default();
            for (i, q) in queries.iter().enumerate() {
                let mut rng = Pcg64::new(child_seed(seed, i as u64));
                let out: SearchOutcome = system.search(world, q, &mut rng);
                if out.success {
                    successes += 1;
                    if let Some(h) = out.hops {
                        hop_sum += h as u64;
                        hop_count += 1;
                    }
                }
                messages += out.messages;
                faults.absorb(&out.faults);
            }
            let n = queries.len().max(1) as f64;
            ComparisonRow {
                system: system.name(),
                queries: queries.len(),
                success_rate: successes as f64 / n,
                mean_messages: messages as f64 / n,
                mean_success_hops: if hop_count > 0 {
                    hop_sum as f64 / hop_count as f64
                } else {
                    f64::NAN
                },
                maintenance_messages: system.maintenance_messages(),
                faults,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 400,
            num_objects: 3_000,
            num_terms: 4_000,
            head_size: 80,
            seed: 19,
            ..Default::default()
        })
    }

    #[test]
    fn evaluate_reports_one_row_per_system() {
        let w = world();
        let queries = gen_queries(
            &w,
            &WorkloadConfig {
                num_queries: 100,
                seed: 1,
            },
        );
        let mut flood = crate::spec::SearchSpec::flood(3).build(&w).into_flood();
        let mut walk = crate::spec::SearchSpec::walk(4, 20).build(&w).into_walk();
        let rows = evaluate(&w, &mut [&mut flood, &mut walk], &queries, 7);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].system, "flood(ttl=3)");
        assert_eq!(rows[0].queries, 100);
        assert!(rows[0].success_rate >= 0.0 && rows[0].success_rate <= 1.0);
        assert!(rows[0].mean_messages > 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let w = world();
        let queries = gen_queries(
            &w,
            &WorkloadConfig {
                num_queries: 80,
                seed: 2,
            },
        );
        let run = |seed| {
            let mut walk = crate::spec::SearchSpec::walk(2, 15).build(&w).into_walk();
            evaluate(&w, &mut [&mut walk], &queries, seed)
        };
        assert_eq!(run(3), run(3));
        // Different eval seeds may differ (walks are randomized).
        let a = run(3);
        let b = run(4);
        assert_eq!(a[0].queries, b[0].queries);
    }

    #[test]
    fn gen_queries_is_deterministic() {
        let w = world();
        let cfg = WorkloadConfig {
            num_queries: 50,
            seed: 5,
        };
        assert_eq!(gen_queries(&w, &cfg), gen_queries(&w, &cfg));
    }

    #[test]
    fn empty_workload_is_safe() {
        let w = world();
        let mut flood = crate::spec::SearchSpec::flood(2).build(&w).into_flood();
        let rows = evaluate(&w, &mut [&mut flood], &[], 1);
        assert_eq!(rows[0].queries, 0);
        assert_eq!(rows[0].success_rate, 0.0);
    }
}
