//! `qcp-search` — search systems over unstructured overlays.
//!
//! Everything Section V of the paper reasons about, as runnable systems
//! sharing one interface:
//!
//! * [`world`] — the shared simulation world: topology, object placement,
//!   per-object term sets, inverted posting lists, and a query workload
//!   model with the planted query/file popularity mismatch;
//! * [`systems`] — the [`SearchSystem`](systems::SearchSystem) trait and
//!   baseline implementations: TTL flooding, k-walker random walks;
//! * [`spec`] — the unified [`SearchSpec`](spec::SearchSpec) builder:
//!   the sole entry point for every baseline system, with optional fault
//!   contexts, maintenance schedules, replication plans, and
//!   instrumentation recorders;
//! * [`gia`] — the Gia baseline (paper ref [17]): capacity-weighted
//!   topology roles, one-hop replication, biased walks;
//! * [`hybrid`] — flood-then-DHT hybrid search with the Loo et al.
//!   rare-query rule (paper ref [5]);
//! * [`advertise`] — ASAP-style advertisement-based search (paper ref
//!   [21]): content pushed ahead of queries, the content-centric push
//!   counterpart to the synopsis pull;
//! * [`qrp`] — Gnutella's deployed Query Routing Protocol: leaf keyword
//!   tables gating flood deliveries (prunes misses; cannot create hits);
//! * [`synopsis`] — synopsis-directed walks with two weighting policies:
//!   content-centric (advertise what you store) and **query-centric**
//!   (advertise what users ask for) — the paper's position, plus the
//!   adaptive variant that re-weights from the observed query stream;
//! * [`eval`] — a workload evaluator that runs the same query set through
//!   every system and tabulates success rates and message costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advertise;
pub mod eval;
pub mod gia;
pub mod hybrid;
pub mod qrp;
pub mod spec;
pub mod synopsis;
pub mod systems;
pub mod world;

pub use advertise::AdvertiseSearch;
pub use eval::{evaluate, gen_queries, ComparisonRow, WorkloadConfig};
pub use gia::GiaSearch;
pub use hybrid::{DhtOnlySearch, HybridSearch};
pub use qcp_faults::{CapacityConfig, CapacityModel, CapacityPlan, ShedPolicy};
pub use qcp_overlay::{Popularity, ReplicationPlan, ReplicationScheme};
pub use qrp::QrpFloodSearch;
pub use spec::{Built, SearchSpec};
pub use synopsis::{SynopsisPolicy, SynopsisSearch};
pub use systems::{
    ExpandingRingSearch, FaultContext, FloodSearch, MaintenanceSchedule, OverloadStats,
    RandomWalkSearch, SearchOutcome, SearchSystem,
};
pub use world::{QuerySpec, SearchWorld, WorldConfig};
