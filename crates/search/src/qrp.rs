//! Query Routing Protocol (QRP) flooding — Gnutella's deployed mechanism.
//!
//! In the two-tier Gnutella the paper crawled, leaves upload a *query
//! routing table* (a hashed bitmap of their keywords) to each of their
//! ultrapeers. Floods traverse only the ultrapeer mesh; an ultrapeer
//! forwards a query down to a leaf only when the leaf's table contains
//! **every** query term. QRP never loses results — a leaf that can answer
//! always passes its own table — it only prunes guaranteed-miss
//! deliveries.
//!
//! QRP is the real-world, deployed form of a *content-centric* synopsis:
//! the table advertises exactly what the leaf stores. The paper's
//! annotation/query mismatch is what limits it — pruning misses is all it
//! can do; it cannot make under-replicated content findable.

use crate::systems::{OverloadStats, SearchOutcome, SearchSystem};
use crate::world::{QuerySpec, SearchWorld};
use qcp_overlay::topology::NodeKind;
use qcp_sketch::BloomFilter;
use qcp_util::rng::Pcg64;
use qcp_util::Symbol;
use std::collections::VecDeque;

/// QRP key for a world term id (same convention as the synopsis module).
#[inline]
fn qrp_key(term: u32) -> u64 {
    qcp_sketch::synopsis::term_key(Symbol(term))
}

/// Gnutella flooding with QRP leaf gating.
#[derive(Debug)]
pub struct QrpFloodSearch {
    /// Flood TTL over the ultrapeer mesh.
    pub ttl: u32,
    /// Per-node QRP table (meaningful for leaves; ultrapeers route).
    tables: Vec<BloomFilter>,
    kinds: Vec<NodeKind>,
    /// Table-upload cost: one message per (leaf, ultrapeer) link.
    maintenance: u64,
    /// Scratch: last-visited epoch per node.
    mark: Vec<u32>,
    epoch: u32,
}

impl QrpFloodSearch {
    /// Builds per-leaf QRP tables (`table_bits` per table) and uploads
    /// them to the leaves' ultrapeers.
    pub fn new(world: &SearchWorld, ttl: u32, table_bits: usize) -> Self {
        let n = world.num_peers();
        let kinds = world.topology.kinds.clone();
        let mut maintenance = 0u64;
        let tables: Vec<BloomFilter> = (0..n as u32)
            .map(|peer| {
                let mut table = BloomFilter::new(table_bits, 2);
                for (term, _) in world.peer_term_counts(peer) {
                    table.insert(qrp_key(term));
                }
                if kinds[peer as usize] == NodeKind::Leaf {
                    maintenance += world.topology.graph.degree(peer) as u64;
                }
                table
            })
            .collect();
        Self {
            ttl,
            tables,
            kinds,
            maintenance,
            mark: vec![0; n],
            epoch: 0,
        }
    }

    /// True when `leaf`'s table contains every query term.
    fn table_matches(&self, leaf: u32, terms: &[u32]) -> bool {
        let table = &self.tables[leaf as usize];
        terms.iter().all(|&t| table.contains(qrp_key(t)))
    }
}

impl SearchSystem for QrpFloodSearch {
    fn name(&self) -> String {
        format!("qrp-flood(ttl={})", self.ttl)
    }

    fn search(
        &mut self,
        world: &SearchWorld,
        query: &QuerySpec,
        _rng: &mut Pcg64,
    ) -> SearchOutcome {
        // For an unsatisfiable query `matching` is empty, but the flood
        // still happens — the querier doesn't know — so costs are paid.
        let matching = world.matching_objects(&query.terms);
        let graph = &world.topology.graph;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;

        let mut messages = 0u64;
        let mut found_at: Option<u32> = None;
        let check = |peer: u32, hop: u32, found_at: &mut Option<u32>| {
            if found_at.is_none() && world.peer_answers(peer, &matching) {
                *found_at = Some(hop);
            }
        };

        // BFS over the ultrapeer tier; source participates regardless of
        // role (a leaf source sends to its ultrapeers).
        let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
        self.mark[query.source as usize] = epoch;
        check(query.source, 0, &mut found_at);
        queue.push_back((query.source, 0));

        while let Some((u, hop)) = queue.pop_front() {
            if hop >= self.ttl {
                continue;
            }
            // Only the source and ultrapeers forward.
            if u != query.source && self.kinds[u as usize] != NodeKind::Ultrapeer {
                continue;
            }
            for &v in graph.neighbors(u) {
                if self.mark[v as usize] == epoch {
                    continue;
                }
                match self.kinds[v as usize] {
                    NodeKind::Ultrapeer => {
                        messages += 1;
                        self.mark[v as usize] = epoch;
                        check(v, hop + 1, &mut found_at);
                        queue.push_back((v, hop + 1));
                    }
                    NodeKind::Leaf => {
                        // QRP gate: deliver only if the leaf's table
                        // matches all query terms.
                        if self.table_matches(v, &query.terms) {
                            messages += 1;
                            self.mark[v as usize] = epoch;
                            check(v, hop + 1, &mut found_at);
                            // Leaves never forward.
                        }
                    }
                }
            }
        }
        SearchOutcome {
            success: found_at.is_some(),
            messages,
            hops: found_at,
            faults: Default::default(),
            elapsed: 0,
            deadline_exceeded: false,
            overload: OverloadStats::default(),
        }
    }

    fn maintenance_messages(&self) -> u64 {
        self.maintenance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 600,
            num_objects: 4_000,
            num_terms: 5_000,
            head_size: 100,
            seed: 88,
            ..Default::default()
        })
    }

    #[test]
    fn leaf_tables_never_reject_their_own_content() {
        let w = world();
        let sys = QrpFloodSearch::new(&w, 3, 4096);
        for peer in 0..w.num_peers() as u32 {
            let terms: Vec<u32> = w.peer_term_counts(peer).keys().copied().collect();
            for &t in terms.iter().take(20) {
                assert!(
                    sys.table_matches(peer, &[t]),
                    "peer {peer} table rejects its own term {t}"
                );
            }
        }
    }

    #[test]
    fn qrp_matches_flood_success_with_fewer_messages() {
        let w = world();
        let mut rng = Pcg64::new(1);
        let queries: Vec<QuerySpec> = (0..250).map(|_| w.sample_query(&mut rng)).collect();
        let mut qrp = QrpFloodSearch::new(&w, 3, 4096);
        let mut flood = crate::spec::SearchSpec::flood(3).build(&w).into_flood();
        let mut qrp_success = 0u32;
        let mut flood_success = 0u32;
        let mut qrp_msgs = 0u64;
        let mut flood_msgs = 0u64;
        for q in &queries {
            let a = qrp.search(&w, q, &mut rng);
            let b = flood.search(&w, q, &mut rng);
            qrp_success += a.success as u32;
            flood_success += b.success as u32;
            qrp_msgs += a.messages;
            flood_msgs += b.messages;
            // QRP never loses a result the plain flood found.
            assert!(
                a.success || !b.success,
                "QRP lost a result for terms {:?}",
                q.terms
            );
        }
        assert_eq!(qrp_success, flood_success, "same reachability");
        assert!(
            qrp_msgs * 2 < flood_msgs,
            "QRP should prune most leaf deliveries: {qrp_msgs} vs {flood_msgs}"
        );
    }

    #[test]
    fn tiny_tables_cost_false_positive_deliveries_not_results() {
        let w = world();
        let mut rng = Pcg64::new(2);
        let queries: Vec<QuerySpec> = (0..150).map(|_| w.sample_query(&mut rng)).collect();
        let mut small = QrpFloodSearch::new(&w, 3, 256); // heavily saturated
        let mut large = QrpFloodSearch::new(&w, 3, 16_384);
        let mut small_msgs = 0u64;
        let mut large_msgs = 0u64;
        for q in &queries {
            let a = small.search(&w, q, &mut rng);
            let b = large.search(&w, q, &mut rng);
            assert_eq!(a.success, b.success, "table size must not change results");
            small_msgs += a.messages;
            large_msgs += b.messages;
        }
        assert!(
            small_msgs >= large_msgs,
            "saturated tables deliver at least as many messages"
        );
    }

    #[test]
    fn maintenance_counts_leaf_uploads() {
        let w = world();
        let sys = QrpFloodSearch::new(&w, 3, 4096);
        // One upload per leaf-ultrapeer link: equals the number of edges
        // incident to leaves (leaves only connect to ultrapeers).
        let expected: u64 = (0..w.num_peers() as u32)
            .filter(|&p| w.topology.kinds[p as usize] == NodeKind::Leaf)
            .map(|p| w.topology.graph.degree(p) as u64)
            .sum();
        assert_eq!(sys.maintenance_messages(), expected);
    }

    #[test]
    fn engine_reuse_is_clean() {
        let w = world();
        let mut sys = QrpFloodSearch::new(&w, 2, 2048);
        let mut rng = Pcg64::new(3);
        let q = w.sample_query(&mut rng);
        let first = sys.search(&w, &q, &mut rng);
        for _ in 0..50 {
            let again = sys.search(&w, &q, &mut rng);
            assert_eq!(first.success, again.success);
            assert_eq!(first.messages, again.messages);
        }
    }
}
