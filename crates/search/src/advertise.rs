//! Advertisement-based search (ASAP, Cai/Gu/Wang ICPP'07 — the paper's
//! ref [21]).
//!
//! Where flooding pulls at query time, ASAP pushes at publish time: every
//! peer proactively sends a compact advertisement of its content to a
//! random subset of peers, and a query is answered from the *local*
//! advertisement store of the querying peer (plus a short walk among
//! peers whose stores it consults). The trade: queries are nearly free,
//! but advertisement placement is content-centric — it spreads what peers
//! *have*, with the same blind spot the paper diagnoses: coverage of a
//! term is proportional to how much content carries it, not to how often
//! users ask for it.

use crate::systems::{OverloadStats, SearchOutcome, SearchSystem};
use crate::world::{QuerySpec, SearchWorld};
use qcp_util::rng::Pcg64;
use qcp_util::{FxHashMap, FxHashSet};

/// Advertisement-based search system.
#[derive(Debug)]
pub struct AdvertiseSearch {
    /// Peers each advertisement is pushed to.
    pub fanout: usize,
    /// Steps of the consultation walk at query time.
    pub ttl: u32,
    /// Per peer: advertised (object → holder) entries received.
    store: Vec<FxHashMap<u32, u32>>,
    /// Push cost (messages) spent on advertisement placement.
    maintenance: u64,
}

impl AdvertiseSearch {
    /// Builds the system and performs the advertisement push: every peer
    /// advertises each of its objects to `fanout` random peers.
    pub fn new(world: &SearchWorld, fanout: usize, ttl: u32, seed: u64) -> Self {
        let n = world.num_peers();
        let mut rng = Pcg64::with_stream(seed, 0xad5);
        let mut store: Vec<FxHashMap<u32, u32>> = vec![FxHashMap::default(); n];
        let mut maintenance = 0u64;
        for peer in 0..n as u32 {
            for &obj in &world.peer_contents[peer as usize] {
                for target in rng.sample_distinct(n, fanout.min(n)) {
                    store[target].insert(obj, peer);
                    maintenance += 1;
                }
            }
        }
        Self {
            fanout,
            ttl,
            store,
            maintenance,
        }
    }

    /// Checks one peer's advertisement store (and own content) for a
    /// matching object; returns the holder if known.
    fn check(&self, world: &SearchWorld, peer: u32, matching: &[u32]) -> bool {
        if world.peer_answers(peer, matching) {
            return true;
        }
        let store = &self.store[peer as usize];
        matching.iter().any(|obj| store.contains_key(obj))
    }
}

impl SearchSystem for AdvertiseSearch {
    fn name(&self) -> String {
        format!("advertise(fanout={},ttl={})", self.fanout, self.ttl)
    }

    fn search(&mut self, world: &SearchWorld, query: &QuerySpec, rng: &mut Pcg64) -> SearchOutcome {
        let matching = world.matching_objects(&query.terms);
        if matching.is_empty() {
            return SearchOutcome {
                success: false,
                messages: 0,
                hops: None,
                faults: Default::default(),
                elapsed: 0,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        // Local store first, then a short random consultation walk.
        if self.check(world, query.source, &matching) {
            return SearchOutcome {
                success: true,
                messages: 0,
                hops: Some(0),
                faults: Default::default(),
                elapsed: 0,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        let graph = &world.topology.graph;
        let mut visited: FxHashSet<u32> = FxHashSet::default();
        visited.insert(query.source);
        let mut current = query.source;
        let mut messages = 0u64;
        for step in 1..=self.ttl {
            let neighbors = graph.neighbors(current);
            if neighbors.is_empty() {
                break;
            }
            let unvisited: Vec<u32> = neighbors
                .iter()
                .copied()
                .filter(|nb| !visited.contains(nb))
                .collect();
            let next = if unvisited.is_empty() {
                neighbors[rng.index(neighbors.len())]
            } else {
                unvisited[rng.index(unvisited.len())]
            };
            messages += 1;
            visited.insert(next);
            current = next;
            if self.check(world, current, &matching) {
                return SearchOutcome {
                    success: true,
                    messages,
                    hops: Some(step),
                    faults: Default::default(),
                    elapsed: 0,
                    deadline_exceeded: false,
                    overload: OverloadStats::default(),
                };
            }
        }
        SearchOutcome {
            success: false,
            messages,
            hops: None,
            faults: Default::default(),
            elapsed: 0,
            deadline_exceeded: false,
            overload: OverloadStats::default(),
        }
    }

    fn maintenance_messages(&self) -> u64 {
        self.maintenance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 500,
            num_objects: 4_000,
            num_terms: 5_000,
            head_size: 100,
            seed: 66,
            ..Default::default()
        })
    }

    #[test]
    fn advertisements_are_placed() {
        let w = world();
        let sys = AdvertiseSearch::new(&w, 8, 10, 1);
        let total_ads: usize = sys.store.iter().map(|s| s.len()).sum();
        assert!(total_ads > 1_000, "only {total_ads} ads placed");
        assert!(sys.maintenance_messages() > total_ads as u64 / 2);
        // Every advertised holder actually holds the object.
        for store in &sys.store {
            for (&obj, &holder) in store {
                assert!(w.placement.peer_holds(holder, obj));
            }
        }
    }

    #[test]
    fn local_store_hit_is_free() {
        let w = world();
        let sys = AdvertiseSearch::new(&w, 8, 10, 2);
        // Find a peer whose store advertises some object; query for it.
        let (peer, obj) = sys
            .store
            .iter()
            .enumerate()
            .find_map(|(p, s)| s.keys().next().map(|&o| (p as u32, o)))
            .expect("some advertisement exists");
        let q = QuerySpec {
            terms: w.object_terms[obj as usize].clone(),
            source: peer,
        };
        let mut sys = sys;
        let mut rng = Pcg64::new(3);
        let out = sys.search(&w, &q, &mut rng);
        assert!(out.success);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn beats_blind_walk_at_same_ttl() {
        let w = world();
        let mut rng = Pcg64::new(4);
        let queries: Vec<QuerySpec> = (0..300).map(|_| w.sample_query(&mut rng)).collect();
        let mut ads = AdvertiseSearch::new(&w, 8, 20, 5);
        let mut walk = crate::spec::SearchSpec::walk(1, 20).build(&w).into_walk();
        let mut ad_hits = 0;
        let mut walk_hits = 0;
        for q in &queries {
            if ads.search(&w, q, &mut rng).success {
                ad_hits += 1;
            }
            if walk.search(&w, q, &mut rng).success {
                walk_hits += 1;
            }
        }
        assert!(
            ad_hits > walk_hits,
            "advertisements ({ad_hits}) must beat blind walk ({walk_hits})"
        );
    }

    #[test]
    fn higher_fanout_helps() {
        let w = world();
        let mut rng = Pcg64::new(6);
        let queries: Vec<QuerySpec> = (0..300).map(|_| w.sample_query(&mut rng)).collect();
        let mut low = AdvertiseSearch::new(&w, 2, 15, 7);
        let mut high = AdvertiseSearch::new(&w, 16, 15, 7);
        let (mut lo, mut hi) = (0, 0);
        for q in &queries {
            if low.search(&w, q, &mut rng).success {
                lo += 1;
            }
            if high.search(&w, q, &mut rng).success {
                hi += 1;
            }
        }
        assert!(hi > lo, "fanout 16 ({hi}) must beat fanout 2 ({lo})");
        assert!(high.maintenance_messages() > low.maintenance_messages());
    }

    #[test]
    fn unsatisfiable_query_fails_free() {
        let w = world();
        let mut sys = AdvertiseSearch::new(&w, 4, 10, 8);
        let mut rng = Pcg64::new(9);
        let out = sys.search(
            &w,
            &QuerySpec {
                terms: vec![9_999_999],
                source: 0,
            },
            &mut rng,
        );
        assert!(!out.success);
        assert_eq!(out.messages, 0);
    }
}
