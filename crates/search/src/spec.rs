//! The unified search-system builder: one [`SearchSpec`] entry point
//! replacing the `new`/`with_faults` constructor pairs.
//!
//! ```
//! use qcp_search::{SearchSpec, SearchSystem};
//! use qcp_search::world::{SearchWorld, WorldConfig};
//! use qcp_util::rng::Pcg64;
//!
//! let world = SearchWorld::generate(&WorldConfig {
//!     num_peers: 200,
//!     num_objects: 1_000,
//!     num_terms: 2_000,
//!     head_size: 40,
//!     seed: 7,
//!     ..Default::default()
//! });
//! let mut flood = SearchSpec::flood(3).build(&world);
//! let mut rng = Pcg64::new(1);
//! let q = world.sample_query(&mut rng);
//! let out = flood.search(&world, &q, &mut rng);
//! assert!(out.messages > 0 || out.success);
//! ```
//!
//! Attach a fault context with [`SearchSpec::faults`], a repair schedule
//! with [`SearchSpec::maintenance`] (DHT-backed systems only), and an
//! instrumentation recorder with [`SearchSpec::recorder`]:
//!
//! ```ignore
//! let sys = SearchSpec::hybrid(2, 5, 42)
//!     .faults(ctx)
//!     .maintenance(MaintenanceSchedule::every(20))
//!     .recorder(MetricsRecorder::new())
//!     .build(&world);
//! ```
//!
//! The builder is the sole entry point (the `new`/`with_faults`
//! constructor pairs it replaced are gone); building is deterministic —
//! two identical specs produce bitwise-identical systems (pinned by
//! `rebuilds_are_bitwise_identical`).
//!
//! [`SearchSpec::replication`] attaches a replication plan to the
//! unstructured kinds: the built system searches over the plan's
//! replicated placement, records the plan's budget as `CopiesPlaced`,
//! and counts `CopiesHit` — queries that succeed against the replicated
//! placement but would have missed against the owner-only base.

use crate::hybrid::{DhtOnlySearch, HybridSearch};
use crate::systems::{
    ExpandingRingSearch, FaultContext, FloodSearch, MaintenanceSchedule, RandomWalkSearch,
    ReplicaSet, SearchOutcome, SearchSystem,
};
use crate::world::{QuerySpec, SearchWorld};
use qcp_faults::CapacityPlan;
use qcp_obs::{NoopRecorder, Recorder};
use qcp_overlay::ReplicationPlan;
use qcp_util::rng::Pcg64;
use qcp_vtime::Deadline;

/// Which system a [`SearchSpec`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// TTL-limited flooding.
    Flood { ttl: u32 },
    /// k-walker random walks.
    Walk { walkers: usize, ttl: u32 },
    /// Iterative-deepening ring floods.
    ExpandingRing { max_ttl: u32 },
    /// Flood-then-DHT hybrid.
    Hybrid {
        flood_ttl: u32,
        rare_threshold: u32,
        seed: u64,
    },
    /// Pure structured search.
    DhtOnly { seed: u64 },
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Flood { .. } => "flood",
            Kind::Walk { .. } => "walk",
            Kind::ExpandingRing { .. } => "expanding-ring",
            Kind::Hybrid { .. } => "hybrid",
            Kind::DhtOnly { .. } => "dht-only",
        }
    }
}

/// Builder for every search system in the crate's baseline suite.
///
/// Start from a kind constructor ([`Self::flood`], [`Self::walk`],
/// [`Self::expanding_ring`], [`Self::hybrid`], [`Self::dht_only`]),
/// chain optional attachments, then [`Self::build`] against a world.
/// The recorder defaults to [`NoopRecorder`], which monomorphizes all
/// instrumentation away — an unrecorded build is exactly the
/// pre-observability system.
#[derive(Debug)]
pub struct SearchSpec<R: Recorder = NoopRecorder> {
    kind: Kind,
    faults: Option<FaultContext>,
    maintenance: Option<MaintenanceSchedule>,
    deadline: Option<Deadline>,
    capacity: Option<CapacityPlan>,
    replication: Option<ReplicationPlan>,
    recorder: R,
}

impl SearchSpec<NoopRecorder> {
    fn of(kind: Kind) -> Self {
        Self {
            kind,
            faults: None,
            maintenance: None,
            deadline: None,
            capacity: None,
            replication: None,
            recorder: NoopRecorder,
        }
    }

    /// Gnutella-style flooding with the given TTL.
    pub fn flood(ttl: u32) -> Self {
        Self::of(Kind::Flood { ttl })
    }

    /// `walkers` random walkers of `ttl` steps each.
    pub fn walk(walkers: usize, ttl: u32) -> Self {
        Self::of(Kind::Walk { walkers, ttl })
    }

    /// Expanding-ring (iterative deepening) floods up to `max_ttl`.
    pub fn expanding_ring(max_ttl: u32) -> Self {
        Self::of(Kind::ExpandingRing { max_ttl })
    }

    /// Flood-then-DHT hybrid (Loo et al. rare-query rule).
    pub fn hybrid(flood_ttl: u32, rare_threshold: u32, seed: u64) -> Self {
        Self::of(Kind::Hybrid {
            flood_ttl,
            rare_threshold,
            seed,
        })
    }

    /// Pure structured (Chord inverted-index) search.
    pub fn dht_only(seed: u64) -> Self {
        Self::of(Kind::DhtOnly { seed })
    }
}

impl<R: Recorder> SearchSpec<R> {
    /// Runs the system under `faults`: flood/walk phases are
    /// fire-and-forget, DHT phases request/response with
    /// retry/backoff per `faults.policy`.
    pub fn faults(mut self, faults: FaultContext) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches a mid-workload repair schedule. Only the DHT-backed
    /// kinds ([`Self::hybrid`], [`Self::dht_only`]) run repair passes;
    /// [`Self::build`] rejects the attachment on any other kind.
    pub fn maintenance(mut self, schedule: MaintenanceSchedule) -> Self {
        self.maintenance = Some(schedule);
        self
    }

    /// Attaches a virtual-time deadline: the system answers with
    /// whatever it has by `deadline.ticks` ticks into each query and
    /// reports `deadline_exceeded` when the clock — not the search —
    /// ended it. Deadline queries run on the event-driven engines, so a
    /// fault context is required ([`Self::build`] rejects a deadline
    /// without one); attach `FaultPlan::none` for a pure-latency run.
    ///
    /// [`FaultPlan::none`]: qcp_faults::FaultPlan::none
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a capacity plan: every node serves its queue at the
    /// plan's per-node rate behind a bounded FIFO, overflow is shed by
    /// the plan's policy, and query ingress passes token-style admission
    /// control. Outcomes gain [`OverloadStats`] and compose with
    /// [`Self::deadline`] best-so-far answers. Capacity runs on the
    /// event engines, so it requires both a fault context and a deadline
    /// ([`Self::build`] rejects anything less); an
    /// [`unlimited`](CapacityPlan::unlimited) plan is bitwise the plain
    /// deadline path.
    ///
    /// [`OverloadStats`]: crate::systems::OverloadStats
    pub fn capacity(mut self, capacity: CapacityPlan) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Attaches a replication plan: [`Self::build`] applies the plan's
    /// scheme to the world's placement once (an exact-budget,
    /// deterministic `Placement → Placement` transform — see
    /// [`ReplicationPlan`]) and the built system searches over the
    /// replicated holders. The plan's budget is recorded as
    /// `CopiesPlaced`; every query that succeeds against the replicated
    /// placement but would have missed against the owner-only base (the
    /// identical engine run, replayed recorder-free) counts one
    /// `CopiesHit` — the replication-rescued successes.
    ///
    /// Only the unstructured kinds ([`Self::flood`], [`Self::walk`],
    /// [`Self::expanding_ring`]) accept a plan; [`Self::build`] rejects
    /// it elsewhere. The paper's counterfactual concerns the
    /// unstructured phase — the DHT-backed kinds publish a complete
    /// index and re-replicate through maintenance instead.
    pub fn replication(mut self, plan: ReplicationPlan) -> Self {
        self.replication = Some(plan);
        self
    }

    /// Swaps in an instrumentation recorder (type-changing: the built
    /// system is monomorphized over the recorder, so a
    /// [`NoopRecorder`] build stays zero-overhead).
    pub fn recorder<R2: Recorder>(self, recorder: R2) -> SearchSpec<R2> {
        SearchSpec {
            kind: self.kind,
            faults: self.faults,
            maintenance: self.maintenance,
            deadline: self.deadline,
            capacity: self.capacity,
            replication: self.replication,
            recorder,
        }
    }

    /// Builds the described system against `world`.
    pub fn build(self, world: &SearchWorld) -> Built<R> {
        let SearchSpec {
            kind,
            faults,
            maintenance,
            deadline,
            capacity,
            replication,
            recorder,
        } = self;
        assert!(
            maintenance.is_none() || matches!(kind, Kind::Hybrid { .. } | Kind::DhtOnly { .. }),
            "maintenance schedules apply only to the DHT-backed systems, not {}",
            kind.name()
        );
        assert!(
            replication.is_none()
                || matches!(
                    kind,
                    Kind::Flood { .. } | Kind::Walk { .. } | Kind::ExpandingRing { .. }
                ),
            "replication plans apply only to the unstructured systems, not {}",
            kind.name()
        );
        assert!(
            deadline.is_none() || faults.is_some(),
            "a deadline needs a fault context for its latency model \
             (attach FaultPlan::none for a pure-latency run)"
        );
        assert!(
            capacity.is_none() || (faults.is_some() && deadline.is_some()),
            "a capacity plan runs on the event engines: attach a fault \
             context and a deadline first"
        );
        let replicas = replication.map(|plan| ReplicaSet::build(world, &plan));
        match kind {
            Kind::Flood { ttl } => Built::Flood(FloodSearch::assemble(
                world, ttl, faults, deadline, capacity, replicas, recorder,
            )),
            Kind::Walk { walkers, ttl } => Built::Walk(RandomWalkSearch::assemble(
                walkers, ttl, faults, deadline, capacity, replicas, recorder,
            )),
            Kind::ExpandingRing { max_ttl } => Built::ExpandingRing(ExpandingRingSearch::assemble(
                world, max_ttl, faults, deadline, capacity, replicas, recorder,
            )),
            Kind::Hybrid {
                flood_ttl,
                rare_threshold,
                seed,
            } => {
                let mut sys = HybridSearch::assemble(
                    world,
                    flood_ttl,
                    rare_threshold,
                    seed,
                    faults,
                    deadline,
                    capacity,
                    recorder,
                );
                if let Some(m) = maintenance {
                    sys = sys.with_maintenance(m);
                }
                Built::Hybrid(sys)
            }
            Kind::DhtOnly { seed } => {
                let mut sys =
                    DhtOnlySearch::assemble(world, seed, faults, deadline, capacity, recorder);
                if let Some(m) = maintenance {
                    sys = sys.with_maintenance(m);
                }
                Built::DhtOnly(sys)
            }
        }
    }
}

/// A system built from a [`SearchSpec`]: use it directly through
/// [`SearchSystem`] (it delegates to the inner system), or unwrap the
/// concrete type with the `into_*` extractors when system-specific
/// reporting fields are needed.
#[derive(Debug)]
pub enum Built<R: Recorder = NoopRecorder> {
    /// [`SearchSpec::flood`].
    Flood(FloodSearch<R>),
    /// [`SearchSpec::walk`].
    Walk(RandomWalkSearch<R>),
    /// [`SearchSpec::expanding_ring`].
    ExpandingRing(ExpandingRingSearch<R>),
    /// [`SearchSpec::hybrid`].
    Hybrid(HybridSearch<R>),
    /// [`SearchSpec::dht_only`].
    DhtOnly(DhtOnlySearch<R>),
}

impl<R: Recorder> Built<R> {
    fn kind_name(&self) -> &'static str {
        match self {
            Built::Flood(_) => "flood",
            Built::Walk(_) => "walk",
            Built::ExpandingRing(_) => "expanding-ring",
            Built::Hybrid(_) => "hybrid",
            Built::DhtOnly(_) => "dht-only",
        }
    }

    /// Unwraps a [`SearchSpec::flood`] build.
    pub fn into_flood(self) -> FloodSearch<R> {
        match self {
            Built::Flood(s) => s,
            // qcplint: allow(panic) — extractor misuse is a programming
            // error; fail fast with the actual kind.
            other => panic!("built system is {}, not flood", other.kind_name()),
        }
    }

    /// Unwraps a [`SearchSpec::walk`] build.
    pub fn into_walk(self) -> RandomWalkSearch<R> {
        match self {
            Built::Walk(s) => s,
            // qcplint: allow(panic) — extractor misuse fails fast.
            other => panic!("built system is {}, not walk", other.kind_name()),
        }
    }

    /// Unwraps a [`SearchSpec::expanding_ring`] build.
    pub fn into_expanding_ring(self) -> ExpandingRingSearch<R> {
        match self {
            Built::ExpandingRing(s) => s,
            // qcplint: allow(panic) — extractor misuse fails fast.
            other => panic!("built system is {}, not expanding-ring", other.kind_name()),
        }
    }

    /// Unwraps a [`SearchSpec::hybrid`] build.
    pub fn into_hybrid(self) -> HybridSearch<R> {
        match self {
            Built::Hybrid(s) => s,
            // qcplint: allow(panic) — extractor misuse fails fast.
            other => panic!("built system is {}, not hybrid", other.kind_name()),
        }
    }

    /// Unwraps a [`SearchSpec::dht_only`] build.
    pub fn into_dht_only(self) -> DhtOnlySearch<R> {
        match self {
            Built::DhtOnly(s) => s,
            // qcplint: allow(panic) — extractor misuse fails fast.
            other => panic!("built system is {}, not dht-only", other.kind_name()),
        }
    }

    /// The recorder the inner system has been writing into.
    pub fn recorder(&self) -> &R {
        match self {
            Built::Flood(s) => s.recorder(),
            Built::Walk(s) => s.recorder(),
            Built::ExpandingRing(s) => s.recorder(),
            Built::Hybrid(s) => s.recorder(),
            Built::DhtOnly(s) => s.recorder(),
        }
    }

    /// Consumes the system, returning its recorder.
    pub fn into_recorder(self) -> R {
        match self {
            Built::Flood(s) => s.into_recorder(),
            Built::Walk(s) => s.into_recorder(),
            Built::ExpandingRing(s) => s.into_recorder(),
            Built::Hybrid(s) => s.into_recorder(),
            Built::DhtOnly(s) => s.into_recorder(),
        }
    }
}

impl<R: Recorder> SearchSystem for Built<R> {
    fn name(&self) -> String {
        match self {
            Built::Flood(s) => s.name(),
            Built::Walk(s) => s.name(),
            Built::ExpandingRing(s) => s.name(),
            Built::Hybrid(s) => s.name(),
            Built::DhtOnly(s) => s.name(),
        }
    }

    fn search(&mut self, world: &SearchWorld, query: &QuerySpec, rng: &mut Pcg64) -> SearchOutcome {
        match self {
            Built::Flood(s) => s.search(world, query, rng),
            Built::Walk(s) => s.search(world, query, rng),
            Built::ExpandingRing(s) => s.search(world, query, rng),
            Built::Hybrid(s) => s.search(world, query, rng),
            Built::DhtOnly(s) => s.search(world, query, rng),
        }
    }

    fn maintenance_messages(&self) -> u64 {
        match self {
            Built::Flood(s) => s.maintenance_messages(),
            Built::Walk(s) => s.maintenance_messages(),
            Built::ExpandingRing(s) => s.maintenance_messages(),
            Built::Hybrid(s) => s.maintenance_messages(),
            Built::DhtOnly(s) => s.maintenance_messages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use qcp_faults::{FaultConfig, FaultPlan, RetryPolicy};
    use qcp_obs::{Counter, Event, Kernel, MetricsRecorder};

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 400,
            num_objects: 3_000,
            num_terms: 4_000,
            head_size: 80,
            seed: 99,
            ..Default::default()
        })
    }

    fn ctx(seed: u64) -> FaultContext {
        FaultContext::new(
            FaultPlan::build(
                400,
                &FaultConfig {
                    loss: 0.2,
                    churn: 0.2,
                    seed,
                    ..Default::default()
                },
            ),
            RetryPolicy::default(),
            seed ^ 0x0c7e,
        )
    }

    fn queries(w: &SearchWorld, n: usize) -> Vec<QuerySpec> {
        let mut rng = Pcg64::new(13);
        (0..n).map(|_| w.sample_query(&mut rng)).collect()
    }

    /// Runs a query set and collects the raw outcomes.
    fn outcomes(
        sys: &mut dyn SearchSystem,
        w: &SearchWorld,
        qs: &[QuerySpec],
    ) -> Vec<SearchOutcome> {
        let mut rng = Pcg64::new(77);
        qs.iter().map(|q| sys.search(w, q, &mut rng)).collect()
    }

    /// Building is deterministic: two identical specs produce systems
    /// with bitwise-identical outcome streams, for every kind, faulty
    /// and not. (Successor of the retired shim==builder pins, now that
    /// the builder is the sole entry point.)
    #[test]
    fn rebuilds_are_bitwise_identical() {
        let w = world();
        let qs = queries(&w, 60);
        // Two independent builds of the same spec, per kind.
        let pairs: Vec<(Box<dyn SearchSystem>, Box<dyn SearchSystem>)> = vec![
            (
                Box::new(SearchSpec::flood(3).build(&w)),
                Box::new(SearchSpec::flood(3).build(&w)),
            ),
            (
                Box::new(SearchSpec::flood(3).faults(ctx(5)).build(&w)),
                Box::new(SearchSpec::flood(3).faults(ctx(5)).build(&w)),
            ),
            (
                Box::new(SearchSpec::walk(4, 20).build(&w)),
                Box::new(SearchSpec::walk(4, 20).build(&w)),
            ),
            (
                Box::new(SearchSpec::walk(4, 20).faults(ctx(6)).build(&w)),
                Box::new(SearchSpec::walk(4, 20).faults(ctx(6)).build(&w)),
            ),
            (
                Box::new(SearchSpec::expanding_ring(4).build(&w)),
                Box::new(SearchSpec::expanding_ring(4).build(&w)),
            ),
            (
                Box::new(SearchSpec::expanding_ring(4).faults(ctx(7)).build(&w)),
                Box::new(SearchSpec::expanding_ring(4).faults(ctx(7)).build(&w)),
            ),
            (
                Box::new(SearchSpec::hybrid(2, 5, 11).build(&w)),
                Box::new(SearchSpec::hybrid(2, 5, 11).build(&w)),
            ),
            (
                Box::new(SearchSpec::hybrid(2, 5, 11).faults(ctx(8)).build(&w)),
                Box::new(SearchSpec::hybrid(2, 5, 11).faults(ctx(8)).build(&w)),
            ),
            (
                Box::new(SearchSpec::dht_only(9).build(&w)),
                Box::new(SearchSpec::dht_only(9).build(&w)),
            ),
            (
                Box::new(SearchSpec::dht_only(9).faults(ctx(9)).build(&w)),
                Box::new(SearchSpec::dht_only(9).faults(ctx(9)).build(&w)),
            ),
        ];
        for (mut first, mut second) in pairs {
            assert_eq!(first.name(), second.name());
            let a = outcomes(first.as_mut(), &w, &qs);
            let b = outcomes(second.as_mut(), &w, &qs);
            assert_eq!(a, b, "rebuild diverged for {}", first.name());
        }
    }

    /// Extractors hand back the concrete system with its reporting
    /// fields intact.
    #[test]
    fn extractors_return_concrete_systems() {
        let w = world();
        let flood = SearchSpec::flood(3).build(&w).into_flood();
        assert_eq!(flood.ttl, 3);
        let walk = SearchSpec::walk(2, 9).build(&w).into_walk();
        assert_eq!((walk.walkers, walk.ttl), (2, 9));
        let ring = SearchSpec::expanding_ring(5)
            .build(&w)
            .into_expanding_ring();
        assert_eq!(ring.max_ttl, 5);
        let hybrid = SearchSpec::hybrid(2, 5, 1).build(&w).into_hybrid();
        assert_eq!((hybrid.flood_ttl, hybrid.rare_threshold), (2, 5));
        let _ = SearchSpec::dht_only(1).build(&w).into_dht_only();
    }

    #[test]
    #[should_panic(expected = "not flood")]
    fn wrong_extractor_fails_fast() {
        let w = world();
        let _ = SearchSpec::walk(1, 5).build(&w).into_flood();
    }

    #[test]
    #[should_panic(expected = "maintenance schedules apply only")]
    fn maintenance_on_flood_rejected() {
        let w = world();
        let _ = SearchSpec::flood(3)
            .maintenance(MaintenanceSchedule::every(10))
            .build(&w);
    }

    /// Recording is write-only: a [`MetricsRecorder`] build returns the
    /// same outcome stream (bitwise) as the default `NoopRecorder`
    /// build, for every kind, with and without faults.
    #[test]
    fn metrics_recorder_never_perturbs_outcomes() {
        let w = world();
        let qs = queries(&w, 50);
        let specs: Vec<(Box<dyn SearchSystem>, Box<dyn SearchSystem>)> = vec![
            (
                Box::new(SearchSpec::flood(3).build(&w)),
                Box::new(
                    SearchSpec::flood(3)
                        .recorder(MetricsRecorder::new())
                        .build(&w),
                ),
            ),
            (
                Box::new(SearchSpec::flood(3).faults(ctx(21)).build(&w)),
                Box::new(
                    SearchSpec::flood(3)
                        .faults(ctx(21))
                        .recorder(MetricsRecorder::new())
                        .build(&w),
                ),
            ),
            (
                Box::new(SearchSpec::walk(4, 20).faults(ctx(22)).build(&w)),
                Box::new(
                    SearchSpec::walk(4, 20)
                        .faults(ctx(22))
                        .recorder(MetricsRecorder::new())
                        .build(&w),
                ),
            ),
            (
                Box::new(SearchSpec::expanding_ring(4).faults(ctx(23)).build(&w)),
                Box::new(
                    SearchSpec::expanding_ring(4)
                        .faults(ctx(23))
                        .recorder(MetricsRecorder::new())
                        .build(&w),
                ),
            ),
            (
                Box::new(SearchSpec::hybrid(2, 5, 11).faults(ctx(24)).build(&w)),
                Box::new(
                    SearchSpec::hybrid(2, 5, 11)
                        .faults(ctx(24))
                        .recorder(MetricsRecorder::new())
                        .build(&w),
                ),
            ),
            (
                Box::new(SearchSpec::dht_only(9).faults(ctx(25)).build(&w)),
                Box::new(
                    SearchSpec::dht_only(9)
                        .faults(ctx(25))
                        .recorder(MetricsRecorder::new())
                        .build(&w),
                ),
            ),
        ];
        for (mut plain, mut recorded) in specs {
            let name = plain.name();
            let a = outcomes(plain.as_mut(), &w, &qs);
            let b = outcomes(recorded.as_mut(), &w, &qs);
            assert_eq!(a, b, "recording perturbed outcomes for {name}");
        }
    }

    /// Recorded message totals reconcile exactly with the outcome
    /// stream's message counts, per system kind.
    #[test]
    fn recorded_messages_reconcile_with_outcomes() {
        let w = world();
        let qs = queries(&w, 50);
        // Flood: everything lands under Kernel::Flood.
        let mut flood = SearchSpec::flood(3)
            .faults(ctx(31))
            .recorder(MetricsRecorder::new())
            .build(&w)
            .into_flood();
        let out = outcomes(&mut flood, &w, &qs);
        let total: u64 = out.iter().map(|o| o.messages).sum();
        let rec = flood.recorder();
        assert_eq!(rec.total(Kernel::Flood, Counter::Messages), total);
        assert_eq!(rec.spans(Kernel::Flood), qs.len() as u64);
        let hits = out.iter().filter(|o| o.success).count() as u64;
        let dead = rec.event_count(Kernel::Flood, Event::DeadSource);
        assert_eq!(rec.event_count(Kernel::Flood, Event::Hit), hits);
        assert_eq!(
            rec.event_count(Kernel::Flood, Event::Miss) + dead + hits,
            qs.len() as u64
        );
        // Walk.
        let mut walk = SearchSpec::walk(4, 20)
            .faults(ctx(32))
            .recorder(MetricsRecorder::new())
            .build(&w)
            .into_walk();
        let out = outcomes(&mut walk, &w, &qs);
        let total: u64 = out.iter().map(|o| o.messages).sum();
        assert_eq!(
            walk.recorder().total(Kernel::Walk, Counter::Messages),
            total
        );
        // Hybrid: flood + chord-lookup kernels partition the cost.
        let mut hybrid = SearchSpec::hybrid(2, 5, 11)
            .faults(ctx(33))
            .recorder(MetricsRecorder::new())
            .build(&w)
            .into_hybrid();
        let out = outcomes(&mut hybrid, &w, &qs);
        let total: u64 = out.iter().map(|o| o.messages).sum();
        let rec = hybrid.recorder();
        assert_eq!(
            rec.total(Kernel::Flood, Counter::Messages)
                + rec.total(Kernel::ChordLookup, Counter::Messages),
            total
        );
        assert_eq!(
            rec.event_count(Kernel::ChordLookup, Event::Fallback),
            hybrid.fallbacks
        );
        // DHT-only: lookups under ChordLookup; fault totals mirrored.
        let mut dht = SearchSpec::dht_only(9)
            .faults(ctx(34))
            .recorder(MetricsRecorder::new())
            .build(&w)
            .into_dht_only();
        let out = outcomes(&mut dht, &w, &qs);
        let total: u64 = out.iter().map(|o| o.messages).sum();
        let mut faults = qcp_faults::FaultStats::default();
        for o in &out {
            faults.absorb(&o.faults);
        }
        let rec = dht.recorder();
        assert_eq!(rec.total(Kernel::ChordLookup, Counter::Messages), total);
        assert_eq!(rec.fault_stats(Kernel::ChordLookup), faults);
    }

    /// A deadline without a fault context has no latency model to run
    /// against: `build` rejects it.
    #[test]
    #[should_panic(expected = "deadline needs a fault context")]
    fn deadline_without_faults_rejected() {
        let w = world();
        let _ = SearchSpec::flood(3)
            .deadline(qcp_vtime::Deadline::after(10))
            .build(&w);
    }

    /// `Built` delegates maintenance accounting and supports the
    /// maintenance attachment for DHT-backed kinds.
    #[test]
    fn built_delegates_maintenance() {
        let w = world();
        let qs = queries(&w, 60);
        let mut sys = SearchSpec::dht_only(9)
            .faults(ctx(41))
            .maintenance(MaintenanceSchedule::every(10))
            .recorder(MetricsRecorder::new())
            .build(&w);
        let before = sys.maintenance_messages();
        let _ = outcomes(&mut sys, &w, &qs);
        assert!(sys.maintenance_messages() >= before);
        let dht = sys.into_dht_only();
        assert!(dht.maintenance_passes() > 0);
        // Repair passes recorded one span each.
        assert_eq!(
            dht.recorder().spans(Kernel::Repair),
            dht.maintenance_passes()
        );
    }
}

#[cfg(test)]
mod deadline_tests {
    use super::*;
    use crate::world::WorldConfig;
    use qcp_faults::{FaultConfig, FaultPlan, RetryPolicy};
    use qcp_obs::{Event, Kernel, MetricsRecorder};
    use qcp_vtime::Deadline;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 400,
            num_objects: 3_000,
            num_terms: 4_000,
            head_size: 80,
            seed: 99,
            ..Default::default()
        })
    }

    /// A fault context with real link latency (and optionally loss).
    fn latent_ctx(mean_latency: u32, loss: f64, seed: u64) -> FaultContext {
        FaultContext::new(
            FaultPlan::build(
                400,
                &FaultConfig {
                    loss,
                    mean_latency,
                    seed,
                    ..Default::default()
                },
            ),
            RetryPolicy::default(),
            seed ^ 0x0c7e,
        )
    }

    fn none_ctx() -> FaultContext {
        FaultContext::new(FaultPlan::none(400), RetryPolicy::default(), 1)
    }

    fn queries(w: &SearchWorld, n: usize) -> Vec<QuerySpec> {
        let mut rng = Pcg64::new(13);
        (0..n).map(|_| w.sample_query(&mut rng)).collect()
    }

    fn outcomes(
        sys: &mut dyn SearchSystem,
        w: &SearchWorld,
        qs: &[QuerySpec],
    ) -> Vec<SearchOutcome> {
        let mut rng = Pcg64::new(77);
        qs.iter().map(|q| sys.search(w, q, &mut rng)).collect()
    }

    /// Under a unit-latency fault-free plan with a generous deadline the
    /// event flood is bitwise the census, so the deadline path agrees
    /// with the synchronous faulty path on every reported figure, and
    /// `elapsed` is exactly the hit hop.
    #[test]
    fn generous_deadline_flood_matches_the_synchronous_path() {
        let w = world();
        let qs = queries(&w, 80);
        let mut sync = SearchSpec::flood(3).faults(none_ctx()).build(&w);
        let mut timed = SearchSpec::flood(3)
            .faults(none_ctx())
            .deadline(Deadline::after(1_000_000))
            .build(&w);
        let a = outcomes(&mut sync, &w, &qs);
        let b = outcomes(&mut timed, &w, &qs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.success, y.success);
            assert_eq!(x.messages, y.messages);
            assert_eq!(x.hops, y.hops);
            assert!(!y.deadline_exceeded);
            if let Some(h) = y.hops {
                assert_eq!(y.elapsed, u64::from(h), "unit latency: ticks == hops");
            }
        }
    }

    /// Same agreement for the DHT-only system: with nothing dropped and
    /// unit latency, the timed engine routes exactly like the retry
    /// engine and no timer ever outruns a reply.
    #[test]
    fn generous_deadline_dht_matches_the_synchronous_path() {
        let w = world();
        let qs = queries(&w, 60);
        let mut sync = SearchSpec::dht_only(9).faults(none_ctx()).build(&w);
        let mut timed = SearchSpec::dht_only(9)
            .faults(none_ctx())
            .deadline(Deadline::after(1_000_000))
            .build(&w);
        let a = outcomes(&mut sync, &w, &qs);
        let b = outcomes(&mut timed, &w, &qs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.success, y.success);
            assert_eq!(x.messages, y.messages);
            assert_eq!(x.hops, y.hops);
            assert!(!y.deadline_exceeded);
        }
    }

    /// Every deadline system is deterministic: identical outcome streams
    /// on a re-run, for all five kinds, under latency + loss.
    #[test]
    fn deadline_systems_are_deterministic() {
        let w = world();
        let qs = queries(&w, 40);
        let build: Vec<fn() -> SearchSpec> = vec![
            || SearchSpec::flood(3),
            || SearchSpec::walk(4, 20),
            || SearchSpec::expanding_ring(4),
            || SearchSpec::hybrid(2, 5, 11),
            || SearchSpec::dht_only(9),
        ];
        for mk in build {
            let run = || {
                let mut sys = mk()
                    .faults(latent_ctx(4, 0.1, 31))
                    .deadline(Deadline::after(48))
                    .build(&w);
                outcomes(&mut sys, &w, &qs)
            };
            let a = run();
            assert_eq!(a, run(), "deadline path must be deterministic");
            assert!(
                a.iter().all(|o| o.elapsed <= 48 + 8 * 2),
                "elapsed can overshoot the deadline by at most one in-flight reply"
            );
        }
    }

    /// Tightening the deadline only costs success; loosening it only
    /// retires deadline misses. The hybrid degrades to explicit
    /// `deadline_exceeded` outcomes that still carry partial results.
    #[test]
    fn hybrid_degrades_monotonically_with_the_deadline() {
        let w = world();
        let qs = queries(&w, 120);
        let run = |ticks: u64| {
            let mut sys = SearchSpec::hybrid(2, 5, 11)
                .faults(latent_ctx(4, 0.0, 7))
                .deadline(Deadline::after(ticks))
                .build(&w);
            let out = outcomes(&mut sys, &w, &qs);
            let hits = out.iter().filter(|o| o.success).count();
            let missed = out.iter().filter(|o| o.deadline_exceeded).count();
            (hits, missed, out)
        };
        let (hits_tight, missed_tight, _) = run(8);
        let (hits_mid, missed_mid, out_mid) = run(64);
        let (hits_loose, missed_loose, _) = run(100_000);
        assert!(hits_tight <= hits_mid && hits_mid <= hits_loose);
        assert!(missed_tight >= missed_mid && missed_mid >= missed_loose);
        assert_eq!(missed_loose, 0, "no budget pressure, no misses");
        assert!(missed_tight > 0, "8 ticks cannot finish a DHT fallback");
        // Partial results: a mid-budget miss can still answer.
        assert!(
            out_mid
                .iter()
                .any(|o| o.deadline_exceeded && (o.success || o.messages > 0)),
            "deadline misses must surface best-so-far work"
        );
    }

    /// Recording the deadline path is write-only (outcomes bitwise equal
    /// to the Noop build) and the recorder sees the DeadlineExceeded
    /// events plus a populated time histogram.
    #[test]
    fn deadline_recording_is_write_only_and_reconciles() {
        let w = world();
        let qs = queries(&w, 80);
        let mut plain = SearchSpec::dht_only(9)
            .faults(latent_ctx(6, 0.1, 17))
            .deadline(Deadline::after(40))
            .build(&w);
        let mut recorded = SearchSpec::dht_only(9)
            .faults(latent_ctx(6, 0.1, 17))
            .deadline(Deadline::after(40))
            .recorder(MetricsRecorder::new())
            .build(&w);
        let a = outcomes(&mut plain, &w, &qs);
        let b = outcomes(&mut recorded, &w, &qs);
        assert_eq!(a, b, "recording must not perturb deadline outcomes");
        let rec = recorded.into_recorder();
        let missed = a.iter().filter(|o| o.deadline_exceeded).count() as u64;
        assert_eq!(
            rec.event_count(Kernel::ChordLookup, Event::DeadlineExceeded),
            missed
        );
        let successes: Vec<&SearchOutcome> = a.iter().filter(|o| o.success).collect();
        assert_eq!(
            rec.time_weight(Kernel::ChordLookup),
            successes.len() as u64,
            "one time-to-first-hit sample per success"
        );
        let mass: u64 = rec
            .time_histogram(Kernel::ChordLookup)
            .iter()
            .enumerate()
            .map(|(i, &n)| i as u64 * n)
            .sum();
        let expect: u64 = successes.iter().map(|o| o.elapsed).sum();
        assert_eq!(mass, expect, "histogram mass is the summed hit times");
    }

    /// The walk deadline path stops walkers at the cutoff: elapsed and
    /// messages are bounded, and a loose deadline strictly dominates a
    /// tight one on success.
    #[test]
    fn walk_deadline_truncates_and_degrades() {
        let w = world();
        let qs = queries(&w, 100);
        let run = |ticks: u64| {
            let mut sys = SearchSpec::walk(4, 30)
                .faults(latent_ctx(5, 0.0, 23))
                .deadline(Deadline::after(ticks))
                .build(&w);
            outcomes(&mut sys, &w, &qs)
        };
        let tight = run(10);
        let loose = run(100_000);
        let hits = |v: &[SearchOutcome]| v.iter().filter(|o| o.success).count();
        assert!(hits(&tight) <= hits(&loose));
        assert!(tight.iter().all(|o| o.elapsed <= 10));
        assert!(loose.iter().all(|o| !o.deadline_exceeded));
        assert!(
            tight.iter().any(|o| o.deadline_exceeded),
            "10 ticks at mean latency 5 must truncate some walks"
        );
    }

    /// The expanding ring spends its budget ring by ring: with a tight
    /// deadline the deep rings never run, so rare (distant) content is
    /// the first casualty — the paper's query-centric trade-off under a
    /// clock.
    #[test]
    fn expanding_ring_deadline_limits_depth() {
        let w = world();
        let qs = queries(&w, 100);
        let run = |ticks: u64| {
            let mut sys = SearchSpec::expanding_ring(5)
                .faults(latent_ctx(4, 0.0, 29))
                .deadline(Deadline::after(ticks))
                .build(&w)
                .into_expanding_ring();
            let out = outcomes(&mut sys, &w, &qs);
            (out, sys.rings_attempted)
        };
        let (tight, rings_tight) = run(12);
        let (loose, rings_loose) = run(100_000);
        let hits = |v: &[SearchOutcome]| v.iter().filter(|o| o.success).count();
        assert!(hits(&tight) <= hits(&loose));
        assert!(
            rings_tight < rings_loose,
            "budget pressure must cut rings: {rings_tight} vs {rings_loose}"
        );
        assert!(tight.iter().any(|o| o.deadline_exceeded));
        assert!(loose.iter().all(|o| !o.deadline_exceeded));
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;
    use crate::systems::OverloadStats;
    use crate::world::WorldConfig;
    use qcp_faults::{
        CapacityConfig, CapacityModel, CapacityPlan, FaultConfig, FaultPlan, RetryPolicy,
        ShedPolicy,
    };
    use qcp_obs::{Counter, Event, Kernel, MetricsRecorder};
    use qcp_vtime::Deadline;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 400,
            num_objects: 3_000,
            num_terms: 4_000,
            head_size: 80,
            seed: 99,
            ..Default::default()
        })
    }

    fn latent_ctx(mean_latency: u32, loss: f64, seed: u64) -> FaultContext {
        FaultContext::new(
            FaultPlan::build(
                400,
                &FaultConfig {
                    loss,
                    mean_latency,
                    seed,
                    ..Default::default()
                },
            ),
            RetryPolicy::default(),
            seed ^ 0x0c7e,
        )
    }

    fn heavy_cap(load: f64, seed: u64) -> CapacityPlan {
        CapacityPlan::build(&CapacityConfig {
            offered_load: load,
            queue_bound: 4,
            policy: ShedPolicy::DropNewest,
            model: CapacityModel::GiaLadder,
            seed,
        })
    }

    fn queries(w: &SearchWorld, n: usize) -> Vec<QuerySpec> {
        let mut rng = Pcg64::new(13);
        (0..n).map(|_| w.sample_query(&mut rng)).collect()
    }

    fn outcomes(
        sys: &mut dyn SearchSystem,
        w: &SearchWorld,
        qs: &[QuerySpec],
    ) -> Vec<SearchOutcome> {
        let mut rng = Pcg64::new(77);
        qs.iter().map(|q| sys.search(w, q, &mut rng)).collect()
    }

    fn all_kinds() -> Vec<fn() -> SearchSpec> {
        vec![
            || SearchSpec::flood(3),
            || SearchSpec::walk(4, 20),
            || SearchSpec::expanding_ring(4),
            || SearchSpec::hybrid(2, 5, 11),
            || SearchSpec::dht_only(9),
        ]
    }

    /// An unlimited capacity plan is the plain deadline path, bitwise,
    /// for every system kind: same outcomes, all-zero overload stats.
    #[test]
    fn unlimited_capacity_is_bitwise_the_deadline_path() {
        let w = world();
        let qs = queries(&w, 40);
        for mk in all_kinds() {
            let mut plain = mk()
                .faults(latent_ctx(4, 0.1, 31))
                .deadline(Deadline::after(48))
                .build(&w);
            let mut capped = mk()
                .faults(latent_ctx(4, 0.1, 31))
                .deadline(Deadline::after(48))
                .capacity(CapacityPlan::unlimited())
                .build(&w);
            let a = outcomes(&mut plain, &w, &qs);
            let b = outcomes(&mut capped, &w, &qs);
            assert_eq!(a, b, "unlimited capacity must be a perfect no-op");
            assert!(b.iter().all(|o| o.overload == OverloadStats::default()));
        }
    }

    /// A zero-tick deadline is the degenerate endpoint: every system
    /// answers immediately with best-so-far (nothing, usually), charges
    /// zero virtual time, and marks the cut-off explicitly.
    #[test]
    fn zero_tick_deadline_degrades_immediately_on_all_systems() {
        let w = world();
        let qs = queries(&w, 60);
        for mk in all_kinds() {
            let run = || {
                let mut sys = mk()
                    .faults(latent_ctx(4, 0.0, 31))
                    .deadline(Deadline::after(0))
                    .build(&w);
                outcomes(&mut sys, &w, &qs)
            };
            let out = run();
            let name = mk().build(&w).name();
            assert!(
                out.iter().all(|o| o.elapsed == 0),
                "{name}: zero budget cannot consume time"
            );
            assert!(
                out.iter().any(|o| o.deadline_exceeded),
                "{name}: a zero budget must cut off real work"
            );
            assert_eq!(out, run(), "{name}: endpoint must be deterministic");
        }
    }

    /// At zero ticks the flood still answers from local knowledge: a
    /// query issued by a holder is an instant hit at hop 0.
    #[test]
    fn zero_tick_deadline_keeps_the_instant_source_hit() {
        let w = world();
        let obj = 5u32;
        let holder = w.placement.holders(obj)[0];
        let q = QuerySpec {
            terms: w.object_terms[obj as usize].clone(),
            source: holder,
        };
        let mut sys = SearchSpec::flood(3)
            .faults(latent_ctx(4, 0.0, 31))
            .deadline(Deadline::after(0))
            .build(&w);
        let mut rng = Pcg64::new(1);
        let out = sys.search(&w, &q, &mut rng);
        assert!(out.success, "the source's own shelf needs no budget");
        assert_eq!(out.hops, Some(0));
        assert_eq!(out.elapsed, 0);
    }

    /// Overload under pressure: a small queue bound and a hot offered
    /// load shed real work, flag the outcomes, and reconcile with the
    /// recorder's Overloaded events and AdmissionRejected counter.
    #[test]
    fn limited_capacity_sheds_and_flags_overload() {
        let w = world();
        let qs = queries(&w, 80);
        let mut sys = SearchSpec::flood(3)
            .faults(latent_ctx(4, 0.0, 31))
            .deadline(Deadline::after(48))
            .capacity(heavy_cap(32.0, 0xca9))
            .recorder(MetricsRecorder::new())
            .build(&w);
        let out = outcomes(&mut sys, &w, &qs);
        let overloaded = out.iter().filter(|o| o.overload.overloaded).count() as u64;
        let rejected: u64 = out.iter().map(|o| o.overload.admission_rejected).sum();
        let shed: u64 = out.iter().map(|o| o.overload.shed).sum();
        assert!(shed > 0, "offered load 32 against bound 4 must shed");
        assert!(rejected > 0, "tier-0 issuers must fail the admission gate");
        assert!(overloaded > 0);
        let rec = sys.into_recorder();
        assert_eq!(
            rec.event_count(Kernel::Flood, Event::Overloaded),
            overloaded
        );
        assert_eq!(
            rec.total(Kernel::Flood, Counter::AdmissionRejected),
            rejected
        );
        assert_eq!(rec.total(Kernel::Flood, Counter::Shed), shed);
        assert_eq!(rec.spans(Kernel::Flood), qs.len() as u64);
    }

    /// Recording the capacity path is write-only: MetricsRecorder and
    /// NoopRecorder builds return bitwise-identical outcome streams.
    #[test]
    fn capacity_recording_is_write_only() {
        let w = world();
        let qs = queries(&w, 40);
        for mk in all_kinds() {
            let mut plain = mk()
                .faults(latent_ctx(4, 0.1, 37))
                .deadline(Deadline::after(48))
                .capacity(heavy_cap(8.0, 0x0ca))
                .build(&w);
            let mut recorded = mk()
                .faults(latent_ctx(4, 0.1, 37))
                .deadline(Deadline::after(48))
                .capacity(heavy_cap(8.0, 0x0ca))
                .recorder(MetricsRecorder::new())
                .build(&w);
            let a = outcomes(&mut plain, &w, &qs);
            let b = outcomes(&mut recorded, &w, &qs);
            assert_eq!(a, b, "recording must not perturb capacity outcomes");
        }
    }

    #[test]
    #[should_panic(expected = "capacity plan runs on the event engines")]
    fn capacity_without_faults_rejected() {
        let w = world();
        let _ = SearchSpec::flood(3)
            .capacity(CapacityPlan::unlimited())
            .build(&w);
    }

    #[test]
    #[should_panic(expected = "capacity plan runs on the event engines")]
    fn capacity_without_deadline_rejected() {
        let w = world();
        let _ = SearchSpec::flood(3)
            .faults(latent_ctx(4, 0.0, 1))
            .capacity(CapacityPlan::unlimited())
            .build(&w);
    }
}

#[cfg(test)]
mod replication_tests {
    use super::*;
    use crate::world::WorldConfig;
    use qcp_faults::{FaultConfig, FaultPlan, RetryPolicy};
    use qcp_obs::{Counter, Kernel, MetricsRecorder};
    use qcp_overlay::{ReplicationPlan, ReplicationScheme};
    use qcp_vtime::Deadline;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 400,
            num_objects: 3_000,
            num_terms: 4_000,
            head_size: 80,
            seed: 99,
            ..Default::default()
        })
    }

    fn ctx(seed: u64) -> FaultContext {
        FaultContext::new(
            FaultPlan::build(
                400,
                &FaultConfig {
                    loss: 0.1,
                    mean_latency: 4,
                    seed,
                    ..Default::default()
                },
            ),
            RetryPolicy::default(),
            seed ^ 0x0c7e,
        )
    }

    fn queries(w: &SearchWorld, n: usize) -> Vec<QuerySpec> {
        let mut rng = Pcg64::new(13);
        (0..n).map(|_| w.sample_query(&mut rng)).collect()
    }

    fn outcomes(
        sys: &mut dyn SearchSystem,
        w: &SearchWorld,
        qs: &[QuerySpec],
    ) -> Vec<SearchOutcome> {
        let mut rng = Pcg64::new(77);
        qs.iter().map(|q| sys.search(w, q, &mut rng)).collect()
    }

    /// An owner-only plan (budget 0) is bitwise inert on every
    /// unstructured kind: same outcome stream as no plan at all, and
    /// zero copies-hit (the shadow always agrees with the primary).
    #[test]
    fn owner_only_replication_is_bitwise_inert() {
        let w = world();
        let qs = queries(&w, 60);
        let kinds: Vec<fn() -> SearchSpec> =
            vec![|| SearchSpec::flood(3), || SearchSpec::walk(4, 20), || {
                SearchSpec::expanding_ring(4)
            }];
        for mk in kinds {
            let mut plain = mk().build(&w);
            let mut owner = mk()
                .replication(ReplicationPlan::owner_only(0xf198))
                .recorder(MetricsRecorder::new())
                .build(&w);
            let name = plain.name();
            let a = outcomes(&mut plain, &w, &qs);
            let b = outcomes(&mut owner, &w, &qs);
            assert_eq!(a, b, "owner-only plan perturbed {name}");
        }
    }

    /// Fault-free flood: the replicated census reaches the same node
    /// set, so copies-hit is exactly the success-rate gain over the
    /// plain build, and copies-placed is exactly the plan budget.
    #[test]
    fn flood_copies_hit_reconciles_exactly() {
        let w = world();
        let qs = queries(&w, 120);
        let budget = 6_000u64;
        let mut plain = SearchSpec::flood(2).build(&w);
        let mut repl = SearchSpec::flood(2)
            .replication(ReplicationPlan::new(
                ReplicationScheme::SqrtAllocation,
                budget,
                0xf1f8,
            ))
            .recorder(MetricsRecorder::new())
            .build(&w);
        let a = outcomes(&mut plain, &w, &qs);
        let b = outcomes(&mut repl, &w, &qs);
        let hits_plain = a.iter().filter(|o| o.success).count() as u64;
        let hits_repl = b.iter().filter(|o| o.success).count() as u64;
        assert!(
            hits_repl >= hits_plain,
            "extra holders cannot cost flood successes: {hits_repl} < {hits_plain}"
        );
        let rec = repl.into_recorder();
        assert_eq!(rec.total(Kernel::Flood, Counter::CopiesPlaced), budget);
        assert_eq!(
            rec.total(Kernel::Flood, Counter::CopiesHit),
            hits_repl - hits_plain,
            "flood reach is holder-independent, so every extra hit is a rescue"
        );
    }

    /// Replication composes with faults + deadline + capacity on every
    /// unstructured kind: the stack runs, stays deterministic, and the
    /// rescue counter never exceeds the success count.
    #[test]
    fn replication_composes_with_the_full_stack() {
        let w = world();
        let qs = queries(&w, 40);
        let kinds: Vec<(Kernel, fn() -> SearchSpec)> = vec![
            (Kernel::Flood, || SearchSpec::flood(3)),
            (Kernel::Walk, || SearchSpec::walk(4, 20)),
            (Kernel::ExpandingRing, || SearchSpec::expanding_ring(4)),
        ];
        for (kernel, mk) in kinds {
            let run = || {
                let mut sys = mk()
                    .faults(ctx(31))
                    .deadline(Deadline::after(48))
                    .capacity(qcp_faults::CapacityPlan::unlimited())
                    .replication(ReplicationPlan::new(ReplicationScheme::Path, 2_000, 0xf1f8))
                    .recorder(MetricsRecorder::new())
                    .build(&w);
                let out = outcomes(&mut sys, &w, &qs);
                let rec = sys.into_recorder();
                let hits = out.iter().filter(|o| o.success).count() as u64;
                (out, rec.total(kernel, Counter::CopiesHit), hits)
            };
            let (a, hit_a, hits) = run();
            let (b, hit_b, _) = run();
            assert_eq!(a, b, "replicated stack must be deterministic");
            assert_eq!(hit_a, hit_b);
            assert!(
                hit_a <= hits,
                "rescues are a subset of successes: {hit_a} > {hits}"
            );
        }
    }

    /// Recording the replicated paths is write-only: MetricsRecorder
    /// and NoopRecorder builds return bitwise-identical outcomes.
    #[test]
    fn replication_recording_is_write_only() {
        let w = world();
        let qs = queries(&w, 50);
        let plan = || ReplicationPlan::new(ReplicationScheme::RandomWalk, 3_000, 0xf1f8);
        let mut plain = SearchSpec::walk(4, 20)
            .faults(ctx(21))
            .replication(plan())
            .build(&w);
        let mut recorded = SearchSpec::walk(4, 20)
            .faults(ctx(21))
            .replication(plan())
            .recorder(MetricsRecorder::new())
            .build(&w);
        let a = outcomes(&mut plain, &w, &qs);
        let b = outcomes(&mut recorded, &w, &qs);
        assert_eq!(a, b, "recording perturbed replicated walk outcomes");
    }

    #[test]
    #[should_panic(expected = "replication plans apply only")]
    fn replication_on_hybrid_rejected() {
        let w = world();
        let _ = SearchSpec::hybrid(2, 5, 11)
            .replication(ReplicationPlan::owner_only(1))
            .build(&w);
    }

    #[test]
    #[should_panic(expected = "replication plans apply only")]
    fn replication_on_dht_only_rejected() {
        let w = world();
        let _ = SearchSpec::dht_only(9)
            .replication(ReplicationPlan::owner_only(1))
            .build(&w);
    }
}
