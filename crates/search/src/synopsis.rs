//! Synopsis-directed search — the paper's position, made concrete.
//!
//! Every peer advertises a budgeted Bloom synopsis of terms from its own
//! content to its neighbors; queries walk the overlay preferring neighbors
//! whose synopsis advertises the query's terms (one-hop lookahead).
//!
//! The *only* difference between the two policies is the admission weight:
//!
//! * [`SynopsisPolicy::ContentCentric`] — weight = local term frequency.
//!   The peer advertises what it stores most of. Because popular file
//!   terms ≠ popular query terms (Figure 7), the budget is spent on terms
//!   nobody asks for.
//! * [`SynopsisPolicy::QueryCentric`] — weight = observed global
//!   query-term popularity (an exponentially-decayed counter fed by
//!   [`SynopsisSearch::observe_queries`]). The peer advertises the subset
//!   of its content that users actually search for — including transiently
//!   popular terms, which enter the weights as soon as they are observed.
//!
//! Ablation A1 runs both at identical budgets and shows the query-centric
//! policy resolving substantially more queries per synopsis bit.

use crate::systems::{OverloadStats, SearchOutcome, SearchSystem};
use crate::world::{QuerySpec, SearchWorld};
use qcp_sketch::{SynopsisBudget, TermSynopsis};
use qcp_util::rng::Pcg64;
use qcp_util::{FxHashMap, FxHashSet, Symbol};

/// Synopsis admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynopsisPolicy {
    /// Advertise the locally most frequent terms.
    ContentCentric,
    /// Advertise the terms most popular in observed queries.
    QueryCentric,
}

/// Synopsis-directed walk search.
#[derive(Debug)]
pub struct SynopsisSearch {
    /// Admission policy.
    pub policy: SynopsisPolicy,
    /// Walk budget in steps.
    pub ttl: u32,
    budget: SynopsisBudget,
    synopses: Vec<TermSynopsis>,
    /// Decayed global query-term popularity (term id → weight).
    query_weights: FxHashMap<u32, f64>,
    maintenance: u64,
}

impl SynopsisSearch {
    /// Builds the system and the initial synopses (which, before any
    /// queries are observed, are content-weighted under both policies).
    pub fn new(world: &SearchWorld, policy: SynopsisPolicy, budget_terms: usize, ttl: u32) -> Self {
        let budget = SynopsisBudget::for_terms(budget_terms, 0.01);
        let mut this = Self {
            policy,
            ttl,
            budget,
            synopses: Vec::new(),
            query_weights: FxHashMap::default(),
            maintenance: 0,
        };
        this.rebuild(world);
        this
    }

    /// Rebuilds every peer's synopsis under the current weights and counts
    /// the gossip cost (each peer ships its synopsis to every neighbor).
    pub fn rebuild(&mut self, world: &SearchWorld) {
        self.synopses = (0..world.num_peers() as u32)
            .map(|peer| {
                let counts = world.peer_term_counts(peer);
                let candidates: Vec<(Symbol, f64)> = counts
                    .iter()
                    .map(|(&t, &c)| {
                        let w = match self.policy {
                            SynopsisPolicy::ContentCentric => c as f64,
                            SynopsisPolicy::QueryCentric => {
                                // Query popularity dominates; the local
                                // count is a deterministic tie-breaker so
                                // unqueried terms still fill spare budget.
                                self.query_weights.get(&t).copied().unwrap_or(0.0) * 1_000.0
                                    + c as f64 * 1e-3
                            }
                        };
                        (Symbol(t), w)
                    })
                    .collect();
                TermSynopsis::build(self.budget, &candidates)
            })
            .collect();
        // Gossip: one synopsis message per directed edge.
        self.maintenance += world.topology.graph.num_edges() as u64 * 2;
    }

    /// Feeds observed queries into the popularity weights (EWMA with
    /// factor `decay` applied to the old mass) and rebuilds synopses.
    pub fn observe_queries(&mut self, world: &SearchWorld, queries: &[QuerySpec], decay: f64) {
        assert!((0.0..=1.0).contains(&decay));
        // qcplint: allow(unordered-iter) — independent per-entry scaling;
        // no cross-entry state, so visit order cannot affect any value.
        for w in self.query_weights.values_mut() {
            *w *= decay;
        }
        for q in queries {
            for &t in &q.terms {
                *self.query_weights.entry(t).or_insert(0.0) += 1.0;
            }
        }
        self.rebuild(world);
    }

    /// How many of `terms` a peer's synopsis advertises.
    fn advertised_count(&self, peer: u32, terms: &[u32]) -> usize {
        let syn = &self.synopses[peer as usize];
        terms.iter().filter(|&&t| syn.advertises(Symbol(t))).count()
    }
}

impl SearchSystem for SynopsisSearch {
    fn name(&self) -> String {
        let p = match self.policy {
            SynopsisPolicy::ContentCentric => "content",
            SynopsisPolicy::QueryCentric => "query",
        };
        format!("synopsis({p},ttl={})", self.ttl)
    }

    fn search(&mut self, world: &SearchWorld, query: &QuerySpec, rng: &mut Pcg64) -> SearchOutcome {
        let matching = world.matching_objects(&query.terms);
        if matching.is_empty() {
            return SearchOutcome {
                success: false,
                messages: 0,
                hops: None,
                faults: Default::default(),
                elapsed: 0,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        let graph = &world.topology.graph;
        let mut visited: FxHashSet<u32> = FxHashSet::default();
        let mut current = query.source;
        visited.insert(current);
        if world.peer_answers(current, &matching) {
            return SearchOutcome {
                success: true,
                messages: 0,
                hops: Some(0),
                faults: Default::default(),
                elapsed: 0,
                deadline_exceeded: false,
                overload: OverloadStats::default(),
            };
        }
        let mut messages = 0u64;
        for step in 1..=self.ttl {
            let neighbors = graph.neighbors(current);
            if neighbors.is_empty() {
                break;
            }
            // Score unvisited neighbors by advertised query terms; walk to
            // the best (random among ties), falling back to random.
            let mut best_score = 0usize;
            let mut best: Vec<u32> = Vec::new();
            let mut unvisited: Vec<u32> = Vec::new();
            for &nb in neighbors {
                if visited.contains(&nb) {
                    continue;
                }
                unvisited.push(nb);
                let score = self.advertised_count(nb, &query.terms);
                match score.cmp(&best_score) {
                    std::cmp::Ordering::Greater => {
                        best_score = score;
                        best.clear();
                        best.push(nb);
                    }
                    std::cmp::Ordering::Equal if score > 0 => best.push(nb),
                    _ => {}
                }
            }
            let next = if !best.is_empty() {
                best[rng.index(best.len())]
            } else if !unvisited.is_empty() {
                unvisited[rng.index(unvisited.len())]
            } else {
                neighbors[rng.index(neighbors.len())]
            };
            messages += 1;
            visited.insert(next);
            current = next;
            if world.peer_answers(current, &matching) {
                return SearchOutcome {
                    success: true,
                    messages,
                    hops: Some(step),
                    faults: Default::default(),
                    elapsed: 0,
                    deadline_exceeded: false,
                    overload: OverloadStats::default(),
                };
            }
        }
        SearchOutcome {
            success: false,
            messages,
            hops: None,
            faults: Default::default(),
            elapsed: 0,
            deadline_exceeded: false,
            overload: OverloadStats::default(),
        }
    }

    fn maintenance_messages(&self) -> u64 {
        self.maintenance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> SearchWorld {
        SearchWorld::generate(&WorldConfig {
            num_peers: 600,
            num_objects: 5_000,
            num_terms: 6_000,
            head_size: 100,
            seed: 31,
            ..Default::default()
        })
    }

    fn queries(world: &SearchWorld, n: usize, seed: u64) -> Vec<QuerySpec> {
        let mut rng = Pcg64::new(seed);
        (0..n).map(|_| world.sample_query(&mut rng)).collect()
    }

    #[test]
    fn source_holder_succeeds_at_zero_cost() {
        let w = world();
        let mut sys = SynopsisSearch::new(&w, SynopsisPolicy::ContentCentric, 16, 30);
        let obj = 12u32;
        let holder = w.placement.holders(obj)[0];
        let q = QuerySpec {
            terms: w.object_terms[obj as usize].clone(),
            source: holder,
        };
        let mut rng = Pcg64::new(1);
        let out = sys.search(&w, &q, &mut rng);
        assert!(out.success);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn observe_queries_shifts_admissions() {
        let w = world();
        let mut sys = SynopsisSearch::new(&w, SynopsisPolicy::QueryCentric, 8, 30);
        let train = queries(&w, 2_000, 2);
        // Count pre/post admission of the most queried term.
        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        for q in &train {
            for &t in &q.terms {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let (&hot, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        let advertised_before: usize = (0..600)
            .filter(|&p| sys.advertised_count(p, &[hot]) > 0)
            .count();
        sys.observe_queries(&w, &train, 0.5);
        let advertised_after: usize = (0..600)
            .filter(|&p| sys.advertised_count(p, &[hot]) > 0)
            .count();
        assert!(
            advertised_after >= advertised_before,
            "hot term advertisement should not shrink: {advertised_before} -> {advertised_after}"
        );
    }

    #[test]
    fn query_centric_beats_content_centric_under_mismatch() {
        let w = world();
        let budget = 12;
        let ttl = 40;
        let train = queries(&w, 3_000, 3);
        let test = queries(&w, 600, 4);

        let mut content = SynopsisSearch::new(&w, SynopsisPolicy::ContentCentric, budget, ttl);
        let mut query_centric = SynopsisSearch::new(&w, SynopsisPolicy::QueryCentric, budget, ttl);
        query_centric.observe_queries(&w, &train, 0.5);

        let mut rng = Pcg64::new(5);
        let mut content_hits = 0;
        let mut qc_hits = 0;
        for q in &test {
            if content.search(&w, q, &mut rng).success {
                content_hits += 1;
            }
            if query_centric.search(&w, q, &mut rng).success {
                qc_hits += 1;
            }
        }
        assert!(
            qc_hits as f64 > content_hits as f64 * 1.15,
            "query-centric ({qc_hits}) must clearly beat content-centric ({content_hits})"
        );
    }

    #[test]
    fn synopsis_beats_blind_walk() {
        let w = world();
        let train = queries(&w, 3_000, 6);
        let test = queries(&w, 400, 7);
        let mut qc = SynopsisSearch::new(&w, SynopsisPolicy::QueryCentric, 12, 40);
        qc.observe_queries(&w, &train, 0.5);
        let mut walk = crate::spec::SearchSpec::walk(1, 40).build(&w).into_walk();
        let mut rng = Pcg64::new(8);
        let mut qc_hits = 0;
        let mut walk_hits = 0;
        for q in &test {
            if qc.search(&w, q, &mut rng).success {
                qc_hits += 1;
            }
            if walk.search(&w, q, &mut rng).success {
                walk_hits += 1;
            }
        }
        assert!(
            qc_hits > walk_hits,
            "synopsis walk ({qc_hits}) must beat blind walk ({walk_hits})"
        );
    }

    #[test]
    fn maintenance_grows_with_rebuilds() {
        let w = world();
        let mut sys = SynopsisSearch::new(&w, SynopsisPolicy::QueryCentric, 8, 20);
        let m0 = sys.maintenance_messages();
        sys.observe_queries(&w, &queries(&w, 100, 9), 0.5);
        assert!(sys.maintenance_messages() > m0);
    }

    #[test]
    fn unsatisfiable_query_fails_fast() {
        let w = world();
        let mut sys = SynopsisSearch::new(&w, SynopsisPolicy::ContentCentric, 8, 20);
        let mut rng = Pcg64::new(10);
        let out = sys.search(
            &w,
            &QuerySpec {
                terms: vec![6_000_000],
                source: 0,
            },
            &mut rng,
        );
        assert!(!out.success);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn ttl_bounds_messages() {
        let w = world();
        let mut sys = SynopsisSearch::new(&w, SynopsisPolicy::ContentCentric, 8, 9);
        let mut rng = Pcg64::new(11);
        for _ in 0..40 {
            let q = w.sample_query(&mut rng);
            assert!(sys.search(&w, &q, &mut rng).messages <= 9);
        }
    }
}
