//! Property tests tying the tokenizer, sanitizer and matcher together.

use proptest::prelude::*;
use qcp_terms::{matches_all_terms, sanitize_name, tokenize, Query, TermDict};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sanitization and tokenization are the same normalization at
    /// different granularities: tokenizing the sanitized name yields
    /// exactly the tokens of the raw name.
    #[test]
    fn tokenize_commutes_with_sanitize(name in ".{0,100}") {
        prop_assert_eq!(tokenize(&sanitize_name(&name)), tokenize(&name));
    }

    /// A query built from an object's own name always matches that object
    /// (provided the name produced at least one token).
    #[test]
    fn self_query_always_matches(name in "[a-zA-Z0-9 .'_-]{2,60}") {
        let mut dict = TermDict::new();
        let mut object: Vec<_> = tokenize(&name).iter().map(|t| dict.intern(t)).collect();
        object.sort_unstable();
        object.dedup();
        let query = Query::parse(&name, |t| dict.intern(t));
        if !query.is_empty() {
            prop_assert!(query.matches(&object), "query from '{}' must match itself", name);
        }
    }

    /// Adding terms to a query can only shrink its match set.
    #[test]
    fn query_matching_is_antitone_in_terms(
        object in proptest::collection::vec(0u32..50, 1..20),
        query in proptest::collection::vec(0u32..50, 1..10),
        extra in 0u32..50,
    ) {
        use qcp_util::Symbol;
        let mut obj: Vec<Symbol> = object.iter().map(|&x| Symbol(x)).collect();
        obj.sort_unstable();
        obj.dedup();
        let mut q: Vec<Symbol> = query.iter().map(|&x| Symbol(x)).collect();
        q.sort_unstable();
        q.dedup();
        let mut q_more = q.clone();
        if let Err(pos) = q_more.binary_search(&Symbol(extra)) {
            q_more.insert(pos, Symbol(extra));
        }
        // If the larger query matches, the smaller must too.
        if matches_all_terms(&q_more, &obj) {
            prop_assert!(matches_all_terms(&q, &obj));
        }
    }

    /// Dictionary counting is exact regardless of interleaving.
    #[test]
    fn dict_occurrence_counts_are_exact(terms in proptest::collection::vec("[a-z]{2,6}", 1..100)) {
        let mut dict = TermDict::new();
        for t in &terms {
            dict.observe(t);
        }
        let mut expected: std::collections::HashMap<&str, u64> = Default::default();
        for t in &terms {
            *expected.entry(t.as_str()).or_insert(0) += 1;
        }
        for (t, &count) in &expected {
            let sym = dict.get(t).unwrap();
            prop_assert_eq!(dict.occurrences(sym), count);
        }
        prop_assert_eq!(dict.len(), expected.len());
    }

    /// top_by_occurrence is sorted by count descending.
    #[test]
    fn top_terms_sorted_by_count(terms in proptest::collection::vec("[a-c]{2}", 1..60)) {
        let mut dict = TermDict::new();
        for t in &terms {
            dict.observe(t);
        }
        let top = dict.top_by_occurrence(dict.len());
        for w in top.windows(2) {
            prop_assert!(dict.occurrences(w[0]) >= dict.occurrences(w[1]));
        }
    }
}
