//! Interned term dictionaries with occurrence and peer counts.
//!
//! `TermDict` is the backbone of the term-level analysis (Figure 3,
//! Figures 5–7): it interns term strings to dense symbols and tracks, per
//! term, (a) total occurrences and (b) the number of *distinct peers*
//! sharing at least one object containing the term.

use qcp_util::{FxHashSet, Interner, Symbol};

/// A term dictionary with per-term statistics.
#[derive(Debug, Default, Clone)]
pub struct TermDict {
    interner: Interner,
    /// Total occurrences per symbol (indexed by symbol).
    occurrences: Vec<u64>,
    /// Number of distinct peers per symbol.
    peer_counts: Vec<u32>,
    /// Per-symbol scratch set of peers, used when building peer counts
    /// exactly. Kept small: peers are recorded per term only once.
    peer_sets: Vec<FxHashSet<u32>>,
    /// Whether exact peer sets are being tracked.
    track_peers: bool,
}

impl TermDict {
    /// Creates an empty dictionary that tracks occurrence counts only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary that also tracks exact per-term peer sets (more
    /// memory; needed for Figure 3-style "clients with term" analysis).
    pub fn with_peer_tracking() -> Self {
        Self {
            track_peers: true,
            ..Self::default()
        }
    }

    /// Interns `term` and counts one occurrence. Returns the symbol.
    pub fn observe(&mut self, term: &str) -> Symbol {
        let sym = self.intern(term);
        self.occurrences[sym.index()] += 1;
        sym
    }

    /// Interns `term`, counts one occurrence, and records that `peer`
    /// shares it.
    pub fn observe_on_peer(&mut self, term: &str, peer: u32) -> Symbol {
        let sym = self.observe(term);
        if self.track_peers && self.peer_sets[sym.index()].insert(peer) {
            self.peer_counts[sym.index()] += 1;
        }
        sym
    }

    /// Interns without counting (useful for lookups during matching).
    pub fn intern(&mut self, term: &str) -> Symbol {
        let sym = self.interner.intern(term);
        if sym.index() >= self.occurrences.len() {
            self.occurrences.push(0);
            self.peer_counts.push(0);
            if self.track_peers {
                self.peer_sets.push(FxHashSet::default());
            }
        }
        sym
    }

    /// Looks up a term without inserting.
    pub fn get(&self, term: &str) -> Option<Symbol> {
        self.interner.get(term)
    }

    /// Resolves a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Occurrence count for a symbol.
    pub fn occurrences(&self, sym: Symbol) -> u64 {
        self.occurrences[sym.index()]
    }

    /// Number of distinct peers sharing the term (0 unless peer tracking).
    pub fn peer_count(&self, sym: Symbol) -> u32 {
        self.peer_counts[sym.index()]
    }

    /// All per-term peer counts (aligned with symbol index).
    pub fn peer_counts(&self) -> &[u32] {
        &self.peer_counts
    }

    /// All per-term occurrence counts (aligned with symbol index).
    pub fn occurrence_counts(&self) -> &[u64] {
        &self.occurrences
    }

    /// The top-`k` terms by occurrence count, descending, ties broken by
    /// symbol index for determinism.
    pub fn top_by_occurrence(&self, k: usize) -> Vec<Symbol> {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            self.occurrences[b as usize]
                .cmp(&self.occurrences[a as usize])
                .then(a.cmp(&b))
        });
        order.truncate(k);
        order.into_iter().map(Symbol).collect()
    }

    /// Releases the per-term peer scratch sets, keeping the counts. Call
    /// after ingest to reclaim memory before analysis.
    pub fn seal(&mut self) {
        self.peer_sets = Vec::new();
        self.track_peers = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_counts_occurrences() {
        let mut d = TermDict::new();
        let a = d.observe("madonna");
        d.observe("madonna");
        let b = d.observe("prayer");
        assert_eq!(d.occurrences(a), 2);
        assert_eq!(d.occurrences(b), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn peer_tracking_counts_distinct_peers() {
        let mut d = TermDict::with_peer_tracking();
        let t = d.observe_on_peer("live", 1);
        d.observe_on_peer("live", 1); // same peer again
        d.observe_on_peer("live", 2);
        assert_eq!(d.peer_count(t), 2);
        assert_eq!(d.occurrences(t), 3);
    }

    #[test]
    fn peer_tracking_off_yields_zero_counts() {
        let mut d = TermDict::new();
        let t = d.observe_on_peer("x1", 9);
        assert_eq!(d.peer_count(t), 0);
    }

    #[test]
    fn intern_does_not_count() {
        let mut d = TermDict::new();
        let t = d.intern("silent");
        assert_eq!(d.occurrences(t), 0);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn top_by_occurrence_orders_and_breaks_ties() {
        let mut d = TermDict::new();
        for _ in 0..3 {
            d.observe("aa");
        }
        for _ in 0..5 {
            d.observe("bb");
        }
        for _ in 0..3 {
            d.observe("cc");
        }
        let top = d.top_by_occurrence(3);
        assert_eq!(d.resolve(top[0]), "bb");
        assert_eq!(d.resolve(top[1]), "aa"); // tie with cc, lower symbol wins
        assert_eq!(d.resolve(top[2]), "cc");
    }

    #[test]
    fn top_k_larger_than_dict_is_clamped() {
        let mut d = TermDict::new();
        d.observe("only");
        assert_eq!(d.top_by_occurrence(10).len(), 1);
    }

    #[test]
    fn seal_preserves_counts() {
        let mut d = TermDict::with_peer_tracking();
        let t = d.observe_on_peer("keep", 4);
        d.seal();
        assert_eq!(d.peer_count(t), 1);
        // Further peer observations no longer tracked.
        d.observe_on_peer("keep", 5);
        assert_eq!(d.peer_count(t), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = TermDict::new();
        let t = d.observe("björk");
        assert_eq!(d.resolve(t), "björk");
        assert_eq!(d.get("björk"), Some(t));
        assert_eq!(d.get("missing"), None);
    }
}
