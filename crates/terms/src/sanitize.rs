//! Filename sanitization (the paper's Figure 2 transform).
//!
//! "We also sanitized the file names by removing capitalization and special
//! characters such as dashes" — after sanitization, two names are replicas
//! of the same object iff the sanitized strings are identical. Sanitizing
//! merges e.g. `"Aaron Neville - I Don't Know Much.MP3"` and
//! `"aaron neville i dont know much.mp3"`.

/// Sanitizes an object name: lower-cases, treats every non-alphanumeric
/// character as a separator, collapses separator runs to a single space,
/// and trims. The result is a canonical form for replica matching:
///
/// ```
/// use qcp_terms::sanitize_name;
///
/// assert_eq!(sanitize_name("Artist - Song.mp3"), "artist song mp3");
/// assert_eq!(sanitize_name("ARTIST_SONG.mp3"), "artist song mp3");
/// ```
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut pending_space = false;
    for ch in name.chars() {
        if ch.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.extend(ch.to_lowercase());
        } else {
            // Whitespace, dashes, dots, apostrophes: all separators.
            pending_space = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_separates_punctuation() {
        assert_eq!(
            sanitize_name("Aaron Neville - I Don't Know Much.MP3"),
            "aaron neville i don t know much mp3"
        );
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(sanitize_name("too   many    spaces"), "too many spaces");
    }

    #[test]
    fn trims_leading_and_trailing_separators() {
        assert_eq!(sanitize_name("  -- hello --  "), "hello");
    }

    #[test]
    fn merges_case_variants() {
        let a = sanitize_name("Like A Prayer");
        let b = sanitize_name("like a PRAYER");
        assert_eq!(a, b);
    }

    #[test]
    fn merges_dash_variants() {
        let a = sanitize_name("Artist - Song.mp3");
        let b = sanitize_name("Artist Song.mp3");
        assert_eq!(a, b);
    }

    #[test]
    fn does_not_merge_genuinely_different_names() {
        assert_ne!(
            sanitize_name("Aaron Neville - Don't Know Much"),
            sanitize_name("Aaron Neville - I Don't Know Much")
        );
    }

    #[test]
    fn punctuation_inside_words_becomes_separator() {
        assert_eq!(sanitize_name("AC/DC"), "ac dc");
        assert_eq!(sanitize_name("don't"), "don t");
    }

    #[test]
    fn separator_style_variants_all_merge() {
        let a = sanitize_name("Artist - Song.mp3");
        let b = sanitize_name("artist_song.MP3");
        let c = sanitize_name("ARTIST.SONG.mp3");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, "artist song mp3");
    }

    #[test]
    fn empty_and_symbol_only() {
        assert_eq!(sanitize_name(""), "");
        assert_eq!(sanitize_name("!!!"), "");
    }

    #[test]
    fn unicode_preserved() {
        assert_eq!(sanitize_name("Björk — Jóga"), "björk jóga");
    }

    #[test]
    fn idempotent() {
        let once = sanitize_name("Some -- Name.MP3");
        let twice = sanitize_name(&once);
        assert_eq!(once, twice);
    }
}
