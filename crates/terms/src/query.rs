//! Query representation and Gnutella AND-matching.
//!
//! A Gnutella query is a bag of terms; an object satisfies the query when
//! *every* query term appears among the object's name terms. (Structured
//! systems, by contrast, require an exact object-name match — Section I of
//! the paper.)

use crate::tokenize::token_set;
use qcp_util::Symbol;

/// A tokenized query: a sorted, deduplicated set of term symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    terms: Vec<Symbol>,
}

impl Query {
    /// Builds a query from pre-interned symbols (deduplicates and sorts).
    pub fn from_symbols(mut terms: Vec<Symbol>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        Self { terms }
    }

    /// Tokenizes `text` and interns each term through `intern`.
    pub fn parse<F: FnMut(&str) -> Symbol>(text: &str, mut intern: F) -> Self {
        let terms = token_set(text).iter().map(|t| intern(t)).collect();
        Self::from_symbols(terms)
    }

    /// The query's term symbols (sorted, deduplicated).
    pub fn terms(&self) -> &[Symbol] {
        &self.terms
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True for a query with no recognizable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Gnutella AND semantics: true when every query term appears in
    /// `object_terms` (sorted, deduplicated).
    pub fn matches(&self, object_terms: &[Symbol]) -> bool {
        matches_all_terms(&self.terms, object_terms)
    }
}

/// True when every element of `needles` (sorted, dedup) appears in
/// `haystack` (sorted, dedup). Empty `needles` matches nothing — a query
/// with no terms cannot retrieve objects, mirroring real servent behaviour.
pub fn matches_all_terms(needles: &[Symbol], haystack: &[Symbol]) -> bool {
    if needles.is_empty() {
        return false;
    }
    let mut h = 0usize;
    for needle in needles {
        // Advance through the haystack; both sides are sorted.
        while h < haystack.len() && haystack[h] < *needle {
            h += 1;
        }
        if h >= haystack.len() || haystack[h] != *needle {
            return false;
        }
        h += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::TermDict;

    fn q(text: &str, d: &mut TermDict) -> Query {
        Query::parse(text, |t| d.intern(t))
    }

    fn obj(text: &str, d: &mut TermDict) -> Vec<Symbol> {
        let mut syms: Vec<Symbol> = crate::tokenize::token_set(text)
            .iter()
            .map(|t| d.intern(t))
            .collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    #[test]
    fn all_terms_present_matches() {
        let mut d = TermDict::new();
        let object = obj("Aaron Neville - I Don't Know Much.mp3", &mut d);
        let query = q("aaron neville", &mut d);
        assert!(query.matches(&object));
    }

    #[test]
    fn missing_term_fails() {
        let mut d = TermDict::new();
        let object = obj("Aaron Neville - Don't Know Much", &mut d);
        let query = q("aaron neville ronstadt", &mut d);
        assert!(!query.matches(&object));
    }

    #[test]
    fn match_is_case_insensitive_via_tokenizer() {
        let mut d = TermDict::new();
        let object = obj("MADONNA like a prayer", &mut d);
        let query = q("Madonna PRAYER", &mut d);
        assert!(query.matches(&object));
    }

    #[test]
    fn empty_query_matches_nothing() {
        let mut d = TermDict::new();
        let object = obj("anything at all", &mut d);
        let query = q("!!!", &mut d);
        assert!(query.is_empty());
        assert!(!query.matches(&object));
    }

    #[test]
    fn duplicate_query_terms_collapse() {
        let mut d = TermDict::new();
        let query = q("love love love", &mut d);
        assert_eq!(query.len(), 1);
    }

    #[test]
    fn subset_direction_matters() {
        let mut d = TermDict::new();
        let object = obj("short name", &mut d);
        let query = q("short name extra", &mut d);
        assert!(!query.matches(&object));
        let query2 = q("short", &mut d);
        assert!(query2.matches(&object));
    }

    #[test]
    fn matches_all_terms_on_raw_symbols() {
        let needles = [Symbol(2), Symbol(5)];
        let hay = [Symbol(1), Symbol(2), Symbol(5), Symbol(9)];
        assert!(matches_all_terms(&needles, &hay));
        assert!(!matches_all_terms(&[Symbol(3)], &hay));
        assert!(!matches_all_terms(&[], &hay));
    }
}
