//! Gnutella-protocol tokenization.
//!
//! The Gnutella v0.6 query-routing specification tokenizes names and query
//! strings by splitting on any character that is not alphanumeric, then
//! lower-casing. Multi-byte UTF-8 letters (the crawl in the paper observed
//! UTF-8 names) are kept: any Unicode alphanumeric counts as token content.
//! Tokens shorter than a configurable minimum are dropped, mirroring the
//! QRP rule that ignores very short words.

/// Tokenizer configuration.
#[derive(Debug, Clone, Copy)]
pub struct TokenizerConfig {
    /// Minimum token length in characters; shorter tokens are dropped.
    pub min_len: usize,
    /// Whether tokens are lower-cased (the protocol behaviour).
    pub lowercase: bool,
    /// Whether pure-numeric tokens are dropped (track numbers, bitrates —
    /// the paper's "0 Track" example shows these carry no identity).
    pub drop_numeric: bool,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        Self {
            min_len: 2,
            lowercase: true,
            drop_numeric: false,
        }
    }
}

/// Tokenizes with the default (protocol) configuration.
///
/// ```
/// use qcp_terms::tokenize;
///
/// assert_eq!(
///     tokenize("Aaron Neville - I Don't Know Much.mp3"),
///     vec!["aaron", "neville", "don", "know", "much", "mp3"]
/// );
/// ```
pub fn tokenize(input: &str) -> Vec<String> {
    tokenize_with(input, TokenizerConfig::default())
}

/// Tokenizes `input` according to `config`.
pub fn tokenize_with(input: &str, config: TokenizerConfig) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in input.chars() {
        if ch.is_alphanumeric() {
            if config.lowercase {
                current.extend(ch.to_lowercase());
            } else {
                current.push(ch);
            }
        } else if !current.is_empty() {
            push_token(&mut tokens, std::mem::take(&mut current), config);
        }
    }
    if !current.is_empty() {
        push_token(&mut tokens, current, config);
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, token: String, config: TokenizerConfig) {
    if token.chars().count() < config.min_len {
        return;
    }
    if config.drop_numeric && token.chars().all(|c| c.is_numeric()) {
        return;
    }
    tokens.push(token);
}

/// Tokenizes and deduplicates, preserving first-occurrence order — the term
/// *set* of a name, which is what annotation-level analysis counts.
pub fn token_set(input: &str) -> Vec<String> {
    let mut seen = qcp_util::FxHashSet::default();
    tokenize(input)
        .into_iter()
        .filter(|t| seen.insert(t.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        let t = tokenize("Aaron Neville - I Don't Know Much.mp3");
        assert_eq!(t, vec!["aaron", "neville", "don", "know", "much", "mp3"]);
    }

    #[test]
    fn single_char_tokens_dropped_by_default() {
        let t = tokenize("a b cd");
        assert_eq!(t, vec!["cd"]);
    }

    #[test]
    fn lowercases_by_default() {
        let t = tokenize("MADONNA Like A Prayer");
        assert_eq!(t, vec!["madonna", "like", "prayer"]);
    }

    #[test]
    fn preserves_case_when_configured() {
        let cfg = TokenizerConfig {
            lowercase: false,
            ..Default::default()
        };
        let t = tokenize_with("MiXeD Case", cfg);
        assert_eq!(t, vec!["MiXeD", "Case"]);
    }

    #[test]
    fn utf8_names_tokenize() {
        let t = tokenize("Björk — Jóga.mp3");
        assert_eq!(t, vec!["björk", "jóga", "mp3"]);
    }

    #[test]
    fn numerics_kept_by_default_dropped_on_request() {
        assert_eq!(tokenize("01 Track 128kbps"), vec!["01", "track", "128kbps"]);
        let cfg = TokenizerConfig {
            drop_numeric: true,
            ..Default::default()
        };
        assert_eq!(
            tokenize_with("01 Track 128kbps", cfg),
            vec!["track", "128kbps"]
        );
    }

    #[test]
    fn empty_and_separator_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ... ///").is_empty());
    }

    #[test]
    fn min_len_counts_chars_not_bytes() {
        // 'é' is 2 bytes but 1 char; "éa" has 2 chars and must survive.
        let t = tokenize("éa x");
        assert_eq!(t, vec!["éa"]);
    }

    #[test]
    fn token_set_deduplicates_preserving_order() {
        let t = token_set("la la land la");
        assert_eq!(t, vec!["la", "land"]);
    }

    #[test]
    fn apostrophes_split_words() {
        // Gnutella treats ' as a separator: "don't" -> "don", "t" (dropped).
        let t = tokenize("don't");
        assert_eq!(t, vec!["don"]);
    }
}
