//! `qcp-terms` — tokenization, sanitization and term dictionaries.
//!
//! Section II of the paper works at the granularity of *terms*: Gnutella
//! object names are split "using the Gnutella protocol tokenization
//! mechanism", sanitized variants remove capitalization and special
//! characters (Figure 2), and queries match objects when every query term
//! appears in the object's name (Gnutella AND semantics).
//!
//! * [`tokenize`] — the protocol tokenizer (UTF-8 aware, splits on
//!   non-alphanumeric separators, drops extensions-like noise only via the
//!   configurable minimum length);
//! * [`sanitize`] — the Figure-2 name sanitizer;
//! * [`dict`] — interned term dictionaries with per-term occurrence and
//!   peer counts;
//! * [`query`] — query representation and AND-matching.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dict;
pub mod query;
pub mod sanitize;
pub mod tokenize;

pub use dict::TermDict;
pub use query::{matches_all_terms, Query};
pub use sanitize::sanitize_name;
pub use tokenize::{tokenize, tokenize_with, TokenizerConfig};
