//! Property tests for the distribution substrate.

use proptest::prelude::*;
use qcp_util::rng::Pcg64;
use qcp_zipf::{AliasTable, DiscretePowerLaw, Zipf, ZipfMandelbrot};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zipf_pmf_is_monotone_decreasing(n in 2usize..200, s in 0.2f64..3.0) {
        let z = Zipf::new(n, s);
        for k in 1..n {
            prop_assert!(z.pmf(k) > z.pmf(k + 1));
        }
    }

    #[test]
    fn zipf_samples_within_support(n in 1usize..500, s in 0.2f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = Pcg64::new(seed);
        for _ in 0..50 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
            prop_assert!(z.sample_index(&mut rng) < n);
        }
    }

    #[test]
    fn mandelbrot_within_support(n in 1usize..300, s in 0.3f64..2.5, q in 0.0f64..50.0, seed in any::<u64>()) {
        let zm = ZipfMandelbrot::new(n, s, q);
        let mut rng = Pcg64::new(seed);
        for _ in 0..50 {
            prop_assert!((1..=n).contains(&zm.sample(&mut rng)));
        }
    }

    #[test]
    fn approx_sampler_within_support(n in 1usize..1_000_000, s in 0.3f64..3.0, seed in any::<u64>()) {
        let mut rng = Pcg64::new(seed);
        for _ in 0..50 {
            let k = Zipf::sample_approx(n, s, &mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    #[test]
    fn powerlaw_pmf_sums_to_one(min in 1u64..4, span in 1u64..400, tau in 0.5f64..4.0) {
        let law = DiscretePowerLaw::new(min, min + span, tau);
        let total: f64 = (min..=min + span).map(|r| law.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(law.mean() >= min as f64 && law.mean() <= (min + span) as f64);
    }

    #[test]
    fn alias_table_deterministic_per_seed(weights in proptest::collection::vec(0.01f64..5.0, 1..30),
                                          seed in any::<u64>()) {
        let t = AliasTable::new(&weights);
        let mut a = Pcg64::new(seed);
        let mut b = Pcg64::new(seed);
        for _ in 0..30 {
            prop_assert_eq!(t.sample(&mut a), t.sample(&mut b));
        }
    }
}

/// Statistical recovery checks (fixed seeds; not proptest — they are
/// expensive and their tolerances are tuned to the sample sizes).
mod recovery {
    use qcp_util::rng::Pcg64;
    use qcp_zipf::{fit_rank_frequency, fit_tail_mle, DiscretePowerLaw, Zipf};

    #[test]
    fn mle_recovers_tau_across_exponents() {
        for (tau, tol) in [(1.8, 0.12), (2.3, 0.12), (3.0, 0.2)] {
            let law = DiscretePowerLaw::new(1, 50_000, tau);
            let mut rng = Pcg64::new(tau.to_bits());
            let values: Vec<u64> = (0..40_000).map(|_| law.sample(&mut rng)).collect();
            let fit = fit_tail_mle(&values, 1);
            assert!(
                (fit.exponent - tau).abs() < tol,
                "tau {tau}: estimated {}",
                fit.exponent
            );
        }
    }

    #[test]
    fn rank_frequency_slope_tracks_zipf_exponent() {
        for s in [0.8, 1.0, 1.3] {
            let z = Zipf::new(3_000, s);
            let mut rng = Pcg64::new(s.to_bits());
            let mut counts = vec![0u64; 3_000];
            for _ in 0..2_000_000 {
                counts[z.sample(&mut rng) - 1] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let fit = fit_rank_frequency(&counts[..400]);
            assert!(
                (fit.exponent - s).abs() < 0.15,
                "s {s}: estimated {}",
                fit.exponent
            );
        }
    }
}
