//! Walker/Vose alias method: O(n) construction, O(1) sampling from any
//! finite discrete distribution.
//!
//! The trace generators draw hundreds of millions of term/object samples
//! from fixed Zipf distributions; the alias table turns each draw into one
//! uniform variate, one table lookup and one comparison.

use qcp_util::rng::Pcg64;

/// A pre-built alias table over outcomes `0..n`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability for the "home" outcome of each column.
    prob: Vec<f64>,
    /// Alias outcome taken when the home outcome is rejected.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights (not necessarily
    /// normalized). Panics on an empty slice, a zero/negative total, any
    /// negative weight, or more than `u32::MAX` outcomes.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table limited to u32 outcomes"
        );
        let total: f64 = weights
            .iter()
            .inspect(|&&w| assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}"))
            .sum();
        assert!(total > 0.0, "total weight must be positive");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = vec![0; n];

        // Partition columns into under-full and over-full stacks.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // The large column donates (1 - prob[s]) of its mass.
            let remaining = (prob[l as usize] + prob[s as usize]) - 1.0;
            prob[l as usize] = remaining;
            if remaining < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: saturate.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has zero outcomes (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample(&self, rng: &mut Pcg64) -> usize {
        let col = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = Pcg64::new(seed);
        let mut counts = vec![0u64; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 8]);
        let freqs = empirical(&t, 200_000, 1);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_probabilities() {
        let weights = [8.0, 4.0, 2.0, 1.0, 1.0];
        let total: f64 = weights.iter().sum();
        let t = AliasTable::new(&weights);
        let freqs = empirical(&t, 400_000, 2);
        for (f, w) in freqs.iter().zip(&weights) {
            let expected = w / total;
            assert!((f - expected).abs() < 0.01, "freq {f} vs {expected}");
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 3.0, 0.0]);
        let freqs = empirical(&t, 100_000, 3);
        assert_eq!(freqs[1], 0.0);
        assert_eq!(freqs[3], 0.0);
        assert!((freqs[0] - 0.25).abs() < 0.01);
    }

    #[test]
    fn single_outcome_always_sampled() {
        let t = AliasTable::new(&[42.0]);
        let mut rng = Pcg64::new(4);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn unnormalized_weights_accepted() {
        let a = AliasTable::new(&[0.25, 0.75]);
        let b = AliasTable::new(&[25.0, 75.0]);
        let fa = empirical(&a, 200_000, 5);
        let fb = empirical(&b, 200_000, 5);
        assert!((fa[0] - fb[0]).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
