//! Discrete power-law value samplers.
//!
//! Where [`crate::zipf`] samples *ranks*, this module samples *values*:
//! `P(X = r) ∝ r^{-τ}` for `r ∈ [r_min, r_max]`. This is the replica-count
//! model behind Figures 1–4: the paper reports ~70% of objects existing on
//! exactly one peer and >99% on fewer than 0.1% of peers, which is the
//! signature of a discrete power law with τ ≈ 2.2–2.4.

use qcp_util::rng::Pcg64;

/// Discrete bounded power law `P(X = r) ∝ r^{-τ}`, `r ∈ [min, max]`.
#[derive(Debug, Clone)]
pub struct DiscretePowerLaw {
    min: u64,
    /// CDF table for supports small enough to tabulate; `None` beyond that
    /// (falls back to inverse-CDF approximation).
    cdf: Option<Vec<f64>>,
    max: u64,
    tau: f64,
}

/// Largest support tabulated exactly.
const TABLE_LIMIT: u64 = 1 << 22;

impl DiscretePowerLaw {
    /// Builds a sampler on `[min, max]` with exponent `tau > 0`.
    pub fn new(min: u64, max: u64, tau: f64) -> Self {
        assert!(min >= 1, "support must start at 1 or above");
        assert!(max >= min, "empty support");
        assert!(tau > 0.0 && tau.is_finite());
        let span = max - min + 1;
        let cdf = if span <= TABLE_LIMIT {
            let mut acc = 0.0f64;
            let mut table = Vec::with_capacity(span as usize);
            for r in min..=max {
                acc += (r as f64).powf(-tau);
                table.push(acc);
            }
            let total = acc;
            for v in &mut table {
                *v /= total;
            }
            Some(table)
        } else {
            None
        };
        Self { min, cdf, max, tau }
    }

    /// Lower support bound.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Upper support bound.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exponent.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut Pcg64) -> u64 {
        let u = rng.next_f64();
        match &self.cdf {
            Some(table) => {
                // Binary search for the first entry >= u.
                let idx = table.partition_point(|&c| c < u);
                self.min + (idx as u64).min(table.len() as u64 - 1)
            }
            None => {
                // Continuous bounded-Pareto inverse CDF, rounded down.
                let a = 1.0 - self.tau;
                let lo = self.min as f64;
                let hi = self.max as f64 + 1.0;
                let x = if a.abs() < 1e-9 {
                    lo * (hi / lo).powf(u)
                } else {
                    (u * (hi.powf(a) - lo.powf(a)) + lo.powf(a)).powf(1.0 / a)
                };
                (x.floor() as u64).clamp(self.min, self.max)
            }
        }
    }

    /// Exact probability mass at `r` (only for tabulated supports).
    pub fn pmf(&self, r: u64) -> f64 {
        assert!((self.min..=self.max).contains(&r));
        let table = self
            .cdf
            .as_ref()
            // qcplint: allow(panic) — documented API contract: pmf exists
            // only for tabulated supports; misuse is a programmer error.
            .expect("pmf available only for tabulated supports");
        let i = (r - self.min) as usize;
        if i == 0 {
            table[0]
        } else {
            table[i] - table[i - 1]
        }
    }

    /// Expected value (tabulated supports only).
    pub fn mean(&self) -> f64 {
        (self.min..=self.max).map(|r| r as f64 * self.pmf(r)).sum()
    }

    /// Finds the exponent `τ` for which `P(X = min)` equals
    /// `singleton_fraction` on `[min, max]`, by bisection.
    ///
    /// This is how experiments calibrate the replica-count model to the
    /// paper's "70.5% of objects had exactly one replica".
    pub fn calibrate_singleton(min: u64, max: u64, singleton_fraction: f64) -> f64 {
        assert!((0.0..1.0).contains(&singleton_fraction) && singleton_fraction > 0.0);
        let p_min = |tau: f64| -> f64 {
            let z: f64 = (min..=max.min(min + 1_000_000))
                .map(|r| (r as f64).powf(-tau))
                .sum();
            (min as f64).powf(-tau) / z
        };
        let (mut lo, mut hi) = (0.05f64, 12.0f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if p_min(mid) < singleton_fraction {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_support() {
        let d = DiscretePowerLaw::new(1, 100, 2.3);
        let mut rng = Pcg64::new(1);
        for _ in 0..10_000 {
            let r = d.sample(&mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = DiscretePowerLaw::new(1, 500, 2.0);
        let total: f64 = (1..=500).map(|r| d.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_singleton_fraction_matches_pmf() {
        let d = DiscretePowerLaw::new(1, 1000, 2.3);
        let mut rng = Pcg64::new(2);
        let draws = 200_000;
        let singles = (0..draws).filter(|_| d.sample(&mut rng) == 1).count();
        let frac = singles as f64 / draws as f64;
        assert!(
            (frac - d.pmf(1)).abs() < 0.01,
            "frac {frac} pmf {}",
            d.pmf(1)
        );
    }

    #[test]
    fn tau_2_3_gives_seventyish_percent_singletons() {
        // The calibration target from the paper's Figure 1 analysis.
        let d = DiscretePowerLaw::new(1, 37_572, 2.3);
        let p1 = d.pmf(1);
        assert!((0.65..0.82).contains(&p1), "p1 = {p1}");
    }

    #[test]
    fn calibrate_singleton_recovers_target() {
        for target in [0.60, 0.705, 0.80] {
            let tau = DiscretePowerLaw::calibrate_singleton(1, 37_572, target);
            let d = DiscretePowerLaw::new(1, 37_572, tau);
            assert!(
                (d.pmf(1) - target).abs() < 0.005,
                "target {target}, tau {tau}, got {}",
                d.pmf(1)
            );
        }
    }

    #[test]
    fn shifted_support_works() {
        let d = DiscretePowerLaw::new(5, 50, 1.5);
        let mut rng = Pcg64::new(3);
        for _ in 0..5000 {
            let r = d.sample(&mut rng);
            assert!((5..=50).contains(&r));
        }
        assert!(d.pmf(5) > d.pmf(6));
    }

    #[test]
    fn huge_support_uses_approximation() {
        let d = DiscretePowerLaw::new(1, 1 << 30, 2.0);
        let mut rng = Pcg64::new(4);
        let mut singles = 0u64;
        let draws = 100_000;
        for _ in 0..draws {
            let r = d.sample(&mut rng);
            assert!((1..=1 << 30).contains(&r));
            if r == 1 {
                singles += 1;
            }
        }
        // For tau=2 the exact singleton mass is 1/zeta(2) ≈ 0.608; the
        // continuous approximation lands near 0.5-0.65.
        let frac = singles as f64 / draws as f64;
        assert!((0.4..0.75).contains(&frac), "singleton frac {frac}");
    }

    #[test]
    fn mean_matches_empirical() {
        let d = DiscretePowerLaw::new(1, 200, 2.3);
        let mut rng = Pcg64::new(5);
        let draws = 300_000;
        let sum: u64 = (0..draws).map(|_| d.sample(&mut rng)).sum();
        let emp = sum as f64 / draws as f64;
        assert!((emp - d.mean()).abs() < 0.05, "emp {emp} vs {}", d.mean());
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn rejects_inverted_bounds() {
        let _ = DiscretePowerLaw::new(10, 5, 2.0);
    }
}
