//! Tail-exponent estimation and goodness-of-fit.
//!
//! The analysis pipeline fits the synthetic (and, were they available, real)
//! count distributions to verify the "Zipf-like" claims of the paper's
//! Section III. Two estimators are provided:
//!
//! * [`fit_rank_frequency`] — the classic log-log least-squares slope of
//!   the rank-frequency plot (what the paper eyeballs in Figures 1–4);
//! * [`fit_tail_mle`] — the discrete maximum-likelihood estimator of
//!   Clauset–Shalizi–Newman, which is statistically sound where regression
//!   is biased.
//!
//! [`ks_distance_powerlaw`] reports the Kolmogorov–Smirnov distance between
//! the empirical counts and a fitted discrete power law.

use qcp_util::stats::loglog_fit;

/// Result of a tail fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailFit {
    /// Estimated exponent. For rank-frequency fits this is the Zipf `s`
    /// (slope magnitude); for MLE it is the power-law `τ` of `P(X=r)∝r^-τ`.
    pub exponent: f64,
    /// Goodness measure: R² for regression, normalized log-likelihood for
    /// MLE.
    pub goodness: f64,
    /// Number of observations used.
    pub n_used: usize,
}

/// Fits the rank-frequency plot of descending `counts` by least squares in
/// log-log space, returning the Zipf exponent `s` (positive).
///
/// `counts` must be sorted descending (as produced by
/// `qcp_util::hist::rank_counts`); zero counts are skipped.
pub fn fit_rank_frequency(counts: &[u64]) -> TailFit {
    assert!(counts.len() >= 2, "need at least two ranks to fit");
    debug_assert!(
        counts.windows(2).all(|w| w[0] >= w[1]),
        "counts not descending"
    );
    let mut xs = Vec::with_capacity(counts.len());
    let mut ys = Vec::with_capacity(counts.len());
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            xs.push((i + 1) as f64);
            ys.push(c as f64);
        }
    }
    let fit = loglog_fit(&xs, &ys);
    TailFit {
        exponent: -fit.slope,
        goodness: fit.r_squared,
        n_used: xs.len(),
    }
}

/// Discrete power-law MLE (Clauset–Shalizi–Newman) for values
/// `x >= x_min`, maximizing `L(τ) = -n ln ζ(τ, x_min) - τ Σ ln x_i` over a
/// grid with golden-section refinement.
///
/// Returns the estimated `τ`. The zeta function is truncated at a large
/// cutoff, which is exact for bounded supports (all our data is bounded by
/// the peer count).
pub fn fit_tail_mle(values: &[u64], x_min: u64) -> TailFit {
    assert!(x_min >= 1);
    let tail: Vec<u64> = values.iter().copied().filter(|&v| v >= x_min).collect();
    assert!(tail.len() >= 10, "need at least 10 tail observations");
    let n = tail.len() as f64;
    let sum_ln: f64 = tail.iter().map(|&v| (v as f64).ln()).sum();
    // qcplint: allow(panic) — nonempty: `tail.len() >= 10` asserted above.
    let max_v = *tail.iter().max().unwrap();
    // Truncated Hurwitz zeta on [x_min, cutoff].
    let cutoff = (max_v * 4).max(10_000);
    let log_lik = |tau: f64| -> f64 {
        let z: f64 = (x_min..=cutoff).map(|r| (r as f64).powf(-tau)).sum();
        -n * z.ln() - tau * sum_ln
    };
    // Golden-section search on [1.01, 8].
    let (mut a, mut b) = (1.01f64, 8.0f64);
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let mut fc = log_lik(c);
    let mut fd = log_lik(d);
    for _ in 0..60 {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = log_lik(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = log_lik(d);
        }
    }
    let tau = 0.5 * (a + b);
    TailFit {
        exponent: tau,
        goodness: log_lik(tau) / n,
        n_used: tail.len(),
    }
}

/// Kolmogorov–Smirnov distance between the empirical distribution of
/// `values >= x_min` and a discrete power law with exponent `tau` on
/// `[x_min, max(values)]`.
pub fn ks_distance_powerlaw(values: &[u64], x_min: u64, tau: f64) -> f64 {
    let mut tail: Vec<u64> = values.iter().copied().filter(|&v| v >= x_min).collect();
    assert!(!tail.is_empty());
    tail.sort_unstable();
    // qcplint: allow(panic) — nonempty: asserted two lines above.
    let max_v = *tail.last().unwrap();
    // Model CDF.
    let z: f64 = (x_min..=max_v).map(|r| (r as f64).powf(-tau)).sum();
    let mut model_cdf = Vec::with_capacity((max_v - x_min + 1) as usize);
    let mut acc = 0.0;
    for r in x_min..=max_v {
        acc += (r as f64).powf(-tau) / z;
        model_cdf.push(acc);
    }
    let n = tail.len() as f64;
    let mut max_d = 0.0f64;
    let mut i = 0usize;
    while i < tail.len() {
        let v = tail[i];
        let mut j = i;
        while j < tail.len() && tail[j] == v {
            j += 1;
        }
        let emp = j as f64 / n;
        let model = model_cdf[(v - x_min) as usize];
        max_d = max_d.max((emp - model).abs());
        i = j;
    }
    max_d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::DiscretePowerLaw;
    use qcp_util::rng::Pcg64;

    fn synthetic_counts(n_items: usize, s: f64, draws: usize, seed: u64) -> Vec<u64> {
        let z = crate::zipf::Zipf::new(n_items, s);
        let mut rng = Pcg64::new(seed);
        let mut counts = vec![0u64; n_items];
        for _ in 0..draws {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }

    #[test]
    fn rank_frequency_recovers_exponent() {
        let counts = synthetic_counts(2000, 1.0, 2_000_000, 1);
        let fit = fit_rank_frequency(&counts[..500]);
        assert!(
            (fit.exponent - 1.0).abs() < 0.15,
            "estimated {}",
            fit.exponent
        );
        assert!(fit.goodness > 0.95);
    }

    #[test]
    fn rank_frequency_skips_zero_counts() {
        let counts = vec![100, 50, 25, 0, 0];
        let fit = fit_rank_frequency(&counts);
        assert_eq!(fit.n_used, 3);
        assert!(fit.exponent > 0.0);
    }

    #[test]
    fn mle_recovers_tau() {
        let d = DiscretePowerLaw::new(1, 100_000, 2.3);
        let mut rng = Pcg64::new(2);
        let values: Vec<u64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_tail_mle(&values, 1);
        assert!((fit.exponent - 2.3).abs() < 0.1, "tau {}", fit.exponent);
    }

    #[test]
    fn mle_with_higher_xmin_still_recovers() {
        let d = DiscretePowerLaw::new(1, 100_000, 2.0);
        let mut rng = Pcg64::new(3);
        let values: Vec<u64> = (0..80_000).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_tail_mle(&values, 3);
        assert!((fit.exponent - 2.0).abs() < 0.15, "tau {}", fit.exponent);
    }

    #[test]
    fn ks_distance_small_for_true_model() {
        let d = DiscretePowerLaw::new(1, 10_000, 2.2);
        let mut rng = Pcg64::new(4);
        let values: Vec<u64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let good = ks_distance_powerlaw(&values, 1, 2.2);
        let bad = ks_distance_powerlaw(&values, 1, 4.0);
        assert!(good < 0.02, "good KS {good}");
        assert!(bad > good * 3.0, "bad {bad} vs good {good}");
    }

    #[test]
    fn geometric_data_is_not_powerlaw() {
        // Geometric decay should fit poorly relative to true power law data.
        let mut rng = Pcg64::new(5);
        let values: Vec<u64> = (0..30_000)
            .map(|_| {
                let mut v = 1u64;
                while rng.chance(0.5) && v < 64 {
                    v += 1;
                }
                v
            })
            .collect();
        let fit = fit_tail_mle(&values, 1);
        let ks = ks_distance_powerlaw(&values, 1, fit.exponent);
        assert!(ks > 0.05, "geometric data KS unexpectedly small: {ks}");
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn fit_rank_frequency_rejects_tiny_input() {
        let _ = fit_rank_frequency(&[5]);
    }
}
