//! Zipf and Zipf–Mandelbrot rank samplers.
//!
//! A Zipf distribution over ranks `1..=n` with exponent `s` assigns
//! `P(rank = k) ∝ k^{-s}`. The Zipf–Mandelbrot generalization
//! `P(k) ∝ (k + q)^{-s}` flattens the head, which matches measured P2P
//! query-term popularity better than pure Zipf (the paper's Figure 3 shows
//! exactly this flattened-head, straight-tail shape).
//!
//! Both samplers are thin wrappers over an [`AliasTable`], so sampling is
//! O(1) after O(n) setup. For supports too large for a table (hundreds of
//! millions of ranks) use [`Zipf::sample_approx`], an inverse-CDF
//! approximation that needs no per-rank state.

use crate::alias::AliasTable;
use qcp_util::rng::Pcg64;

/// Zipf distribution over ranks `1..=n` with exponent `s > 0`.
///
/// ```
/// use qcp_zipf::Zipf;
/// use qcp_util::rng::Pcg64;
///
/// let zipf = Zipf::new(1_000, 1.0);
/// let mut rng = Pcg64::new(42);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000).contains(&rank));
/// // Rank 1 carries twice the mass of rank 2 at s = 1.
/// assert!((zipf.pmf(1) / zipf.pmf(2) - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: usize,
    s: f64,
    table: AliasTable,
}

impl Zipf {
    /// Builds a Zipf sampler; `n >= 1`, `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "support must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "exponent must be positive");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        Self {
            n,
            s,
            table: AliasTable::new(&weights),
        }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws a rank in `1..=n`.
    #[inline]
    pub fn sample(&self, rng: &mut Pcg64) -> usize {
        self.table.sample(rng) + 1
    }

    /// Draws a 0-based index in `0..n` (convenience for indexing arrays of
    /// items ordered by popularity).
    #[inline]
    pub fn sample_index(&self, rng: &mut Pcg64) -> usize {
        self.table.sample(rng)
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.n).contains(&k));
        let h: f64 = (1..=self.n).map(|j| (j as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / h
    }

    /// Table-free approximate sampler for huge supports.
    ///
    /// Uses the continuous inverse CDF of the bounded Pareto with the same
    /// exponent, rounded to an integer rank; accurate to within a rank or
    /// two everywhere except the extreme head, and O(1) memory.
    pub fn sample_approx(n: usize, s: f64, rng: &mut Pcg64) -> usize {
        assert!(n >= 1 && s > 0.0);
        let u = rng.next_f64();
        let rank = if (s - 1.0).abs() < 1e-9 {
            // H(x) ~ ln(x); invert u = ln(x)/ln(n+1).
            ((n as f64 + 1.0).powf(u)).floor()
        } else {
            let a = 1.0 - s;
            // Continuous CDF on [1, n+1): F(x) = (x^a - 1) / ((n+1)^a - 1).
            let top = (n as f64 + 1.0).powf(a) - 1.0;
            ((u * top + 1.0).powf(1.0 / a)).floor()
        };
        (rank as usize).clamp(1, n)
    }
}

/// Zipf–Mandelbrot distribution: `P(k) ∝ (k + q)^{-s}` over ranks `1..=n`.
#[derive(Debug, Clone)]
pub struct ZipfMandelbrot {
    n: usize,
    s: f64,
    q: f64,
    table: AliasTable,
}

impl ZipfMandelbrot {
    /// Builds a Zipf–Mandelbrot sampler; `n >= 1`, `s > 0`, `q >= 0`.
    pub fn new(n: usize, s: f64, q: f64) -> Self {
        assert!(n >= 1 && s > 0.0 && q >= 0.0);
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64 + q).powf(-s)).collect();
        Self {
            n,
            s,
            q,
            table: AliasTable::new(&weights),
        }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Flattening offset.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Draws a rank in `1..=n`.
    #[inline]
    pub fn sample(&self, rng: &mut Pcg64) -> usize {
        self.table.sample(rng) + 1
    }

    /// Draws a 0-based index in `0..n`.
    #[inline]
    pub fn sample_index(&self, rng: &mut Pcg64) -> usize {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_freqs(n: usize, s: f64, draws: usize) -> Vec<f64> {
        let z = Zipf::new(n, s);
        let mut rng = Pcg64::new(7);
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn zipf_head_probability_matches_pmf() {
        let z = Zipf::new(100, 1.0);
        let freqs = rank_freqs(100, 1.0, 300_000);
        for k in [1usize, 2, 5, 10] {
            let expected = z.pmf(k);
            assert!(
                (freqs[k - 1] - expected).abs() < 0.01,
                "rank {k}: {} vs {}",
                freqs[k - 1],
                expected
            );
        }
    }

    #[test]
    fn zipf_rank1_twice_rank2_at_s1() {
        let freqs = rank_freqs(1000, 1.0, 500_000);
        let ratio = freqs[0] / freqs[1];
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn zipf_samples_within_support() {
        let z = Zipf::new(10, 1.2);
        let mut rng = Pcg64::new(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=10).contains(&k));
        }
    }

    #[test]
    fn higher_exponent_concentrates_head() {
        let f_light = rank_freqs(100, 0.7, 100_000);
        let f_heavy = rank_freqs(100, 2.0, 100_000);
        assert!(f_heavy[0] > f_light[0]);
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.3);
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_approx_within_support_and_head_heavy() {
        let mut rng = Pcg64::new(9);
        let n = 1_000_000;
        let mut head = 0u64;
        let draws = 100_000;
        for _ in 0..draws {
            let k = Zipf::sample_approx(n, 1.0, &mut rng);
            assert!((1..=n).contains(&k));
            if k <= 10 {
                head += 1;
            }
        }
        // For s=1, P(rank <= 10) ≈ ln(11)/ln(n+1) ≈ 0.17.
        let frac = head as f64 / draws as f64;
        assert!((0.10..0.25).contains(&frac), "head fraction {frac}");
    }

    #[test]
    fn sample_approx_s_equal_one_boundary() {
        let mut rng = Pcg64::new(10);
        for _ in 0..1000 {
            let k = Zipf::sample_approx(100, 1.0, &mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn mandelbrot_q_zero_matches_zipf_shape() {
        let zm = ZipfMandelbrot::new(100, 1.0, 0.0);
        let z = Zipf::new(100, 1.0);
        let mut rng_a = Pcg64::new(3);
        let mut rng_b = Pcg64::new(3);
        // Same RNG stream + same weights => identical alias decisions.
        for _ in 0..1000 {
            assert_eq!(zm.sample(&mut rng_a), z.sample(&mut rng_b));
        }
    }

    #[test]
    fn mandelbrot_flattens_head() {
        let draws = 200_000;
        let mut rng = Pcg64::new(4);
        let zm = ZipfMandelbrot::new(100, 1.0, 10.0);
        let mut counts = vec![0u64; 100];
        for _ in 0..draws {
            counts[zm.sample(&mut rng) - 1] += 1;
        }
        let r1 = counts[0] as f64;
        let r2 = counts[1] as f64;
        // With q=10 the head ratio (1+q)/(2+q) ≈ 0.917, far from 1/2.
        assert!((r2 / r1 - 11.0 / 12.0).abs() < 0.1);
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_zero_support() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_nonpositive_exponent() {
        let _ = Zipf::new(10, 0.0);
    }
}
