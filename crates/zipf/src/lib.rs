//! `qcp-zipf` — heavy-tailed distributions and tail fitting.
//!
//! The paper's entire argument rests on Zipf-like long tails: object names,
//! annotation terms, query terms and replica counts all follow (different)
//! power laws. This crate provides:
//!
//! * [`alias`] — Walker/Vose alias tables for O(1) sampling from arbitrary
//!   finite discrete distributions;
//! * [`zipf`] — Zipf and Zipf–Mandelbrot samplers over ranks `1..=n`;
//! * [`powerlaw`] — discrete power-law *value* samplers `P(X = r) ∝ r^{-τ}`
//!   on a bounded support, used for replica-count generation;
//! * [`fit`] — rank-frequency regression and discrete maximum-likelihood
//!   estimation of the tail exponent, plus a Kolmogorov–Smirnov distance
//!   for goodness-of-fit, so the analysis pipeline can *verify* that the
//!   synthetic traces are as Zipf as the paper claims the real ones are.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod fit;
pub mod powerlaw;
pub mod zipf;

pub use alias::AliasTable;
pub use fit::{fit_rank_frequency, fit_tail_mle, ks_distance_powerlaw, TailFit};
pub use powerlaw::DiscretePowerLaw;
pub use zipf::{Zipf, ZipfMandelbrot};
