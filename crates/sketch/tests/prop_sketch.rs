//! Property tests for the sketch substrate.

use proptest::prelude::*;
use qcp_sketch::{AttenuatedBloom, BloomFilter, CountingBloom, SynopsisBudget, TermSynopsis};
use qcp_util::Symbol;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After inserting a multiset and removing a sub-multiset, every key
    /// still present in the multiset must still be reported (no false
    /// negatives), as long as no cell saturated (generously sized filter).
    #[test]
    fn counting_bloom_multiset_round_trip(
        keys in proptest::collection::vec(0u64..50, 1..120),
        remove_prefix in 0usize..60,
    ) {
        let mut filter = CountingBloom::new(8192, 4);
        for &k in &keys {
            filter.insert(k);
        }
        let removed = &keys[..remove_prefix.min(keys.len())];
        for &k in removed {
            filter.remove(k);
        }
        // Remaining multiset.
        let mut counts: std::collections::HashMap<u64, i64> = Default::default();
        for &k in &keys {
            *counts.entry(k).or_insert(0) += 1;
        }
        for &k in removed {
            *counts.entry(k).or_insert(0) -= 1;
        }
        for (&k, &c) in &counts {
            if c > 0 {
                prop_assert!(filter.contains(k), "lost key {k} with count {c}");
            }
        }
    }

    /// Synopsis admission: every admitted term is advertised, admissions
    /// never exceed the budget, and weights are non-increasing.
    #[test]
    fn synopsis_admission_invariants(
        candidates in proptest::collection::vec((0u32..1000, 0.0f64..100.0), 0..80),
        max_terms in 1usize..40,
    ) {
        let budget = SynopsisBudget::for_terms(max_terms, 0.01);
        let cand: Vec<(Symbol, f64)> =
            candidates.iter().map(|&(s, w)| (Symbol(s), w)).collect();
        let syn = TermSynopsis::build(budget, &cand);
        prop_assert!(syn.len() <= max_terms);
        for w in syn.admitted().windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "weights must be non-increasing");
        }
        for &(term, _) in syn.admitted() {
            prop_assert!(syn.advertises(term));
        }
        // No duplicate admissions.
        let mut seen: Vec<u32> = syn.admitted().iter().map(|(s, _)| s.0).collect();
        let before = seen.len();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), before);
    }

    /// The attenuated filter's min_distance never *decreases* along the
    /// levels when content is only inserted deeper.
    #[test]
    fn attenuated_min_distance_is_first_level(
        inserts in proptest::collection::vec((0usize..4, 0u64..1000), 0..60),
        probe in 0u64..1000,
    ) {
        let mut ab = AttenuatedBloom::new(4, 4096, 4);
        let mut truth: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for &(level, key) in &inserts {
            ab.insert_at(level, key);
            truth[level].push(key);
        }
        // If the probe key was inserted at level L, min_distance <= L
        // (Bloom false positives can only make it smaller, never larger).
        if let Some(first_true) = truth.iter().position(|lvl| lvl.contains(&probe)) {
            let d = ab.min_distance(probe).expect("inserted key must be found");
            prop_assert!(d <= first_true);
        }
    }

    /// Plain Bloom: fill ratio and estimated fpp are monotone in inserts.
    #[test]
    fn bloom_fill_monotone(keys in proptest::collection::vec(any::<u64>(), 1..100)) {
        let mut f = BloomFilter::new(2048, 4);
        let mut last_fill = 0.0f64;
        for &k in &keys {
            f.insert(k);
            let fill = f.fill_ratio();
            prop_assert!(fill >= last_fill);
            last_fill = fill;
        }
        prop_assert!(f.estimated_fpp() <= 1.0);
    }
}
