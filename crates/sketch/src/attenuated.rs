//! Attenuated Bloom filters.
//!
//! An attenuated Bloom filter is a stack of `d` plain filters: level 0
//! summarizes a peer's own content, level `i` summarizes content reachable
//! through that peer in exactly `i` overlay hops. Neighbors exchange their
//! stacks; a peer merges each neighbor's level `i` into its own level
//! `i + 1`. Routing a query then means forwarding toward the neighbor whose
//! shallowest matching level is smallest — the standard probabilistic-hint
//! routing structure for unstructured overlays, and the carrier for the
//! paper's query-centric synopses.

use crate::bloom::BloomFilter;

/// A stack of Bloom filters indexed by hop distance.
#[derive(Debug, Clone)]
pub struct AttenuatedBloom {
    levels: Vec<BloomFilter>,
}

impl AttenuatedBloom {
    /// Creates a `depth`-level stack of `m`-bit, `k`-hash filters.
    pub fn new(depth: usize, m: usize, k: u32) -> Self {
        assert!(depth >= 1, "need at least one level");
        Self {
            levels: (0..depth).map(|_| BloomFilter::new(m, k)).collect(),
        }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Inserts a key at hop distance `level`.
    pub fn insert_at(&mut self, level: usize, key: u64) {
        self.levels[level].insert(key);
    }

    /// Inserts a key at level 0 (the peer's own content).
    pub fn insert_local(&mut self, key: u64) {
        self.insert_at(0, key);
    }

    /// Returns the smallest level whose filter claims the key, or `None`.
    ///
    /// Smaller is better when routing: the content is (probabilistically)
    /// fewer hops away.
    pub fn min_distance(&self, key: u64) -> Option<usize> {
        self.levels.iter().position(|f| f.contains(key))
    }

    /// True if any level claims the key.
    pub fn contains(&self, key: u64) -> bool {
        self.min_distance(key).is_some()
    }

    /// Merges a neighbor's stack into this one, shifted one hop outward:
    /// the neighbor's level `i` lands in our level `i + 1`; the neighbor's
    /// deepest level is dropped (it would exceed our horizon).
    pub fn absorb_neighbor(&mut self, neighbor: &AttenuatedBloom) {
        assert_eq!(self.depth(), neighbor.depth(), "depth mismatch");
        for i in (1..self.levels.len()).rev() {
            let (head, tail) = self.levels.split_at_mut(i);
            let _ = head; // self.levels[i] updated from neighbor, not self
            tail[0].union_in_place(&neighbor.levels[i - 1]);
        }
    }

    /// Direct access to one level.
    pub fn level(&self, i: usize) -> &BloomFilter {
        &self.levels[i]
    }

    /// Clears every level.
    pub fn clear(&mut self) {
        for l in &mut self.levels {
            l.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_content_is_distance_zero() {
        let mut a = AttenuatedBloom::new(3, 1024, 4);
        a.insert_local(42);
        assert_eq!(a.min_distance(42), Some(0));
        assert!(a.contains(42));
    }

    #[test]
    fn absent_key_has_no_distance() {
        let a = AttenuatedBloom::new(3, 1024, 4);
        assert_eq!(a.min_distance(42), None);
        assert!(!a.contains(42));
    }

    #[test]
    fn absorb_shifts_levels_outward() {
        let mut me = AttenuatedBloom::new(3, 2048, 4);
        let mut neigh = AttenuatedBloom::new(3, 2048, 4);
        neigh.insert_local(7); // neighbor holds key 7
        me.absorb_neighbor(&neigh);
        assert_eq!(me.min_distance(7), Some(1));
    }

    #[test]
    fn two_hop_propagation() {
        let mut a = AttenuatedBloom::new(3, 2048, 4);
        let mut b = AttenuatedBloom::new(3, 2048, 4);
        let mut c = AttenuatedBloom::new(3, 2048, 4);
        c.insert_local(99);
        b.absorb_neighbor(&c); // b sees 99 at distance 1
        a.absorb_neighbor(&b); // a sees 99 at distance 2
        assert_eq!(a.min_distance(99), Some(2));
    }

    #[test]
    fn deepest_level_is_dropped_on_absorb() {
        let mut a = AttenuatedBloom::new(2, 2048, 4);
        let mut b = AttenuatedBloom::new(2, 2048, 4);
        b.insert_at(1, 5); // at b's horizon already
        a.absorb_neighbor(&b);
        // Would need level 2, which doesn't exist: key must not appear.
        assert_eq!(a.min_distance(5), None);
    }

    #[test]
    fn min_distance_prefers_closer_level() {
        let mut a = AttenuatedBloom::new(3, 2048, 4);
        a.insert_at(2, 11);
        a.insert_at(0, 11);
        assert_eq!(a.min_distance(11), Some(0));
    }

    #[test]
    fn clear_resets_all_levels() {
        let mut a = AttenuatedBloom::new(2, 512, 3);
        a.insert_local(1);
        a.insert_at(1, 2);
        a.clear();
        assert!(!a.contains(1));
        assert!(!a.contains(2));
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn absorb_rejects_depth_mismatch() {
        let mut a = AttenuatedBloom::new(2, 512, 3);
        let b = AttenuatedBloom::new(3, 512, 3);
        a.absorb_neighbor(&b);
    }
}
