//! Counting Bloom filter: supports deletion at 8 bits per cell.
//!
//! Synopses in a live overlay are not write-once — peers add and remove
//! shared files, and the adaptive synopsis evicts terms whose query
//! popularity decays. A counting filter supports removal; saturated cells
//! (255) stick, trading accuracy for safety exactly as the classic design
//! prescribes.

use qcp_util::hash::mix64;

/// A counting Bloom filter over pre-hashed `u64` keys.
#[derive(Debug, Clone)]
pub struct CountingBloom {
    cells: Vec<u8>,
    k: u32,
    items: isize,
}

impl CountingBloom {
    /// Creates a filter with `m` cells (rounded up to a multiple of 64 so
    /// that probe positions stay aligned with [`crate::bloom::BloomFilter`]
    /// for `to_bloom`) and `k` hash functions.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0 && k > 0);
        let m = m.div_ceil(64) * 64;
        Self {
            cells: vec![0; m],
            k,
            items: 0,
        }
    }

    /// Sizes for `n` items at target false-positive rate `p` (same formula
    /// as the plain filter; cells instead of bits).
    pub fn for_capacity(n: usize, p: f64) -> Self {
        let proto = crate::bloom::BloomFilter::for_capacity(n, p);
        Self::new(proto.bit_len(), proto.k())
    }

    #[inline]
    fn probes(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = mix64(key);
        let h2 = mix64(key ^ crate::PROBE_H2_TAG) | 1;
        let m = self.cells.len() as u64;
        (0..self.k).map(move |i| (h1.wrapping_add(h2.wrapping_mul(i as u64)) % m) as usize)
    }

    /// Inserts a key (increments its cells, saturating at 255).
    pub fn insert(&mut self, key: u64) {
        let probes: Vec<usize> = self.probes(key).collect();
        for c in probes {
            self.cells[c] = self.cells[c].saturating_add(1);
        }
        self.items += 1;
    }

    /// Removes a key previously inserted. Saturated cells are left
    /// untouched (they can no longer be decremented safely). Removing a key
    /// that was never inserted corrupts the filter, as with any counting
    /// Bloom filter; callers own that invariant.
    pub fn remove(&mut self, key: u64) {
        let probes: Vec<usize> = self.probes(key).collect();
        for c in probes {
            if self.cells[c] != u8::MAX && self.cells[c] > 0 {
                self.cells[c] -= 1;
            }
        }
        self.items -= 1;
    }

    /// Membership test.
    pub fn contains(&self, key: u64) -> bool {
        self.probes(key).all(|c| self.cells[c] > 0)
    }

    /// Number of live insertions (insertions minus removals).
    pub fn items(&self) -> isize {
        self.items
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the filter has no cells (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Collapses to a plain Bloom filter (cell > 0 ⇒ bit set).
    pub fn to_bloom(&self) -> crate::bloom::BloomFilter {
        let mut b = crate::bloom::BloomFilter::new(self.cells.len(), self.k);
        // Direct bit construction: replay probes is impossible (keys are
        // gone), so copy the occupancy pattern cell-by-cell.
        for (i, &c) in self.cells.iter().enumerate() {
            if c > 0 {
                b.set_bit_raw(i);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut f = CountingBloom::new(1024, 4);
        f.insert(10);
        f.insert(20);
        assert!(f.contains(10));
        assert!(f.contains(20));
        assert!(!f.contains(30));
    }

    #[test]
    fn remove_clears_membership() {
        let mut f = CountingBloom::new(2048, 4);
        f.insert(7);
        assert!(f.contains(7));
        f.remove(7);
        assert!(!f.contains(7));
        assert_eq!(f.items(), 0);
    }

    #[test]
    fn remove_keeps_other_members() {
        let mut f = CountingBloom::for_capacity(500, 0.01);
        for i in 0..500u64 {
            f.insert(i);
        }
        for i in 0..250u64 {
            f.remove(i);
        }
        for i in 250..500u64 {
            assert!(f.contains(i), "lost {i} after unrelated removals");
        }
    }

    #[test]
    fn double_insert_needs_double_remove() {
        let mut f = CountingBloom::new(1024, 3);
        f.insert(99);
        f.insert(99);
        f.remove(99);
        assert!(f.contains(99));
        f.remove(99);
        assert!(!f.contains(99));
    }

    #[test]
    fn saturation_sticks() {
        let mut f = CountingBloom::new(64, 1);
        for _ in 0..300 {
            f.insert(5);
        }
        for _ in 0..300 {
            f.remove(5);
        }
        // Saturated cell cannot be decremented: stays a member forever.
        assert!(f.contains(5));
    }

    #[test]
    fn to_bloom_preserves_membership() {
        let mut f = CountingBloom::for_capacity(200, 0.01);
        for i in 0..200u64 {
            f.insert(i * 3);
        }
        let b = f.to_bloom();
        for i in 0..200u64 {
            assert!(b.contains(i * 3));
        }
    }
}
