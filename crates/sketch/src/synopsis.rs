//! Budgeted, weight-aware term synopses.
//!
//! A peer cannot advertise every term it shares — synopsis space is the
//! scarce resource (it is gossiped to neighbors). [`TermSynopsis`] admits
//! terms into a fixed-size Bloom filter in *descending weight order* until
//! the budget (an expected false-positive ceiling) is exhausted.
//!
//! The weighting function is the crux of the paper:
//!
//! * a **content-centric** synopsis weights terms by local occurrence
//!   frequency — it advertises what the peer *has*;
//! * a **query-centric** synopsis weights terms by observed query-term
//!   popularity — it advertises what other peers *ask for*.
//!
//! Because popular file terms and popular query terms overlap by less than
//! 20% (Figure 7), these two policies admit very different term sets, and
//! the query-centric one resolves more searches per synopsis bit. The
//! ablation `A1` quantifies this.

use crate::bloom::BloomFilter;
use qcp_util::Symbol;

/// Admission budget for a synopsis.
#[derive(Debug, Clone, Copy)]
pub struct SynopsisBudget {
    /// Size of the underlying filter in bits.
    pub bits: usize,
    /// Number of hash functions.
    pub k: u32,
    /// Maximum number of terms admitted (keeps the false-positive rate
    /// bounded regardless of how many candidates carry weight).
    pub max_terms: usize,
}

impl SynopsisBudget {
    /// A budget sized for `max_terms` at false-positive rate `p`.
    pub fn for_terms(max_terms: usize, p: f64) -> Self {
        let proto = BloomFilter::for_capacity(max_terms.max(1), p);
        Self {
            bits: proto.bit_len(),
            k: proto.k(),
            max_terms,
        }
    }
}

/// A term synopsis: the admitted term set (exact, for introspection and
/// eviction decisions) plus the Bloom filter actually advertised.
#[derive(Debug, Clone)]
pub struct TermSynopsis {
    budget: SynopsisBudget,
    admitted: Vec<(Symbol, f64)>,
    filter: BloomFilter,
}

impl TermSynopsis {
    /// Builds a synopsis by admitting the highest-weight candidates first.
    ///
    /// `candidates` are `(term, weight)` pairs; duplicates are admitted
    /// once (first occurrence wins). Weights must be finite.
    pub fn build(budget: SynopsisBudget, candidates: &[(Symbol, f64)]) -> Self {
        let mut sorted: Vec<(Symbol, f64)> = candidates.to_vec();
        // Deterministic *total* order: weight descending (total_cmp, so
        // even non-finite weights order reproducibly), then symbol
        // ascending.
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut filter = BloomFilter::new(budget.bits, budget.k);
        let mut admitted = Vec::new();
        let mut seen = qcp_util::FxHashSet::default();
        for &(sym, w) in &sorted {
            if admitted.len() >= budget.max_terms {
                break;
            }
            if seen.insert(sym) {
                filter.insert(term_key(sym));
                admitted.push((sym, w));
            }
        }
        Self {
            budget,
            admitted,
            filter,
        }
    }

    /// Probabilistic membership: true if the synopsis advertises the term.
    pub fn advertises(&self, term: Symbol) -> bool {
        self.filter.contains(term_key(term))
    }

    /// Exact admitted set (descending weight).
    pub fn admitted(&self) -> &[(Symbol, f64)] {
        &self.admitted
    }

    /// Number of admitted terms.
    pub fn len(&self) -> usize {
        self.admitted.len()
    }

    /// True when nothing was admitted.
    pub fn is_empty(&self) -> bool {
        self.admitted.is_empty()
    }

    /// The advertised filter (e.g. to seed an [`crate::AttenuatedBloom`]).
    pub fn filter(&self) -> &BloomFilter {
        &self.filter
    }

    /// The budget this synopsis was built under.
    pub fn budget(&self) -> SynopsisBudget {
        self.budget
    }
}

/// Canonical Bloom key for a term symbol.
#[inline]
pub fn term_key(sym: Symbol) -> u64 {
    // Spread the dense symbol index across u64 space.
    qcp_util::hash::mix64(sym.0 as u64 ^ 0x7e57_0000_5eed_0001)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(pairs: &[(u32, f64)]) -> Vec<(Symbol, f64)> {
        pairs.iter().map(|&(s, w)| (Symbol(s), w)).collect()
    }

    #[test]
    fn admits_highest_weight_first() {
        let budget = SynopsisBudget::for_terms(2, 0.01);
        let s = TermSynopsis::build(budget, &syms(&[(1, 0.5), (2, 3.0), (3, 1.0)]));
        let admitted: Vec<u32> = s.admitted().iter().map(|(sym, _)| sym.0).collect();
        assert_eq!(admitted, vec![2, 3]);
        assert!(s.advertises(Symbol(2)));
        assert!(s.advertises(Symbol(3)));
    }

    #[test]
    fn budget_caps_admissions() {
        let budget = SynopsisBudget::for_terms(5, 0.01);
        let candidates: Vec<(Symbol, f64)> =
            (0..100).map(|i| (Symbol(i), 1.0 + i as f64)).collect();
        let s = TermSynopsis::build(budget, &candidates);
        assert_eq!(s.len(), 5);
        // The five heaviest are 95..=99.
        assert!(s.admitted().iter().all(|(sym, _)| sym.0 >= 95));
    }

    #[test]
    fn duplicates_admitted_once() {
        let budget = SynopsisBudget::for_terms(10, 0.01);
        let s = TermSynopsis::build(budget, &syms(&[(7, 2.0), (7, 1.0), (8, 0.5)]));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn deterministic_tie_break() {
        let budget = SynopsisBudget::for_terms(1, 0.01);
        let a = TermSynopsis::build(budget, &syms(&[(5, 1.0), (3, 1.0)]));
        let b = TermSynopsis::build(budget, &syms(&[(3, 1.0), (5, 1.0)]));
        assert_eq!(a.admitted()[0].0, Symbol(3));
        assert_eq!(b.admitted()[0].0, Symbol(3));
    }

    #[test]
    fn unadmitted_terms_mostly_not_advertised() {
        let budget = SynopsisBudget::for_terms(50, 0.001);
        let candidates: Vec<(Symbol, f64)> = (0..50).map(|i| (Symbol(i), 10.0)).collect();
        let s = TermSynopsis::build(budget, &candidates);
        let false_pos = (1000..11_000).filter(|&i| s.advertises(Symbol(i))).count();
        assert!(false_pos < 60, "too many false positives: {false_pos}");
    }

    #[test]
    fn empty_candidates_empty_synopsis() {
        let budget = SynopsisBudget::for_terms(10, 0.01);
        let s = TermSynopsis::build(budget, &[]);
        assert!(s.is_empty());
        assert!(!s.advertises(Symbol(1)));
    }

    #[test]
    fn query_centric_vs_content_centric_admit_different_sets() {
        // Terms 0..10 are locally frequent; terms 100..110 are what queries
        // ask for. The two weightings admit disjoint sets under a budget of
        // 10 — the paper's mismatch, in miniature.
        let budget = SynopsisBudget::for_terms(10, 0.01);
        let content: Vec<(Symbol, f64)> = (0..10)
            .map(|i| (Symbol(i), 100.0))
            .chain((100..110).map(|i| (Symbol(i), 1.0)))
            .collect();
        let query: Vec<(Symbol, f64)> = (0..10)
            .map(|i| (Symbol(i), 1.0))
            .chain((100..110).map(|i| (Symbol(i), 100.0)))
            .collect();
        let cc = TermSynopsis::build(budget, &content);
        let qc = TermSynopsis::build(budget, &query);
        let cc_set: std::collections::HashSet<u32> =
            cc.admitted().iter().map(|(s, _)| s.0).collect();
        let qc_set: std::collections::HashSet<u32> =
            qc.admitted().iter().map(|(s, _)| s.0).collect();
        assert!(cc_set.is_disjoint(&qc_set));
    }
}
