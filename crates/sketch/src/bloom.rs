//! Plain Bloom filter with Kirsch–Mitzenmacher double hashing.

use qcp_util::hash::mix64;

/// A Bloom filter over `u64`-hashable items.
///
/// Items are inserted via a pre-hashed `u64` key (callers hash strings or
/// symbols once with `qcp_util::hash`); internally `k` probe positions are
/// derived by double hashing `h1 + i * h2`.
///
/// ```
/// use qcp_sketch::BloomFilter;
///
/// let mut filter = BloomFilter::for_capacity(1_000, 0.01);
/// filter.insert(42);
/// assert!(filter.contains(42));       // never a false negative
/// assert!(!filter.contains(43));      // false positives are rare (~1%)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
    items: usize,
}

impl BloomFilter {
    /// Creates a filter with `m` bits (rounded up to a multiple of 64) and
    /// `k` hash functions.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0 && k > 0, "degenerate Bloom parameters");
        let words = m.div_ceil(64);
        Self {
            bits: vec![0; words],
            m: words * 64,
            k,
            items: 0,
        }
    }

    /// Sizes a filter for `n` expected items at false-positive rate `p`,
    /// using the standard optimal formulas.
    pub fn for_capacity(n: usize, p: f64) -> Self {
        assert!(n > 0 && p > 0.0 && p < 1.0);
        let ln2 = std::f64::consts::LN_2;
        let m = ((-(n as f64) * p.ln()) / (ln2 * ln2)).ceil() as usize;
        let k = ((m as f64 / n as f64) * ln2).round().max(1.0) as u32;
        Self::new(m.max(64), k)
    }

    #[inline]
    fn probes(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = mix64(key);
        let h2 = mix64(key ^ crate::PROBE_H2_TAG) | 1; // odd => full period
        let m = self.m as u64;
        (0..self.k).map(move |i| (h1.wrapping_add(h2.wrapping_mul(i as u64)) % m) as usize)
    }

    /// Inserts a pre-hashed key.
    pub fn insert(&mut self, key: u64) {
        let probes: Vec<usize> = self.probes(key).collect();
        for bit in probes {
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
        self.items += 1;
    }

    /// Membership test; false positives possible, false negatives not.
    pub fn contains(&self, key: u64) -> bool {
        self.probes(key)
            .all(|bit| self.bits[bit / 64] & (1u64 << (bit % 64)) != 0)
    }

    /// Number of bits in the filter.
    pub fn bit_len(&self) -> usize {
        self.m
    }

    /// Number of hash functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of insertions performed (not distinct items).
    pub fn items(&self) -> usize {
        self.items
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        let ones: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        ones as f64 / self.m as f64
    }

    /// Predicted false-positive rate at the current fill.
    pub fn estimated_fpp(&self) -> f64 {
        self.fill_ratio().powi(self.k as i32)
    }

    /// Unions another filter into this one (must share geometry).
    pub fn union_in_place(&mut self, other: &BloomFilter) {
        assert_eq!(self.m, other.m, "geometry mismatch");
        assert_eq!(self.k, other.k, "geometry mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
        self.items += other.items;
    }

    /// Sets one bit by raw position (crate-internal: used to convert a
    /// counting filter's occupancy pattern; probe functions are identical
    /// across the two types by construction).
    pub(crate) fn set_bit_raw(&mut self, bit: usize) {
        self.bits[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.items = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_capacity(1000, 0.01);
        for i in 0..1000u64 {
            f.insert(i);
        }
        for i in 0..1000u64 {
            assert!(f.contains(i), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut f = BloomFilter::for_capacity(10_000, 0.01);
        for i in 0..10_000u64 {
            f.insert(i);
        }
        let fps = (10_000..110_000u64).filter(|&i| f.contains(i)).count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.03, "observed fpp {rate}");
        assert!((f.estimated_fpp() - rate).abs() < 0.02);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 4);
        assert!(!f.contains(42));
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn union_covers_both_sets() {
        let mut a = BloomFilter::new(4096, 4);
        let mut b = BloomFilter::new(4096, 4);
        for i in 0..100u64 {
            a.insert(i);
        }
        for i in 100..200u64 {
            b.insert(i);
        }
        a.union_in_place(&b);
        for i in 0..200u64 {
            assert!(a.contains(i));
        }
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn union_rejects_mismatched_geometry() {
        let mut a = BloomFilter::new(64, 3);
        let b = BloomFilter::new(128, 3);
        a.union_in_place(&b);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(256, 3);
        f.insert(7);
        assert!(f.contains(7));
        f.clear();
        assert!(!f.contains(7));
        assert_eq!(f.items(), 0);
    }

    #[test]
    fn for_capacity_chooses_sane_parameters() {
        let f = BloomFilter::for_capacity(1000, 0.01);
        // ~9.6 bits/item and ~7 hashes are the textbook optima.
        assert!(
            f.bit_len() >= 9000 && f.bit_len() <= 11000,
            "{}",
            f.bit_len()
        );
        assert!((6..=8).contains(&f.k()), "{}", f.k());
    }

    #[test]
    fn bit_len_rounds_to_words() {
        let f = BloomFilter::new(65, 2);
        assert_eq!(f.bit_len(), 128);
    }
}
