//! `qcp-sketch` — probabilistic set sketches.
//!
//! The paper's position (Section VII and the authors' follow-up work, their
//! ref [9]) is that unstructured overlays should carry per-peer *synopses*
//! of content, adapted to observed query-term popularity. This crate
//! provides the synopsis machinery:
//!
//! * [`bloom`] — plain Bloom filters with double hashing;
//! * [`counting`] — counting Bloom filters supporting removal (needed when
//!   synopses are rebuilt incrementally as content churns);
//! * [`attenuated`] — attenuated (multi-level) Bloom filters summarizing
//!   content at increasing hop distances, the classic unstructured-routing
//!   hint structure;
//! * [`synopsis`] — a budgeted, weight-aware term synopsis: given a space
//!   budget, admits the highest-weight terms first. The *query-centric*
//!   search system weights terms by query popularity rather than by local
//!   frequency — that single difference is the paper's thesis, made code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attenuated;
pub mod bloom;
pub mod counting;
pub mod synopsis;

/// Domain tag for the second probe hash of the double-hashed Bloom
/// variants (the splitmix64 golden gamma). `BloomFilter` and
/// `CountingBloom` share it *deliberately*: a counting filter sized
/// like a plain filter must probe the same cells for the same key, so
/// membership answers agree between the two representations.
pub(crate) const PROBE_H2_TAG: u64 = 0x9e37_79b9_7f4a_7c15;

pub use attenuated::AttenuatedBloom;
pub use bloom::BloomFilter;
pub use counting::CountingBloom;
pub use synopsis::{SynopsisBudget, TermSynopsis};
