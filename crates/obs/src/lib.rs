//! `qcp-obs` — the deterministic observability layer.
//!
//! The paper's Figure-8 argument is an *accounting* argument — success
//! rate versus messages per query — so every kernel in the workspace is
//! ultimately a message/hop bookkeeper. This crate gives that
//! bookkeeping one first-class home: a [`Recorder`] trait threaded
//! through the instrumented hot paths (flood census, random walks,
//! expanding ring, Chord lookup/stabilize, overlay repair), with two
//! implementations:
//!
//! * [`NoopRecorder`] — the zero-sized default. Every method is an
//!   empty `#[inline(always)]` body, so monomorphized kernels compile
//!   to *exactly* the uninstrumented code. Recording off costs nothing.
//! * [`MetricsRecorder`] — dense ordered counters (`Kernel` × `Counter`
//!   matrix), per-hop histograms, and span-scoped event tallies.
//!
//! # The determinism contract
//!
//! Recorders are **write-only**: no kernel may read recorder state to
//! make a control-flow or RNG decision, and no recorder method returns
//! a value. Consequently simulation outputs are bitwise identical with
//! recording on or off (pinned by proptests in `qcp-overlay` /
//! `qcp-search` and by `tests/determinism.rs`). Parallel sweeps give
//! each work chunk a private child via [`Recorder::fork`] and merge the
//! children back **in chunk order** via [`Recorder::absorb`] — the same
//! discipline the statistics accumulators use — so recorded totals are
//! independent of pool width too.
//!
//! # Reconciliation
//!
//! [`MetricsRecorder`] totals are not a parallel bookkeeping universe:
//! they must reconcile *exactly* with the existing accounting structs.
//! `Recorder::rec_faults` mirrors a [`FaultStats`] into counters
//! field-by-field, and the `repro profile` artifact asserts the
//! identities (`wasted = dropped + dead_targets`, DHT
//! `dropped = retries + timeouts`, repair
//! `messages = probes + 2·added`) hold on the recorded side as well.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qcp_faults::FaultStats;

/// Instrumented kernels. Indexes the counter matrix of
/// [`MetricsRecorder`]; the order is stable and is the order used by
/// the `repro profile` artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kernel {
    /// BFS flooding (single floods and the hop census).
    Flood,
    /// k-walker random walks.
    Walk,
    /// Expanding-ring (iterative deepening) search.
    ExpandingRing,
    /// Chord greedy lookups (plain, faulty, and stale-table).
    ChordLookup,
    /// Chord maintenance: stabilize / fix-fingers / rejoin rounds.
    Stabilize,
    /// Unstructured-overlay repair rounds (`repair_round`).
    Repair,
}

impl Kernel {
    /// Number of kernels (matrix dimension).
    pub const COUNT: usize = 6;
    /// Every kernel, in index order.
    pub const ALL: [Kernel; Kernel::COUNT] = [
        Kernel::Flood,
        Kernel::Walk,
        Kernel::ExpandingRing,
        Kernel::ChordLookup,
        Kernel::Stabilize,
        Kernel::Repair,
    ];

    /// Stable snake_case name (used as the JSON key in `profile.json`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Flood => "flood",
            Kernel::Walk => "walk",
            Kernel::ExpandingRing => "expanding_ring",
            Kernel::ChordLookup => "chord_lookup",
            Kernel::Stabilize => "stabilize",
            Kernel::Repair => "repair",
        }
    }

    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Ordered counters recorded per kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// Transmissions (the Figure-8 x-axis currency).
    Messages,
    /// Messages lost in flight ([`FaultStats::dropped`]).
    Dropped,
    /// Messages sent to departed peers ([`FaultStats::dead_targets`]).
    DeadTargets,
    /// Re-transmissions after a drop ([`FaultStats::retries`]).
    Retries,
    /// Hops abandoned after the retry budget ([`FaultStats::timeouts`]).
    Timeouts,
    /// Stale-index misses ([`FaultStats::stale_misses`]).
    StaleMisses,
    /// Simulated ticks spent ([`FaultStats::ticks`]).
    Ticks,
    /// Liveness/candidate probes (repair, stabilization).
    Probes,
    /// Edges re-wired by repair (`RepairStats::added`).
    Rewires,
    /// Dead edges pruned by repair (`RepairStats::pruned`).
    Pruned,
    /// Rings attempted by expanding-ring schedules.
    Rings,
    /// Messages admitted into a bounded per-node queue (overload model).
    Enqueued,
    /// Messages dequeued and processed at a node's service rate.
    Served,
    /// Messages evicted by the shedding policy when a queue overflowed.
    Shed,
    /// Total ticks messages spent queued before service (sum; divide by
    /// [`Counter::Served`] for the mean queue delay).
    QueueDelay,
    /// Queries refused by admission control at ingress.
    AdmissionRejected,
    /// Extra replicas placed by the attached replication plan.
    CopiesPlaced,
    /// Successful queries rescued by replication: the same search over
    /// the owner-only placement would have missed.
    CopiesHit,
}

impl Counter {
    /// Number of counters (matrix dimension).
    pub const COUNT: usize = 18;
    /// Every counter, in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Messages,
        Counter::Dropped,
        Counter::DeadTargets,
        Counter::Retries,
        Counter::Timeouts,
        Counter::StaleMisses,
        Counter::Ticks,
        Counter::Probes,
        Counter::Rewires,
        Counter::Pruned,
        Counter::Rings,
        Counter::Enqueued,
        Counter::Served,
        Counter::Shed,
        Counter::QueueDelay,
        Counter::AdmissionRejected,
        Counter::CopiesPlaced,
        Counter::CopiesHit,
    ];

    /// Stable snake_case name (the JSON key in `profile.json`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Messages => "messages",
            Counter::Dropped => "dropped",
            Counter::DeadTargets => "dead_targets",
            Counter::Retries => "retries",
            Counter::Timeouts => "timeouts",
            Counter::StaleMisses => "stale_misses",
            Counter::Ticks => "ticks",
            Counter::Probes => "probes",
            Counter::Rewires => "rewires",
            Counter::Pruned => "pruned",
            Counter::Rings => "rings",
            Counter::Enqueued => "enqueued",
            Counter::Served => "served",
            Counter::Shed => "shed",
            Counter::QueueDelay => "queue_delay",
            Counter::AdmissionRejected => "admission_rejected",
            Counter::CopiesPlaced => "copies_placed",
            Counter::CopiesHit => "copies_hit",
        }
    }

    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Span-scoped events: discrete outcomes tallied per kernel span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// The span resolved its query/lookup.
    Hit,
    /// The span ran to completion without resolving.
    Miss,
    /// The issuing node was down; the span aborted at cost zero.
    DeadSource,
    /// A hybrid span fell back from flooding to the DHT.
    Fallback,
    /// The span hit its virtual-time deadline and returned best-so-far
    /// partial results instead of completing.
    DeadlineExceeded,
    /// The span ran degraded under capacity pressure: the admission
    /// gate refused it, or the shedding policy evicted at least one of
    /// its messages from a full queue.
    Overloaded,
}

impl Event {
    /// Number of events (matrix dimension).
    pub const COUNT: usize = 6;
    /// Every event, in index order.
    pub const ALL: [Event; Event::COUNT] = [
        Event::Hit,
        Event::Miss,
        Event::DeadSource,
        Event::Fallback,
        Event::DeadlineExceeded,
        Event::Overloaded,
    ];

    /// Stable snake_case name (the JSON key in `profile.json`).
    pub fn name(self) -> &'static str {
        match self {
            Event::Hit => "hit",
            Event::Miss => "miss",
            Event::DeadSource => "dead_source",
            Event::Fallback => "fallback",
            Event::DeadlineExceeded => "deadline_exceeded",
            Event::Overloaded => "overloaded",
        }
    }

    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// The write-only recording interface threaded through kernel hot paths.
///
/// # Contract
///
/// * **Write-only.** No method returns data; implementations must never
///   be consulted by kernel control flow or RNG streams. (The qcplint
///   `O1` family additionally forbids recorder calls in `#[cfg]`-varying
///   positions, so a build-feature flip cannot change call counts.)
/// * **Monomorphized.** Kernels take `R: Recorder` type parameters; with
///   [`NoopRecorder`] every call inlines to nothing.
/// * **Chunk-ordered merge.** Parallel drivers call [`Recorder::fork`]
///   once per chunk and [`Recorder::absorb`] the children back in chunk
///   index order. All counters are additive, so totals are independent
///   of pool width.
pub trait Recorder: Sized + Send + Sync {
    /// Opens one kernel span (one flood, one lookup, one repair round…).
    fn rec_span(&mut self, kernel: Kernel);
    /// Adds `n` to a kernel counter.
    fn rec_count(&mut self, kernel: Kernel, counter: Counter, n: u64);
    /// Adds weight `n` to the kernel's per-hop histogram at `hop`.
    fn rec_hop(&mut self, kernel: Kernel, hop: u32, n: u64);
    /// Adds weight `n` to the kernel's virtual-time histogram at `tick`
    /// (time-to-first-hit in the event-driven kernels). Callers record
    /// deadline-bounded tick values, so the histogram stays dense.
    fn rec_time(&mut self, kernel: Kernel, tick: u64, n: u64);
    /// Adds weight `n` to the kernel's queue-length histogram at `len`
    /// (observed per-node queue occupancy at enqueue time in the
    /// overload model). Lengths are bounded by the capacity plan's
    /// queue bound, so the histogram stays dense.
    fn rec_queue(&mut self, kernel: Kernel, len: u32, n: u64);
    /// Tallies one span-scoped event.
    fn rec_event(&mut self, kernel: Kernel, event: Event);
    /// Creates an empty child recorder of the same configuration (for
    /// per-chunk recording in parallel drivers).
    fn fork(&self) -> Self;
    /// Merges a forked child back. Drivers call this in chunk order.
    fn absorb(&mut self, child: Self);

    /// Mirrors a [`FaultStats`] into the kernel's counters, one field
    /// per counter. Provided so every instrumented site maps fault
    /// accounting identically (the `repro profile` reconciliation
    /// depends on this being the only mapping).
    #[inline(always)]
    fn rec_faults(&mut self, kernel: Kernel, stats: &FaultStats) {
        self.rec_count(kernel, Counter::Dropped, stats.dropped);
        self.rec_count(kernel, Counter::DeadTargets, stats.dead_targets);
        self.rec_count(kernel, Counter::Retries, stats.retries);
        self.rec_count(kernel, Counter::Timeouts, stats.timeouts);
        self.rec_count(kernel, Counter::StaleMisses, stats.stale_misses);
        self.rec_count(kernel, Counter::Ticks, stats.ticks);
    }
}

/// The default recorder: a zero-sized type whose methods are all empty.
/// Kernels monomorphized over `NoopRecorder` compile to exactly the
/// uninstrumented code — recording off is free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn rec_span(&mut self, _kernel: Kernel) {}
    #[inline(always)]
    fn rec_count(&mut self, _kernel: Kernel, _counter: Counter, _n: u64) {}
    #[inline(always)]
    fn rec_hop(&mut self, _kernel: Kernel, _hop: u32, _n: u64) {}
    #[inline(always)]
    fn rec_time(&mut self, _kernel: Kernel, _tick: u64, _n: u64) {}
    #[inline(always)]
    fn rec_queue(&mut self, _kernel: Kernel, _len: u32, _n: u64) {}
    #[inline(always)]
    fn rec_event(&mut self, _kernel: Kernel, _event: Event) {}
    #[inline(always)]
    fn fork(&self) -> Self {
        NoopRecorder
    }
    #[inline(always)]
    fn absorb(&mut self, _child: Self) {}
    #[inline(always)]
    fn rec_faults(&mut self, _kernel: Kernel, _stats: &FaultStats) {}
}

/// The metrics recorder: dense `Kernel × Counter` totals, per-kernel
/// per-hop histograms, and span/event tallies. Purely additive state —
/// merging forked children is order-insensitive arithmetic, but drivers
/// still absorb in chunk order by contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsRecorder {
    spans: [u64; Kernel::COUNT],
    counters: [[u64; Counter::COUNT]; Kernel::COUNT],
    events: [[u64; Event::COUNT]; Kernel::COUNT],
    hops: [Vec<u64>; Kernel::COUNT],
    times: [Vec<u64>; Kernel::COUNT],
    qlens: [Vec<u64>; Kernel::COUNT],
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self {
            spans: [0; Kernel::COUNT],
            counters: [[0; Counter::COUNT]; Kernel::COUNT],
            events: [[0; Event::COUNT]; Kernel::COUNT],
            hops: std::array::from_fn(|_| Vec::new()),
            times: std::array::from_fn(|_| Vec::new()),
            qlens: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Number of spans opened for `kernel`.
    pub fn spans(&self, kernel: Kernel) -> u64 {
        self.spans[kernel.idx()]
    }

    /// Total recorded for `(kernel, counter)`.
    pub fn total(&self, kernel: Kernel, counter: Counter) -> u64 {
        self.counters[kernel.idx()][counter.idx()]
    }

    /// Tally for `(kernel, event)`.
    pub fn event_count(&self, kernel: Kernel, event: Event) -> u64 {
        self.events[kernel.idx()][event.idx()]
    }

    /// The kernel's per-hop histogram (`hist[h]` = weight recorded at
    /// hop `h`); empty when nothing was recorded.
    pub fn hop_histogram(&self, kernel: Kernel) -> &[u64] {
        &self.hops[kernel.idx()]
    }

    /// Sum of the kernel's hop histogram weights.
    pub fn hop_weight(&self, kernel: Kernel) -> u64 {
        self.hops[kernel.idx()].iter().sum()
    }

    /// The kernel's virtual-time histogram (`hist[t]` = weight recorded
    /// at tick `t` — time-to-first-hit in the event-driven kernels);
    /// empty when nothing was recorded.
    pub fn time_histogram(&self, kernel: Kernel) -> &[u64] {
        &self.times[kernel.idx()]
    }

    /// Sum of the kernel's time histogram weights.
    pub fn time_weight(&self, kernel: Kernel) -> u64 {
        self.times[kernel.idx()].iter().sum()
    }

    /// The kernel's queue-length histogram (`hist[l]` = weight recorded
    /// at occupancy `l` — per-node queue depth seen at enqueue time in
    /// the overload model); empty when nothing was recorded.
    pub fn queue_histogram(&self, kernel: Kernel) -> &[u64] {
        &self.qlens[kernel.idx()]
    }

    /// Sum of the kernel's queue-length histogram weights.
    pub fn queue_weight(&self, kernel: Kernel) -> u64 {
        self.qlens[kernel.idx()].iter().sum()
    }

    /// The recorded faults of `kernel`, reassembled as a [`FaultStats`]
    /// — the inverse of [`Recorder::rec_faults`], used by the
    /// reconciliation checks.
    pub fn fault_stats(&self, kernel: Kernel) -> FaultStats {
        FaultStats {
            dropped: self.total(kernel, Counter::Dropped),
            dead_targets: self.total(kernel, Counter::DeadTargets),
            retries: self.total(kernel, Counter::Retries),
            timeouts: self.total(kernel, Counter::Timeouts),
            stale_misses: self.total(kernel, Counter::StaleMisses),
            ticks: self.total(kernel, Counter::Ticks),
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self == &Self::new()
    }
}

impl Recorder for MetricsRecorder {
    #[inline]
    fn rec_span(&mut self, kernel: Kernel) {
        self.spans[kernel.idx()] += 1;
    }

    #[inline]
    fn rec_count(&mut self, kernel: Kernel, counter: Counter, n: u64) {
        self.counters[kernel.idx()][counter.idx()] += n;
    }

    #[inline]
    fn rec_hop(&mut self, kernel: Kernel, hop: u32, n: u64) {
        let hist = &mut self.hops[kernel.idx()];
        let need = hop as usize + 1;
        if hist.len() < need {
            hist.resize(need, 0);
        }
        hist[hop as usize] += n;
    }

    #[inline]
    fn rec_time(&mut self, kernel: Kernel, tick: u64, n: u64) {
        let hist = &mut self.times[kernel.idx()];
        let need = tick as usize + 1;
        if hist.len() < need {
            hist.resize(need, 0);
        }
        hist[tick as usize] += n;
    }

    #[inline]
    fn rec_queue(&mut self, kernel: Kernel, len: u32, n: u64) {
        let hist = &mut self.qlens[kernel.idx()];
        let need = len as usize + 1;
        if hist.len() < need {
            hist.resize(need, 0);
        }
        hist[len as usize] += n;
    }

    #[inline]
    fn rec_event(&mut self, kernel: Kernel, event: Event) {
        self.events[kernel.idx()][event.idx()] += 1;
    }

    fn fork(&self) -> Self {
        Self::new()
    }

    fn absorb(&mut self, child: Self) {
        for k in 0..Kernel::COUNT {
            self.spans[k] += child.spans[k];
            for c in 0..Counter::COUNT {
                self.counters[k][c] += child.counters[k][c];
            }
            for e in 0..Event::COUNT {
                self.events[k][e] += child.events[k][e];
            }
            let hist = &mut self.hops[k];
            if hist.len() < child.hops[k].len() {
                hist.resize(child.hops[k].len(), 0);
            }
            for (h, w) in child.hops[k].iter().enumerate() {
                hist[h] += w;
            }
            let times = &mut self.times[k];
            if times.len() < child.times[k].len() {
                times.resize(child.times[k].len(), 0);
            }
            for (t, w) in child.times[k].iter().enumerate() {
                times[t] += w;
            }
            let qlens = &mut self.qlens[k];
            if qlens.len() < child.qlens[k].len() {
                qlens.resize(child.qlens[k].len(), 0);
            }
            for (l, w) in child.qlens[k].iter().enumerate() {
                qlens[l] += w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_index_tables_are_consistent() {
        assert_eq!(Kernel::ALL.len(), Kernel::COUNT);
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        assert_eq!(Event::ALL.len(), Event::COUNT);
        for (i, k) in Kernel::ALL.iter().enumerate() {
            assert_eq!(k.idx(), i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
        }
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.idx(), i);
        }
        // Names are unique (they key the JSON emission).
        let mut names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Kernel::COUNT);
    }

    #[test]
    fn noop_recorder_is_inert_and_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        let mut r = NoopRecorder;
        r.rec_span(Kernel::Flood);
        r.rec_count(Kernel::Flood, Counter::Messages, 10);
        r.rec_hop(Kernel::Flood, 3, 2);
        r.rec_time(Kernel::Flood, 7, 1);
        r.rec_queue(Kernel::Flood, 2, 1);
        r.rec_event(Kernel::Flood, Event::Hit);
        r.rec_faults(Kernel::Flood, &FaultStats::default());
        let child = r.fork();
        r.absorb(child);
    }

    #[test]
    fn metrics_recorder_accumulates() {
        let mut r = MetricsRecorder::new();
        assert!(r.is_empty());
        r.rec_span(Kernel::Walk);
        r.rec_span(Kernel::Walk);
        r.rec_count(Kernel::Walk, Counter::Messages, 7);
        r.rec_count(Kernel::Walk, Counter::Messages, 3);
        r.rec_hop(Kernel::Walk, 2, 1);
        r.rec_hop(Kernel::Walk, 0, 4);
        r.rec_event(Kernel::Walk, Event::Miss);
        assert_eq!(r.spans(Kernel::Walk), 2);
        assert_eq!(r.total(Kernel::Walk, Counter::Messages), 10);
        assert_eq!(r.hop_histogram(Kernel::Walk), &[4, 0, 1]);
        assert_eq!(r.hop_weight(Kernel::Walk), 5);
        assert_eq!(r.event_count(Kernel::Walk, Event::Miss), 1);
        assert_eq!(r.event_count(Kernel::Walk, Event::Hit), 0);
        assert_eq!(r.spans(Kernel::Flood), 0);
        assert!(!r.is_empty());
    }

    #[test]
    fn fork_is_empty_and_absorb_merges() {
        let mut parent = MetricsRecorder::new();
        parent.rec_count(Kernel::Flood, Counter::Messages, 5);
        parent.rec_hop(Kernel::Flood, 1, 1);
        let mut child = parent.fork();
        assert!(child.is_empty(), "fork must start empty");
        child.rec_count(Kernel::Flood, Counter::Messages, 2);
        child.rec_hop(Kernel::Flood, 4, 3);
        child.rec_time(Kernel::Flood, 2, 5);
        child.rec_span(Kernel::Repair);
        parent.absorb(child);
        assert_eq!(parent.total(Kernel::Flood, Counter::Messages), 7);
        assert_eq!(parent.hop_histogram(Kernel::Flood), &[0, 1, 0, 0, 3]);
        assert_eq!(parent.time_histogram(Kernel::Flood), &[0, 0, 5]);
        assert_eq!(parent.spans(Kernel::Repair), 1);
    }

    #[test]
    fn time_histogram_accumulates_and_merges() {
        let mut r = MetricsRecorder::new();
        r.rec_time(Kernel::Walk, 4, 1);
        r.rec_time(Kernel::Walk, 0, 2);
        r.rec_time(Kernel::Walk, 4, 1);
        assert_eq!(r.time_histogram(Kernel::Walk), &[2, 0, 0, 0, 2]);
        assert_eq!(r.time_weight(Kernel::Walk), 4);
        assert_eq!(r.time_histogram(Kernel::Flood), &[] as &[u64]);
        let mut other = MetricsRecorder::new();
        other.rec_time(Kernel::Walk, 6, 3);
        r.absorb(other);
        assert_eq!(r.time_histogram(Kernel::Walk), &[2, 0, 0, 0, 2, 0, 3]);
    }

    #[test]
    fn queue_histogram_accumulates_and_merges() {
        let mut r = MetricsRecorder::new();
        r.rec_queue(Kernel::Flood, 3, 2);
        r.rec_queue(Kernel::Flood, 0, 1);
        r.rec_queue(Kernel::Flood, 3, 1);
        assert_eq!(r.queue_histogram(Kernel::Flood), &[1, 0, 0, 3]);
        assert_eq!(r.queue_weight(Kernel::Flood), 4);
        assert_eq!(r.queue_histogram(Kernel::Walk), &[] as &[u64]);
        let mut other = MetricsRecorder::new();
        other.rec_queue(Kernel::Flood, 5, 7);
        r.absorb(other);
        assert_eq!(r.queue_histogram(Kernel::Flood), &[1, 0, 0, 3, 0, 7]);
        assert!(!r.is_empty());
    }

    #[test]
    fn absorb_totals_are_chunk_order_insensitive() {
        // The contract demands chunk-ordered absorption; the additive
        // state makes the totals order-insensitive, which is what makes
        // 1- vs 4-thread runs agree.
        let chunks: Vec<MetricsRecorder> = (0..5u64)
            .map(|i| {
                let mut c = MetricsRecorder::new();
                c.rec_count(Kernel::ChordLookup, Counter::Retries, i);
                c.rec_hop(Kernel::ChordLookup, i as u32, 1);
                c
            })
            .collect();
        let mut fwd = MetricsRecorder::new();
        for c in chunks.clone() {
            fwd.absorb(c);
        }
        let mut rev = MetricsRecorder::new();
        for c in chunks.into_iter().rev() {
            rev.absorb(c);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.total(Kernel::ChordLookup, Counter::Retries), 10);
    }

    #[test]
    fn rec_faults_round_trips_through_fault_stats() {
        let stats = FaultStats {
            dropped: 3,
            dead_targets: 4,
            retries: 2,
            timeouts: 1,
            stale_misses: 6,
            ticks: 99,
        };
        let mut r = MetricsRecorder::new();
        r.rec_faults(Kernel::ChordLookup, &stats);
        assert_eq!(r.fault_stats(Kernel::ChordLookup), stats);
        // Identity mirrors the FaultStats one.
        assert_eq!(
            r.total(Kernel::ChordLookup, Counter::Dropped)
                + r.total(Kernel::ChordLookup, Counter::DeadTargets),
            stats.wasted()
        );
    }

    #[test]
    fn hop_histogram_grows_to_fit() {
        let mut r = MetricsRecorder::new();
        r.rec_hop(Kernel::Flood, 10, 1);
        assert_eq!(r.hop_histogram(Kernel::Flood).len(), 11);
        r.rec_hop(Kernel::Flood, 2, 1);
        assert_eq!(r.hop_histogram(Kernel::Flood).len(), 11);
    }
}
