//! The analyzer's output: every figure series plus the anchor statistics.

use qcp_analysis::{
    AnnotationAnalysis, CrawlSummary, MismatchSeries, QuerySummary, ReplicationAnalysis,
    StabilitySeries, TermReplicationAnalysis, TransientSeries,
};

/// Figure 4 bundle: one annotation analysis per iTunes field.
#[derive(Debug, Clone)]
pub struct Figure4Findings {
    /// 4(a): clients per song name.
    pub songs: AnnotationAnalysis,
    /// 4(b): clients per genre.
    pub genres: AnnotationAnalysis,
    /// 4(c): clients per album.
    pub albums: AnnotationAnalysis,
    /// 4(d): clients per artist.
    pub artists: AnnotationAnalysis,
    /// Total shared song copies (paper: 533,768).
    pub total_songs: usize,
    /// Number of reachable clients (paper: 239).
    pub num_clients: usize,
}

/// Everything the paper's evaluation reports, computed from one pair of
/// synthetic traces.
#[derive(Debug, Clone)]
pub struct Findings {
    /// Figure 1: clients per object, raw names.
    pub fig1: ReplicationAnalysis,
    /// Figure 2: clients per object, sanitized names.
    pub fig2: ReplicationAnalysis,
    /// Figure 3: clients per name term.
    pub fig3: TermReplicationAnalysis,
    /// Figure 4: iTunes annotation distributions.
    pub fig4: Figure4Findings,
    /// Figure 5: transient-term series, one per evaluation interval.
    pub fig5: Vec<TransientSeries>,
    /// Figure 6: popular-set stability at the headline interval.
    pub fig6: StabilitySeries,
    /// Figure 7: query/file similarity at the headline interval.
    pub fig7: MismatchSeries,
    /// §III in-text claims (virtual table T1).
    pub crawl: CrawlSummary,
    /// §IV in-text claims (virtual table T2).
    pub query: QuerySummary,
}

impl Findings {
    /// Renders the T1/T2 anchor claims as a text table for quick eyeball
    /// comparison against the paper.
    pub fn anchors_table(&self) -> qcp_util::Table {
        use qcp_util::table::percent;
        let mut t = qcp_util::Table::new(["anchor", "paper", "measured"]);
        let c = &self.crawl;
        t.row([
            "objects on one peer (raw names)".to_string(),
            "70.5%".to_string(),
            percent(c.singleton_fraction_raw),
        ]);
        t.row([
            "objects on <= 0.1% of peers (raw)".to_string(),
            "99.5%".to_string(),
            percent(c.below_tenth_percent_raw),
        ]);
        t.row([
            "objects on <= 37 peers (paper's absolute cut)".to_string(),
            "99.5%".to_string(),
            percent(c.at_most_37_peers),
        ]);
        t.row([
            "objects on one peer (sanitized)".to_string(),
            "69.8%".to_string(),
            percent(c.singleton_fraction_sanitized),
        ]);
        t.row([
            "objects on <= 0.1% of peers (sanitized)".to_string(),
            "99.4%".to_string(),
            percent(c.below_tenth_percent_sanitized),
        ]);
        t.row([
            "terms on one peer".to_string(),
            "71.3%".to_string(),
            percent(c.term_singleton_fraction),
        ]);
        t.row([
            "terms on <= 0.1% of peers".to_string(),
            "98.3%".to_string(),
            percent(c.term_below_tenth_percent),
        ]);
        t.row([
            "objects on >= 20 peers (Loo rare rule)".to_string(),
            "< 4%".to_string(),
            percent(c.at_least_20_peers),
        ]);
        let q = &self.query;
        t.row([
            "popular-set stability (after warm-up)".to_string(),
            "> 90%".to_string(),
            percent(q.stability_after_warmup),
        ]);
        t.row([
            "popular query vs popular file terms".to_string(),
            "< 20% (~15%)".to_string(),
            percent(q.mean_popular_mismatch),
        ]);
        t.row([
            "mean transient terms per interval".to_string(),
            "low (< 10)".to_string(),
            format!("{:.2}", q.mean_transients),
        ]);
        t
    }
}
