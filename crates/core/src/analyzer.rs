//! The end-to-end analyzer: traces in, Findings out.

use crate::config::AnalyzerConfig;
use crate::findings::{Figure4Findings, Findings};
use qcp_analysis::{
    mismatch, stability, transient, AnnotationAnalysis, CrawlSummary, IntervalIndex, QuerySummary,
    ReplicationAnalysis, TermReplicationAnalysis,
};
use qcp_terms::TermDict;
use qcp_tracegen::{Crawl, ItunesTrace, QueryTrace, Vocabulary};

/// Runs the paper's full measurement pipeline over synthetic traces.
///
/// The analyzer generates the traces itself (there are no real ones to
/// load — see DESIGN.md §4) and then feeds *only strings, timestamps and
/// peer ids* into the `qcp-analysis` pipeline, exactly as the original
/// study fed its crawler and Phex logs.
#[derive(Debug)]
pub struct QueryCentricAnalyzer {
    config: AnalyzerConfig,
}

impl QueryCentricAnalyzer {
    /// Creates an analyzer.
    pub fn new(config: AnalyzerConfig) -> Self {
        Self { config }
    }

    /// Generates traces and computes every figure and summary.
    pub fn run(&self) -> Findings {
        let vocab = Vocabulary::generate(&self.config.vocab);
        let crawl = Crawl::generate(&vocab, &self.config.crawl);
        let itunes = ItunesTrace::generate(&vocab, &self.config.itunes);
        let queries = QueryTrace::generate(&vocab, &self.config.queries);
        self.analyze(&crawl, &itunes, &queries)
    }

    /// Analyzes externally supplied traces (the path a user with real
    /// crawl/query data would take).
    pub fn analyze(&self, crawl: &Crawl, itunes: &ItunesTrace, queries: &QueryTrace) -> Findings {
        // --- Figures 1-3: crawl-side distributions --------------------
        let records = || crawl.files.iter().map(|f| (f.peer, f.name.as_str()));
        let fig1 = ReplicationAnalysis::from_names(crawl.num_peers, records());
        let fig2 = ReplicationAnalysis::from_sanitized_names(crawl.num_peers, records());
        let fig3 = TermReplicationAnalysis::from_names(records());

        // --- Figure 4: iTunes annotations ------------------------------
        let songs = AnnotationAnalysis::from_records(
            "song",
            itunes
                .shares
                .iter()
                .flat_map(|s| s.songs.iter().map(move |r| (s.client, r.name.as_str()))),
        );
        let genres = AnnotationAnalysis::from_records(
            "genre",
            itunes
                .shares
                .iter()
                .flat_map(|s| s.songs.iter().map(move |r| (s.client, r.genre.as_str()))),
        );
        let albums = AnnotationAnalysis::from_records(
            "album",
            itunes
                .shares
                .iter()
                .flat_map(|s| s.songs.iter().map(move |r| (s.client, r.album.as_str()))),
        );
        let artists = AnnotationAnalysis::from_records(
            "artist",
            itunes
                .shares
                .iter()
                .flat_map(|s| s.songs.iter().map(move |r| (s.client, r.artist.as_str()))),
        );
        let fig4 = Figure4Findings {
            songs,
            genres,
            albums,
            artists,
            total_songs: itunes.total_songs(),
            num_clients: itunes.num_clients(),
        };

        // --- Figures 5-7: query-side temporal analysis ------------------
        // One shared dictionary so query terms and file terms live in the
        // same symbol space (needed for the Figure 7 Jaccard).
        let mut dict = TermDict::new();
        let popular_files =
            mismatch::popular_file_terms(records(), self.config.popularity, &mut dict);

        let query_records = || queries.queries.iter().map(|q| (q.time, q.text.as_str()));

        // Figure 5 sweep over evaluation intervals.
        let fig5: Vec<transient::TransientSeries> = self
            .config
            .fig5_intervals
            .iter()
            .map(|&interval| {
                let idx = IntervalIndex::build(
                    query_records(),
                    queries.duration_secs,
                    interval,
                    &mut dict,
                );
                transient::detect_transients(&idx, &self.config.transient)
            })
            .collect();

        // Headline interval for Figures 6 and 7.
        let headline_idx = IntervalIndex::build(
            query_records(),
            queries.duration_secs,
            self.config.headline_interval,
            &mut dict,
        );
        let fig6 = stability::popular_stability(&headline_idx, self.config.popularity);
        let fig7 =
            mismatch::query_file_mismatch(&headline_idx, &popular_files, self.config.popularity);

        // --- Summaries --------------------------------------------------
        let crawl_summary = CrawlSummary::build(&fig1, &fig2, &fig3);
        let warmup = (fig6.jaccards.len() / 10).max(3);
        let headline_transients = fig5.last();
        let query_summary = QuerySummary {
            total_queries: headline_idx.total_queries(),
            duration_secs: queries.duration_secs,
            interval_secs: self.config.headline_interval,
            stability_after_warmup: fig6.mean_after_warmup(warmup),
            mean_popular_mismatch: fig7.mean_popular_similarity(),
            max_popular_mismatch: fig7.max_popular_similarity(),
            mean_transients: headline_transients.map(|s| s.mean()).unwrap_or(0.0),
            transient_variance: headline_transients.map(|s| s.variance()).unwrap_or(0.0),
        };

        Findings {
            fig1,
            fig2,
            fig3,
            fig4,
            fig5,
            fig6,
            fig7,
            crawl: crawl_summary,
            query: query_summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings() -> Findings {
        QueryCentricAnalyzer::new(AnalyzerConfig::test_scale().with_seed(2024)).run()
    }

    #[test]
    fn pipeline_reproduces_zipf_long_tail() {
        let f = findings();
        // Paper: ~70% singletons; generator calibrated to the same band.
        assert!(
            (0.55..0.90).contains(&f.crawl.singleton_fraction_raw),
            "singleton {}",
            f.crawl.singleton_fraction_raw
        );
        // Paper: >= 99% of objects on <= 37 peers (its absolute 0.1%
        // threshold; scale-independent because the replica law is).
        assert!(
            f.crawl.at_most_37_peers > 0.98,
            "at most 37 peers: {}",
            f.crawl.at_most_37_peers
        );
    }

    #[test]
    fn sanitization_reduces_unique_objects() {
        let f = findings();
        assert!(f.crawl.unique_objects_sanitized <= f.crawl.unique_objects_raw);
        // Noise inflates raw uniques above the 8k ground-truth objects;
        // sanitization recovers part (case/punct) but not misspellings.
        assert!(f.crawl.unique_objects_sanitized > 8_000 / 2);
    }

    #[test]
    fn loo_rare_rule_holds() {
        let f = findings();
        // Paper: fewer than 4% of objects on >= 20 peers.
        assert!(
            f.crawl.at_least_20_peers < 0.05,
            "at least 20 peers: {}",
            f.crawl.at_least_20_peers
        );
    }

    #[test]
    fn popular_query_terms_are_stable() {
        let f = findings();
        assert!(
            f.query.stability_after_warmup > 0.80,
            "stability {}",
            f.query.stability_after_warmup
        );
    }

    #[test]
    fn query_file_mismatch_is_low() {
        let f = findings();
        assert!(
            f.query.mean_popular_mismatch < 0.35,
            "mismatch {}",
            f.query.mean_popular_mismatch
        );
        // And strictly positive: the heads do overlap somewhat.
        assert!(f.query.mean_popular_mismatch > 0.0);
        // Mismatch is far below stability: the sets are stable but wrong.
        assert!(f.query.stability_after_warmup > 2.0 * f.query.mean_popular_mismatch);
    }

    #[test]
    fn transients_present_with_low_mean() {
        let f = findings();
        let total_flagged: u32 = f.fig5.iter().flat_map(|s| s.counts.iter()).sum();
        assert!(total_flagged > 0, "bursts must be detected");
        for s in &f.fig5 {
            assert!(s.mean() < 20.0, "mean transients {}", s.mean());
        }
    }

    #[test]
    fn itunes_fractions_match_calibration() {
        let f = findings();
        assert!((0.04..0.14).contains(&f.fig4.genres.missing_fraction()));
        assert!((0.04..0.13).contains(&f.fig4.albums.missing_fraction()));
        assert!(f.fig4.songs.singleton_fraction() > 0.4);
        assert_eq!(f.fig4.num_clients, 60);
    }

    #[test]
    fn determinism_end_to_end() {
        let a = findings();
        let b = findings();
        assert_eq!(a.crawl.unique_objects_raw, b.crawl.unique_objects_raw);
        assert_eq!(a.query.total_queries, b.query.total_queries);
        assert!((a.query.stability_after_warmup - b.query.stability_after_warmup).abs() < 1e-12);
    }

    #[test]
    fn anchors_table_renders() {
        let f = findings();
        let t = f.anchors_table();
        assert_eq!(t.len(), 11);
        let text = t.to_text();
        assert!(text.contains("70.5%"));
        assert!(text.contains("measured"));
    }
}
