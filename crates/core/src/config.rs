//! Analyzer configuration.

use qcp_analysis::{PopularityRule, TransientConfig};
use qcp_tracegen::{CrawlConfig, ItunesConfig, QueryTraceConfig, VocabularyConfig};
use qcp_util::rng::child_seed;

/// Configuration for the end-to-end analyzer.
///
/// Three preset scales:
///
/// * [`AnalyzerConfig::test_scale`] — seconds, for CI and unit tests;
/// * [`AnalyzerConfig::default_scale`] — tens of seconds, the scale the
///   `repro` binary uses (all distribution *shapes* match the paper);
/// * [`AnalyzerConfig::paper_scale`] — the paper's raw sizes (37,572
///   peers / 8.1M objects / 2.5M queries); minutes of CPU and gigabytes
///   of RAM.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Vocabulary generation.
    pub vocab: VocabularyConfig,
    /// Gnutella crawl generation.
    pub crawl: CrawlConfig,
    /// iTunes trace generation.
    pub itunes: ItunesConfig,
    /// Query trace generation.
    pub queries: QueryTraceConfig,
    /// Evaluation intervals (seconds) for the Figure 5 sweep.
    pub fig5_intervals: Vec<u32>,
    /// Evaluation interval (seconds) for Figures 6/7 (paper: 60 minutes).
    pub headline_interval: u32,
    /// Popularity rule for popular-set extraction.
    pub popularity: PopularityRule,
    /// Transient-detector parameters.
    pub transient: TransientConfig,
}

impl AnalyzerConfig {
    /// Applies `seed` to every sub-generator (deriving independent child
    /// seeds) and returns the updated config.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.vocab.seed = child_seed(seed, 1);
        self.crawl.seed = child_seed(seed, 2);
        self.itunes.seed = child_seed(seed, 3);
        self.queries.seed = child_seed(seed, 4);
        self
    }

    /// Tiny scale: a full pipeline run in well under a second.
    pub fn test_scale() -> Self {
        Self {
            vocab: VocabularyConfig {
                num_terms: 6_000,
                head_size: 100,
                head_overlap: 0.30,
                seed: 0x5eed,
            },
            crawl: CrawlConfig {
                num_peers: 500,
                num_objects: 8_000,
                ..Default::default()
            },
            itunes: ItunesConfig {
                num_clients: 60,
                catalog_songs: 5_000,
                catalog_artists: 800,
                mean_share_size: 150.0,
                ..Default::default()
            },
            queries: QueryTraceConfig {
                duration_secs: 86_400, // one day
                num_queries: 40_000,
                core_size: 100, // matches the test vocabulary head
                ..Default::default()
            },
            fig5_intervals: vec![1_800, 3_600],
            headline_interval: 3_600,
            popularity: PopularityRule::TopK(100),
            transient: TransientConfig::default(),
        }
    }

    /// Default scale: every figure regenerated with stable statistics in
    /// tens of seconds (peers ~1/19, objects ~1/100, queries ~1/10 of the
    /// paper; all claims are about fractions and shapes, which carry over).
    pub fn default_scale() -> Self {
        Self {
            vocab: VocabularyConfig::default(),
            crawl: CrawlConfig::default(),
            itunes: ItunesConfig::default(),
            queries: QueryTraceConfig::default(),
            fig5_intervals: vec![900, 1_800, 3_600, 7_200],
            headline_interval: 3_600,
            popularity: PopularityRule::TopK(200),
            transient: TransientConfig::default(),
        }
    }

    /// The paper's raw trace sizes. Expect minutes of CPU and gigabytes
    /// of memory.
    pub fn paper_scale() -> Self {
        Self {
            vocab: VocabularyConfig {
                num_terms: 1_220_000,
                head_size: 2_000,
                ..Default::default()
            },
            crawl: CrawlConfig::paper_scale(),
            itunes: ItunesConfig::paper_scale(),
            queries: QueryTraceConfig::paper_scale(),
            fig5_intervals: vec![900, 1_800, 3_600, 7_200],
            headline_interval: 3_600,
            popularity: PopularityRule::TopK(2_000),
            transient: TransientConfig::default(),
        }
    }
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_seed_derives_distinct_subseeds() {
        let c = AnalyzerConfig::test_scale().with_seed(42);
        let seeds = [c.vocab.seed, c.crawl.seed, c.itunes.seed, c.queries.seed];
        let set: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(set.len(), 4);
        // Deterministic.
        let c2 = AnalyzerConfig::test_scale().with_seed(42);
        assert_eq!(c.vocab.seed, c2.vocab.seed);
    }

    #[test]
    fn scales_are_ordered() {
        let t = AnalyzerConfig::test_scale();
        let d = AnalyzerConfig::default_scale();
        let p = AnalyzerConfig::paper_scale();
        assert!(t.crawl.num_objects < d.crawl.num_objects);
        assert!(d.crawl.num_objects < p.crawl.num_objects);
        assert_eq!(p.crawl.num_peers, 37_572);
        assert_eq!(p.queries.num_queries, 2_500_000);
    }
}
