//! `qcp-core` — the primary library entry point of the reproduction.
//!
//! The paper's contribution is an end-to-end *measurement argument*:
//! collect traces, analyze annotation and query-term distributions, show
//! the temporal mismatch, and derive the implication for overlay design.
//! [`QueryCentricAnalyzer`] packages that whole argument as one call:
//!
//! ```
//! use qcp_core::{AnalyzerConfig, QueryCentricAnalyzer};
//!
//! let config = AnalyzerConfig::test_scale();
//! let findings = QueryCentricAnalyzer::new(config).run();
//! // The Zipf long tail: most objects live on a single peer.
//! assert!(findings.crawl.singleton_fraction_raw > 0.5);
//! // The paper's headline mismatch: popular query terms and popular file
//! // terms barely overlap.
//! assert!(findings.query.mean_popular_mismatch < 0.35);
//! ```
//!
//! Re-exports: the substrate crates are available as `qcp_core::analysis`,
//! `qcp_core::tracegen`, etc., so downstream users can depend on this one
//! crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qcp_analysis as analysis;
pub use qcp_dht as dht;
pub use qcp_faults as faults;
pub use qcp_obs as obs;
pub use qcp_overlay as overlay;
pub use qcp_search as search;
pub use qcp_sketch as sketch;
pub use qcp_terms as terms;
pub use qcp_tracegen as tracegen;
pub use qcp_util as util;
pub use qcp_vtime as vtime;
pub use qcp_xpar as xpar;
pub use qcp_zipf as zipf;

mod analyzer;
mod config;
mod findings;

pub use analyzer::QueryCentricAnalyzer;
pub use config::AnalyzerConfig;
pub use findings::{Figure4Findings, Findings};
