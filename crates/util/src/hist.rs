//! Histograms, rank-frequency series and complementary CDFs.
//!
//! Every figure in the paper is either a rank plot ("number of clients with
//! object", Figures 1–4) or a time series; this module provides the rank and
//! tail machinery.

use crate::hash::FxHashMap;
use std::hash::Hash;

/// A fixed-bin histogram over `u64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: FxHashMap<u64, u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: FxHashMap::default(),
            total: 0,
        }
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `weight` observations of `value`.
    #[inline]
    pub fn record_n(&mut self, value: u64, weight: u64) {
        *self.counts.entry(value).or_insert(0) += weight;
        self.total += weight;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Fraction of observations with value `<= threshold`.
    pub fn fraction_at_most(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self
            .counts
            .iter()
            .filter(|(v, _)| **v <= threshold)
            .map(|(_, c)| *c)
            .sum();
        c as f64 / self.total as f64
    }

    /// Fraction of observations with value `>= threshold`.
    pub fn fraction_at_least(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self
            .counts
            .iter()
            .filter(|(v, _)| **v >= threshold)
            .map(|(_, c)| *c)
            .sum();
        c as f64 / self.total as f64
    }

    /// Sorted `(value, count)` pairs, ascending by value.
    pub fn sorted(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_unstable();
        v
    }

    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self
            .counts
            .iter()
            .map(|(v, c)| *v as u128 * *c as u128)
            .sum();
        sum as f64 / self.total as f64
    }
}

/// Counts occurrences of each item and returns counts sorted descending —
/// the "rank-frequency" view used for Zipf plots. Ties are broken
/// deterministically by the natural order of counts only (item identity is
/// discarded).
pub fn rank_counts<T: Eq + Hash, I: IntoIterator<Item = T>>(items: I) -> Vec<u64> {
    let mut counts: FxHashMap<T, u64> = FxHashMap::default();
    for item in items {
        *counts.entry(item).or_insert(0) += 1;
    }
    let mut v: Vec<u64> = counts.into_values().collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v
}

/// Complementary CDF of a sample of counts: returns `(x, P(X >= x))` pairs
/// for each distinct observed value `x`, ascending in `x`.
pub fn ccdf(values: &[u64]) -> Vec<(u64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < sorted.len() {
        let x = sorted[i];
        // Observations >= x are those from index i (first occurrence) on.
        out.push((x, (sorted.len() - i) as f64 / n));
        while i < sorted.len() && sorted[i] == x {
            i += 1;
        }
    }
    out
}

/// Downsamples a rank series (descending counts) to at most `max_points`
/// log-spaced ranks — rank plots with millions of points are unreadable and
/// slow to emit, and log spacing preserves the visual shape exactly.
pub fn logspace_ranks(len: usize, max_points: usize) -> Vec<usize> {
    if len == 0 || max_points == 0 {
        return Vec::new();
    }
    if len <= max_points {
        return (0..len).collect();
    }
    let mut out = Vec::with_capacity(max_points);
    let log_max = (len as f64).ln();
    let mut last = usize::MAX;
    for i in 0..max_points {
        let f = i as f64 / (max_points - 1) as f64;
        let rank = ((f * log_max).exp() - 1.0).round() as usize;
        let rank = rank.min(len - 1);
        if rank != last {
            out.push(rank);
            last = rank;
        }
    }
    // qcplint: allow(panic) — `out` always holds rank 0 from the first
    // loop iteration, so `last()` cannot be None.
    if *out.last().unwrap() != len - 1 {
        out.push(len - 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_fractions() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 1, 2, 5, 10] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.distinct(), 4);
        assert_eq!(h.count(1), 3);
        assert!((h.fraction_at_most(2) - 4.0 / 6.0).abs() < 1e-12);
        assert!((h.fraction_at_least(5) - 2.0 / 6.0).abs() < 1e-12);
        assert!((h.mean() - 20.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_weighted_record() {
        let mut h = Histogram::new();
        h.record_n(3, 10);
        h.record_n(7, 5);
        assert_eq!(h.total(), 15);
        assert_eq!(h.count(3), 10);
        assert!((h.fraction_at_most(3) - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.fraction_at_most(100), 0.0);
        assert_eq!(h.fraction_at_least(0), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn rank_counts_sorts_descending() {
        let items = ["a", "b", "a", "c", "a", "b"];
        let ranks = rank_counts(items);
        assert_eq!(ranks, vec![3, 2, 1]);
    }

    #[test]
    fn ccdf_of_simple_sample() {
        let c = ccdf(&[1, 1, 2, 4]);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], (1, 1.0));
        assert!((c[1].1 - 0.5).abs() < 1e-12);
        assert!((c[2].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ccdf_empty() {
        assert!(ccdf(&[]).is_empty());
    }

    #[test]
    fn logspace_ranks_covers_ends() {
        let r = logspace_ranks(1_000_000, 50);
        assert!(r.len() <= 51);
        assert_eq!(r[0], 0);
        assert_eq!(*r.last().unwrap(), 999_999);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn logspace_ranks_small_input_identity() {
        assert_eq!(logspace_ranks(5, 10), vec![0, 1, 2, 3, 4]);
        assert!(logspace_ranks(0, 10).is_empty());
    }
}
