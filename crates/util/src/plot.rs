//! ASCII plots for terminal figure rendering.
//!
//! The `repro` binary prints each reproduced figure both as CSV (for real
//! plotting) and as an ASCII scatter so the shape is visible directly in a
//! terminal. Supports linear and log10 axes — the paper's rank plots are
//! log-log.

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Log10 axis; non-positive values are dropped from the plot.
    Log,
}

/// Configuration for an ASCII plot.
#[derive(Debug, Clone)]
pub struct PlotConfig {
    /// Plot title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// X axis scale.
    pub x_scale: Scale,
    /// Y axis scale.
    pub y_scale: Scale,
    /// Canvas width in characters.
    pub width: usize,
    /// Canvas height in characters.
    pub height: usize,
}

impl Default for PlotConfig {
    fn default() -> Self {
        Self {
            title: String::new(),
            x_label: "x".into(),
            y_label: "y".into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            width: 72,
            height: 20,
        }
    }
}

impl PlotConfig {
    /// Convenience constructor for a log-log plot.
    pub fn loglog(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: Scale::Log,
            y_scale: Scale::Log,
            ..Self::default()
        }
    }

    /// Convenience constructor for a linear plot.
    pub fn linear(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            ..Self::default()
        }
    }
}

/// A named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
    /// Glyph used for this series.
    pub glyph: char,
}

impl Series {
    /// Creates a series with an automatic glyph (callers typically use
    /// [`render`] which assigns distinct glyphs per series index).
    pub fn new<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
            glyph: '*',
        }
    }
}

const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

fn transform(v: f64, scale: Scale) -> Option<f64> {
    match scale {
        Scale::Linear => Some(v),
        Scale::Log => {
            if v > 0.0 {
                Some(v.log10())
            } else {
                None
            }
        }
    }
}

/// Renders series onto an ASCII canvas.
///
/// Returns a multi-line string; empty input yields a stub with the title.
pub fn render(config: &PlotConfig, series: &[Series]) -> String {
    let mut transformed: Vec<(usize, Vec<(f64, f64)>)> = Vec::new();
    for (si, s) in series.iter().enumerate() {
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .filter_map(|&(x, y)| {
                Some((transform(x, config.x_scale)?, transform(y, config.y_scale)?))
            })
            .collect();
        transformed.push((si, pts));
    }
    let all: Vec<(f64, f64)> = transformed
        .iter()
        .flat_map(|(_, p)| p.iter().copied())
        .collect();
    let mut out = String::new();
    if !config.title.is_empty() {
        out.push_str(&format!("== {} ==\n", config.title));
    }
    if all.is_empty() {
        out.push_str("(no plottable points)\n");
        return out;
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    if (max_x - min_x).abs() < f64::EPSILON {
        max_x = min_x + 1.0;
    }
    if (max_y - min_y).abs() < f64::EPSILON {
        max_y = min_y + 1.0;
    }
    let w = config.width.max(8);
    let h = config.height.max(4);
    let mut canvas = vec![vec![' '; w]; h];
    for (si, pts) in &transformed {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts {
            let cx = ((x - min_x) / (max_x - min_x) * (w - 1) as f64).round() as usize;
            let cy = ((y - min_y) / (max_y - min_y) * (h - 1) as f64).round() as usize;
            canvas[h - 1 - cy][cx] = glyph;
        }
    }
    let fmt_axis = |v: f64, scale: Scale| -> String {
        match scale {
            Scale::Linear => format!("{v:.3}"),
            Scale::Log => format!("1e{v:.1}"),
        }
    };
    out.push_str(&format!(
        "y: {} .. {} ({})\n",
        fmt_axis(min_y, config.y_scale),
        fmt_axis(max_y, config.y_scale),
        config.y_label
    ));
    for row in &canvas {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(w));
    out.push('\n');
    out.push_str(&format!(
        "x: {} .. {} ({})\n",
        fmt_axis(min_x, config.x_scale),
        fmt_axis(max_x, config.x_scale),
        config.x_label
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_canvas() {
        let cfg = PlotConfig::linear("test", "x", "y");
        let s = Series::new("data", vec![(0.0, 0.0), (1.0, 1.0), (0.5, 0.25)]);
        let text = render(&cfg, &[s]);
        assert!(text.contains("== test =="));
        assert!(text.contains('*'));
        assert!(text.contains("data"));
    }

    #[test]
    fn log_scale_drops_nonpositive() {
        let cfg = PlotConfig::loglog("ll", "rank", "count");
        let s = Series::new("d", vec![(0.0, 5.0), (-1.0, 2.0)]);
        let text = render(&cfg, &[s]);
        assert!(text.contains("no plottable points"));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let cfg = PlotConfig::linear("multi", "x", "y");
        let a = Series::new("a", vec![(0.0, 0.0)]);
        let b = Series::new("b", vec![(1.0, 1.0)]);
        let text = render(&cfg, &[a, b]);
        assert!(text.contains("* a"));
        assert!(text.contains("+ b"));
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let cfg = PlotConfig::linear("p", "x", "y");
        let s = Series::new("one", vec![(2.0, 3.0)]);
        let text = render(&cfg, &[s]);
        assert!(text.contains('*'));
    }
}
