//! String interning.
//!
//! Term-level analysis touches each term string once at ingest and then
//! operates exclusively on dense `u32` [`Symbol`]s: hash-map keys become
//! integers, per-term tables become flat vectors, and set operations become
//! sorted-slice merges.

use crate::hash::FxHashMap;

/// A dense handle to an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner mapping strings to dense [`Symbol`]s.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner pre-sized for roughly `capacity` strings.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            map: {
                let mut m = FxHashMap::default();
                m.reserve(capacity);
                m
            },
            strings: Vec::with_capacity(capacity),
        }
    }

    /// Interns `s`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// Panics if the symbol did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("madonna");
        let b = i.intern("madonna");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered_by_first_use() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), Symbol(0));
        assert_eq!(i.intern("b"), Symbol(1));
        assert_eq!(i.intern("a"), Symbol(0));
        assert_eq!(i.intern("c"), Symbol(2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("don't know much");
        assert_eq!(i.resolve(s), "don't know much");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        assert_eq!(i.len(), 0);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("one");
        i.intern("two");
        let pairs: Vec<_> = i.iter().map(|(s, t)| (s.0, t.to_string())).collect();
        assert_eq!(pairs, vec![(0, "one".to_string()), (1, "two".to_string())]);
    }

    #[test]
    fn empty_and_unicode_strings() {
        let mut i = Interner::new();
        let e = i.intern("");
        let u = i.intern("ñandú 東京");
        assert_ne!(e, u);
        assert_eq!(i.resolve(u), "ñandú 東京");
    }
}
