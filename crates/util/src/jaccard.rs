//! Jaccard set similarity.
//!
//! The paper's Section IV uses the Jaccard index
//! `J(A, B) = |A ∩ B| / |A ∪ B|` to quantify (a) stability of the popular
//! query-term set over time (Figure 6) and (b) the mismatch between popular
//! query terms and popular file-annotation terms (Figure 7).

use crate::hash::FxHashSet;
use std::hash::Hash;

/// Jaccard index of two hash sets. Returns 1.0 when both sets are empty
/// (identical-by-vacuity, matching the convention used in the paper's
/// stability plots where an empty interval compares equal to another empty
/// interval).
pub fn jaccard_sets<T: Eq + Hash>(a: &FxHashSet<T>, b: &FxHashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let inter = small.iter().filter(|x| large.contains(*x)).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard index of two *sorted, deduplicated* slices.
///
/// Linear-time merge; used on interned symbol lists where sorting once and
/// comparing many times is cheaper than building hash sets per interval.
pub fn jaccard_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "input not sorted/dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "input not sorted/dedup");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Intersection size of two sorted, deduplicated slices.
pub fn intersection_size<T: Ord>(a: &[T], b: &[T]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> FxHashSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn identical_sets_have_similarity_one() {
        let a = set(&[1, 2, 3]);
        assert_eq!(jaccard_sets(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_zero() {
        let a = set(&[1, 2]);
        let b = set(&[3, 4]);
        assert_eq!(jaccard_sets(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let a = set(&[1, 2, 3]);
        let b = set(&[2, 3, 4]);
        assert!((jaccard_sets(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_are_identical() {
        let a: FxHashSet<u32> = FxHashSet::default();
        let b: FxHashSet<u32> = FxHashSet::default();
        assert_eq!(jaccard_sets(&a, &b), 1.0);
        let c = set(&[1]);
        assert_eq!(jaccard_sets(&a, &c), 0.0);
    }

    #[test]
    fn sorted_matches_hash_version() {
        let a = [1u32, 5, 9, 11];
        let b = [2u32, 5, 11, 20, 30];
        let ja = jaccard_sorted(&a, &b);
        let jb = jaccard_sets(&set(&a), &set(&b));
        assert!((ja - jb).abs() < 1e-12);
        assert!((ja - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_size_counts_common_elements() {
        assert_eq!(intersection_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(intersection_size::<u32>(&[], &[1, 2]), 0);
    }
}
