//! Fx-style hashing.
//!
//! The measurement pipeline hashes millions of small keys (interned term
//! symbols, object ids, node ids). The standard library's SipHash defends
//! against HashDoS, which is irrelevant for an offline simulator, and is
//! several times slower for short keys. This module implements the
//! multiply-rotate "Fx" hash used by rustc, exposed through the usual
//! `BuildHasher` plumbing so `FxHashMap<K, V>` is a drop-in replacement for
//! `HashMap<K, V>`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
///
/// Each word of input is combined with `rotate_left(5) ^ word` followed by a
/// multiplication with a fixed odd constant (the golden-ratio multiplier).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // qcplint: allow(panic) — chunks_exact(8) yields exactly
            // 8-byte slices, so the array conversion cannot fail.
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a single `u64` to a well-mixed `u64` (SplitMix64 finalizer).
///
/// Useful for deriving hash-based positions (e.g. DHT ids) from sequential
/// integers without constructing a `Hasher`.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes arbitrary bytes with [`FxHasher`] in one call.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_hash_differently() {
        let a = hash_bytes(b"madonna");
        let b = hash_bytes(b"madonnb");
        let c = hash_bytes(b"madonn");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn trailing_zero_bytes_are_distinguished() {
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_bytes(b"gnutella"), hash_bytes(b"gnutella"));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("artist", 1);
        m.insert("album", 2);
        assert_eq!(m.get("artist"), Some(&1));
        assert_eq!(m.get("album"), Some(&2));
        assert_eq!(m.get("genre"), None);
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // mix64 is a permutation of u64; sampled outputs must be distinct.
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn mix64_changes_roughly_half_the_bits() {
        let mut total = 0u32;
        let n = 1000u64;
        for i in 0..n {
            total += (mix64(i) ^ mix64(i + 1)).count_ones();
        }
        let avg = total as f64 / n as f64;
        assert!((24.0..40.0).contains(&avg), "avalanche avg {avg}");
    }
}
