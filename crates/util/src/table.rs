//! Tabular report emission: CSV files and aligned text tables.
//!
//! The `repro` binary regenerates every figure/table of the paper as a CSV
//! series plus a human-readable rendering; this module is the shared
//! formatting layer.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-oriented table: a header row plus string cells.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Appends a row of display-formatted values.
    pub fn row_fmt<D: std::fmt::Display, I: IntoIterator<Item = D>>(
        &mut self,
        cells: I,
    ) -> &mut Self {
        self.row(cells.into_iter().map(|c| c.to_string()))
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180 quoting for cells containing
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        write_csv_row(&mut out, &self.header);
        for row in &self.rows {
            write_csv_row(&mut out, row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Renders an aligned, pipe-separated text table.
    pub fn to_text(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                let _ = write!(out, "| {}{} ", cell, " ".repeat(pad));
            }
            out.push_str("|\n");
        };
        fmt_row(&mut out, &self.header);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{}", "-".repeat(w + 2));
            if i + 1 == ncols {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

fn write_csv_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

/// Formats a float with `digits` significant-looking decimal places,
/// trimming trailing zeros ("1.25", "0.5", "3").
pub fn fnum(x: f64, digits: usize) -> String {
    let s = format!("{x:.digits$}");
    if s.contains('.') {
        let t = s.trim_end_matches('0').trim_end_matches('.');
        t.to_string()
    } else {
        s
    }
}

/// Formats a fraction as a percentage string ("42.3%").
pub fn percent(frac: f64) -> String {
    format!("{}%", fnum(frac * 100.0, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "quote\"inside"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"quote\"\"inside\""));
        assert!(csv.starts_with("name,value\n"));
    }

    #[test]
    fn text_table_aligns_columns() {
        let mut t = Table::new(["a", "longheader"]);
        t.row(["xxxx", "1"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn fnum_trims_zeros() {
        assert_eq!(fnum(1.2500, 4), "1.25");
        assert_eq!(fnum(3.0, 2), "3");
        assert_eq!(fnum(0.5004, 2), "0.5");
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.705), "70.5%");
        assert_eq!(percent(1.0), "100%");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("qcp_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
