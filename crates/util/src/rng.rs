//! Deterministic random number generation.
//!
//! Every experiment in the reproduction is driven by a single `u64` seed.
//! [`SplitMix64`] is used both as a cheap generator and as the canonical way
//! to expand one seed into many independent child seeds (`child_seed`), so a
//! parallel sweep over trials can hand each trial its own stream without any
//! cross-trial correlation. [`Pcg64`] (PCG-XSH-RR variant on 128-bit state)
//! is the workhorse generator: fast, small, and statistically solid for
//! simulation purposes.
//!
//! Both implement [`rand::RngCore`] so they compose with `rand`'s
//! distribution and shuffling machinery.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64: a tiny splittable generator.
///
/// Primarily used for seed expansion; also a perfectly serviceable generator
/// for non-critical randomness.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

#[allow(clippy::should_implement_trait)] // `next` mirrors RNG convention; Iterator is not meaningful here
impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next value in the stream.
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives the `index`-th child seed of `seed`.
///
/// Children of distinct `(seed, index)` pairs are independent for all
/// practical purposes (full-period mixing of both inputs).
#[inline]
pub fn child_seed(seed: u64, index: u64) -> u64 {
    let mut sm = SplitMix64::new(seed ^ index.wrapping_mul(0xa076_1d64_78bd_642f));
    sm.next()
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// PCG-64 (XSL-RR 128/64): the main simulation generator.
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

#[allow(clippy::should_implement_trait)] // `next` mirrors RNG convention; Iterator is not meaningful here
impl Pcg64 {
    /// Creates a generator from a 64-bit seed with a fixed stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Creates a generator with an explicit stream selector; distinct
    /// streams yield independent sequences even for equal seeds.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        // Expand the seed to 128 bits of state via SplitMix64.
        let mut sm = SplitMix64::new(seed);
        let state = ((sm.next() as u128) << 64) | sm.next() as u128;
        let mut sm2 = SplitMix64::new(stream);
        let inc = (((sm2.next() as u128) << 64) | sm2.next() as u128) | 1;
        let mut pcg = Self { state: 0, inc };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(state);
        pcg.step();
        pcg
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// Next 64-bit output (XSL-RR output function).
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.step();
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, len)` as `usize`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator.
    pub fn fork(&mut self, index: u64) -> Pcg64 {
        Pcg64::with_stream(self.next(), child_seed(self.next(), index))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k must be <= n).
    ///
    /// Uses Floyd's algorithm: O(k) expected work regardless of `n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        let mut chosen = crate::hash::FxHashSet::default();
        chosen.reserve(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if chosen.insert(t) {
                out.push(t);
            } else {
                chosen.insert(j);
                out.push(j);
            }
        }
        out
    }
}

impl RngCore for Pcg64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Pcg64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn child_seeds_differ() {
        let s = 1234;
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(child_seed(s, i)));
        }
    }

    #[test]
    fn pcg_streams_are_independent() {
        let mut a = Pcg64::with_stream(7, 1);
        let mut b = Pcg64::with_stream(7, 2);
        let equal = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg64::new(9);
        for bound in [1u64, 2, 3, 7, 100, 12345] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Pcg64::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Pcg64::new(5);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn sample_distinct_yields_unique_in_range() {
        let mut rng = Pcg64::new(3);
        for (n, k) in [(10, 10), (100, 5), (1000, 37), (5, 0)] {
            let s = rng.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k);
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg64::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_rejects_oversized_k() {
        let mut rng = Pcg64::new(3);
        let _ = rng.sample_distinct(3, 4);
    }
}
