//! Descriptive statistics and least-squares fitting.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample variance with Bessel's correction (0 when `n < 2`).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over a sample in one pass
    /// (Welford's online algorithm, numerically stable).
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                variance: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &x) in values.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i as f64 + 1.0);
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        let n = values.len();
        let variance = if n > 1 { m2 / (n as f64 - 1.0) } else { 0.0 };
        Summary {
            n,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min,
            max,
        }
    }
}

/// Incremental mean/variance accumulator (Welford).
///
/// Used by the transient-popularity detector to maintain per-term historical
/// baselines without storing every observation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current sample standard deviation (0 when `n < 2`).
    #[inline]
    pub fn std_dev(&self) -> f64 {
        if self.n > 1 {
            (self.m2 / (self.n as f64 - 1.0)).sqrt()
        } else {
            0.0
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a sample using linear
/// interpolation between order statistics. The input does not need to be
/// sorted; a sorted copy is made internally.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    assert!(!values.is_empty(), "quantile of empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// [`quantile`] over an already-sorted sample (ascending).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Result of an ordinary least-squares line fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

/// Ordinary least-squares fit of paired observations.
///
/// Panics if fewer than two points are supplied or if all `x` are equal.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LineFit {
    assert_eq!(xs.len(), ys.len(), "mismatched fit inputs");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "degenerate fit: all x equal");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LineFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Log-log least-squares fit: fits `log10(y) = slope * log10(x) + c`.
///
/// Pairs where either coordinate is non-positive are skipped (they have no
/// logarithm); at least two valid pairs must remain.
pub fn loglog_fit(xs: &[f64], ys: &[f64]) -> LineFit {
    assert_eq!(xs.len(), ys.len());
    let mut lx = Vec::with_capacity(xs.len());
    let mut ly = Vec::with_capacity(ys.len());
    for (&x, &y) in xs.iter().zip(ys) {
        if x > 0.0 && y > 0.0 {
            lx.push(x.log10());
            ly.push(y.log10());
        }
    }
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn accumulator_matches_batch_summary() {
        let data = [1.0, 2.0, 3.5, -1.0, 10.0, 0.25];
        let mut acc = Accumulator::new();
        for &x in &data {
            acc.push(x);
        }
        let s = Summary::of(&data);
        assert_eq!(acc.count() as usize, s.n);
        assert!((acc.mean() - s.mean).abs() < 1e-12);
        assert!((acc.std_dev() - s.std_dev).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert!((quantile(&data, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 3.0).abs() < 1e-10);
        assert!((fit.intercept + 7.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loglog_fit_recovers_power_law() {
        let xs: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 * x.powf(-1.5)).collect();
        let fit = loglog_fit(&xs, &ys);
        assert!((fit.slope + 1.5).abs() < 1e-9, "slope {}", fit.slope);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_fit_skips_nonpositive_points() {
        let xs = [0.0, 1.0, 10.0, 100.0];
        let ys = [5.0, 1.0, 0.1, 0.01];
        let fit = loglog_fit(&xs, &ys);
        assert!((fit.slope + 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn linear_fit_rejects_constant_x() {
        let _ = linear_fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
    }
}
