//! Shared substrate for the `qcp2p` workspace.
//!
//! This crate provides the low-level building blocks that every other crate
//! in the reproduction leans on:
//!
//! * [`hash`] — an Fx-style multiply-xor hasher plus `FxHashMap`/`FxHashSet`
//!   aliases; keys in the measurement pipeline are small integers and short
//!   interned strings, for which SipHash is needlessly slow (see the Rust
//!   Performance Book, "Hashing").
//! * [`rng`] — deterministic `SplitMix64` and `Pcg64` generators implementing
//!   [`rand::RngCore`], so every experiment is reproducible from a single
//!   `u64` seed and can derive independent child streams.
//! * [`stats`] — descriptive statistics, percentiles and ordinary
//!   least-squares regression (used for log-log Zipf fits).
//! * [`hist`] — histograms, rank-frequency series and CCDFs, the raw
//!   material for every figure in the paper.
//! * [`jaccard`] — the set-similarity index used throughout Section IV of
//!   the paper.
//! * [`intern`] — a string interner so term-level analysis works on dense
//!   `u32` symbols instead of heap strings.
//! * [`table`] — CSV and aligned-text emission for experiment reports.
//! * [`plot`] — ASCII scatter/line plots with optional log axes, used by the
//!   `repro` binary to render figures in the terminal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod hist;
pub mod intern;
pub mod jaccard;
pub mod plot;
pub mod rng;
pub mod stats;
pub mod table;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hist::{ccdf, rank_counts, Histogram};
pub use intern::{Interner, Symbol};
pub use jaccard::{jaccard_sets, jaccard_sorted};
pub use rng::{Pcg64, SplitMix64};
pub use stats::{linear_fit, Summary};
pub use table::Table;
