//! Property tests for the statistics substrate.

use proptest::prelude::*;
use qcp_util::hist::{ccdf, logspace_ranks, Histogram};
use qcp_util::stats::{quantile, Accumulator, Summary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn summary_orders_min_mean_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.variance >= 0.0);
        prop_assert!((s.std_dev * s.std_dev - s.variance).abs() < 1e-6 * (1.0 + s.variance));
    }

    #[test]
    fn accumulator_matches_summary(values in proptest::collection::vec(-1e4f64..1e4, 1..100)) {
        let mut acc = Accumulator::new();
        for &v in &values {
            acc.push(v);
        }
        let s = Summary::of(&values);
        prop_assert!((acc.mean() - s.mean).abs() < 1e-6);
        prop_assert!((acc.std_dev() - s.std_dev).abs() < 1e-6);
    }

    #[test]
    fn quantile_is_monotone_and_bounded(values in proptest::collection::vec(-1e5f64..1e5, 1..100),
                                        q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo);
        let b = quantile(&values, hi);
        prop_assert!(a <= b + 1e-9);
        let s = Summary::of(&values);
        prop_assert!(a >= s.min - 1e-9 && b <= s.max + 1e-9);
    }

    #[test]
    fn histogram_totals_are_consistent(values in proptest::collection::vec(0u64..50, 0..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        let from_sorted: u64 = h.sorted().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(from_sorted, values.len() as u64);
        // fraction_at_most(max) == 1 whenever nonempty.
        if !values.is_empty() {
            prop_assert!((h.fraction_at_most(49) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ccdf_is_monotone_decreasing(values in proptest::collection::vec(1u64..1000, 1..200)) {
        let c = ccdf(&values);
        prop_assert!((c[0].1 - 1.0).abs() < 1e-12, "P(X >= min) must be 1");
        for w in c.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn logspace_ranks_valid_for_any_size(len in 0usize..100_000, points in 1usize..200) {
        let r = logspace_ranks(len, points);
        if len == 0 {
            prop_assert!(r.is_empty());
        } else {
            prop_assert_eq!(r[0], 0);
            prop_assert_eq!(*r.last().unwrap(), len - 1);
            prop_assert!(r.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(r.iter().all(|&i| i < len));
        }
    }
}
