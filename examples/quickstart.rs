//! Quickstart: run the paper's full measurement pipeline on synthetic
//! traces and print the anchor claims next to the paper's numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qcp2p::{AnalyzerConfig, QueryCentricAnalyzer};

fn main() {
    // Pick a scale: `test_scale` finishes in well under a second;
    // `default_scale` takes tens of seconds and gives tighter statistics.
    let config = AnalyzerConfig::test_scale().with_seed(2024);
    println!(
        "generating traces: {} peers / {} objects (Gnutella), {} clients (iTunes), {} queries…",
        config.crawl.num_peers,
        config.crawl.num_objects,
        config.itunes.num_clients,
        config.queries.num_queries
    );

    let findings = QueryCentricAnalyzer::new(config).run();

    println!("\n=== paper anchors vs measured ===");
    println!("{}", findings.anchors_table().to_text());

    println!("highlights:");
    println!(
        "  * {:.1}% of unique objects exist on exactly one peer — flooding cannot find them.",
        findings.crawl.singleton_fraction_raw * 100.0
    );
    println!(
        "  * the popular query-term set is {:.1}% stable hour-to-hour…",
        findings.query.stability_after_warmup * 100.0
    );
    println!(
        "  * …but overlaps the popular file-annotation terms by only {:.1}% —",
        findings.query.mean_popular_mismatch * 100.0
    );
    println!("    the mismatch that motivates query-centric overlays.");
}
