//! Structured-overlay tour: Chord vs Pastry routing, fault-tolerant
//! lookups under failures, and the distributed keyword index that backs
//! the hybrid fallback path.
//!
//! ```text
//! cargo run --release --example structured_overlays
//! ```

use qcp2p::dht::{ChordNetwork, DhtIndex, PastryNetwork};
use qcp2p::util::hash::mix64;
use qcp2p::util::rng::Pcg64;

fn main() {
    // --- Routing scaling: Chord (base-2) vs Pastry (base-16) -----------
    println!("mean lookup hops (500 random lookups each):\n");
    println!("{:>8} {:>12} {:>12}", "nodes", "chord", "pastry");
    for n in [1_000usize, 4_000, 16_000] {
        let chord = ChordNetwork::new(n, 1);
        let pastry = PastryNetwork::new(n, 1);
        let mut rng = Pcg64::new(2);
        let samples = 500;
        let (mut c_total, mut p_total) = (0u64, 0u64);
        for k in 0..samples {
            let key = mix64(k);
            let from = rng.index(n) as u32;
            c_total += chord.lookup(from, key).hops as u64;
            p_total += pastry.route(from, key).hops as u64;
        }
        println!(
            "{:>8} {:>12.2} {:>12.2}",
            n,
            c_total as f64 / samples as f64,
            p_total as f64 / samples as f64
        );
    }

    // --- Fault tolerance ------------------------------------------------
    let n = 2_000;
    let chord = ChordNetwork::new(n, 3);
    let mut rng = Pcg64::new(4);
    println!("\nchord lookups with fail-stop node losses (TTL-free routing):");
    for dead_frac in [0.0f64, 0.2, 0.5] {
        let mut alive = vec![true; n];
        for idx in rng.sample_distinct(n, (n as f64 * dead_frac) as usize) {
            alive[idx] = false;
        }
        let sources: Vec<u32> = (0..n as u32)
            .filter(|&v| alive[v as usize])
            .take(32)
            .collect();
        let mut total = 0u64;
        let mut count = 0u64;
        for k in 0..200u64 {
            let key = mix64(k ^ 0xfa11);
            for &from in &sources {
                total += chord.lookup_with_failures(from, key, &alive).hops as u64;
                count += 1;
            }
        }
        println!(
            "  {:>3.0}% dead: every lookup still resolves, mean {:.2} hops",
            dead_frac * 100.0,
            total as f64 / count as f64
        );
    }

    // --- Keyword index ----------------------------------------------------
    println!("\ndistributed keyword index (exact AND semantics over the ring):");
    let net = ChordNetwork::new(512, 5);
    let mut index = DhtIndex::new(&net);
    let catalogue = [
        (1u32, vec!["aaron", "neville", "know", "much"]),
        (2, vec!["madonna", "like", "prayer"]),
        (3, vec!["madonna", "hits", "collection"]),
        (4, vec!["nirvana", "teen", "spirit"]),
    ];
    for (obj, terms) in &catalogue {
        for t in terms {
            index.publish(&net, obj % 512, t, *obj);
        }
    }
    for query in [
        vec!["madonna"],
        vec!["madonna", "prayer"],
        vec!["teen", "spirit"],
        vec!["madonna", "nirvana"],
    ] {
        let out = index.query(&net, 7, &query);
        println!(
            "  query {:?} -> objects {:?} ({} routing hops)",
            query, out.results, out.hops
        );
    }
    println!(
        "\npublication cost so far: {} hops across {} posting lists — the 'maintenance' column of the hybrid-vs-DHT comparison.",
        index.publish_hops(),
        index.stored_lists()
    );
}
