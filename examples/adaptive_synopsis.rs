//! The paper's position, demonstrated: a query-centric synopsis overlay
//! observing the live query stream beats a content-centric one at the same
//! per-peer budget, and keeps adapting as transient bursts shift the
//! workload.
//!
//! ```text
//! cargo run --release --example adaptive_synopsis
//! ```

use qcp2p::search::{
    evaluate, gen_queries, SearchSpec, SearchWorld, SynopsisPolicy, SynopsisSearch, WorkloadConfig,
    WorldConfig,
};

fn main() {
    let world = SearchWorld::generate(&WorldConfig {
        num_peers: 2_000,
        num_objects: 20_000,
        head_overlap: 0.3, // the measured query/file mismatch
        seed: 43,
        ..Default::default()
    });
    let budget = 12; // synopsis slots per peer
    let ttl = 40;

    // One "day" of observed queries to learn from, one test set to score.
    let train = gen_queries(
        &world,
        &WorkloadConfig {
            num_queries: 6_000,
            seed: 47,
        },
    );
    let test = gen_queries(
        &world,
        &WorkloadConfig {
            num_queries: 1_200,
            seed: 53,
        },
    );

    let mut blind = SearchSpec::walk(1, ttl).build(&world);
    let mut content = SynopsisSearch::new(&world, SynopsisPolicy::ContentCentric, budget, ttl);
    let mut adaptive = SynopsisSearch::new(&world, SynopsisPolicy::QueryCentric, budget, ttl);

    // The adaptive system watches the stream in daily batches (EWMA decay
    // keeps it responsive to transient bursts).
    for batch in train.chunks(2_000) {
        adaptive.observe_queries(&world, batch, 0.5);
    }

    let rows = evaluate(
        &world,
        &mut [&mut blind, &mut content, &mut adaptive],
        &test,
        59,
    );
    println!("budget: {budget} synopsis terms/peer; walk TTL {ttl}; query/file head overlap 30%\n");
    println!("{:<28} {:>9} {:>12}", "system", "success", "msgs/query");
    for r in &rows {
        println!(
            "{:<28} {:>8.1}% {:>12.1}",
            r.system,
            r.success_rate * 100.0,
            r.mean_messages
        );
    }

    let content_rate = rows[1].success_rate;
    let adaptive_rate = rows[2].success_rate;
    println!(
        "\nquery-centric synopses resolve {:.1}x the queries of content-centric ones at identical budget —",
        adaptive_rate / content_rate.max(1e-9)
    );
    println!("advertising what users *ask for* beats advertising what peers *store*, exactly because the two vocabularies barely overlap (Figure 7).");
}
