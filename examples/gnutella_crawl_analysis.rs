//! Crawl-side analysis (the paper's §III): generate a Gnutella file crawl,
//! measure object/term replication, fit the power-law tails, and show the
//! effect of name sanitization — Figures 1, 2 and 3 from the library API.
//!
//! ```text
//! cargo run --release --example gnutella_crawl_analysis
//! ```

use qcp2p::analysis::{ReplicationAnalysis, TermReplicationAnalysis};
use qcp2p::tracegen::{Crawl, CrawlConfig, Vocabulary, VocabularyConfig};
use qcp2p::util::plot::{render, PlotConfig, Series};

fn main() {
    let vocab = Vocabulary::generate(&VocabularyConfig {
        num_terms: 20_000,
        head_size: 200,
        head_overlap: 0.3,
        seed: 11,
    });
    let crawl = Crawl::generate(
        &vocab,
        &CrawlConfig {
            num_peers: 2_000,
            num_objects: 60_000,
            seed: 13,
            ..Default::default()
        },
    );
    println!(
        "crawled {} peers: {} file copies, {} ground-truth objects",
        crawl.num_peers,
        crawl.total_copies(),
        crawl.num_objects()
    );

    let records = || crawl.files.iter().map(|f| (f.peer, f.name.as_str()));
    let raw = ReplicationAnalysis::from_names(crawl.num_peers, records());
    let sanitized = ReplicationAnalysis::from_sanitized_names(crawl.num_peers, records());
    let terms = TermReplicationAnalysis::from_names(records());

    // Figure 1/2 comparison.
    println!(
        "\nraw names      : {} unique, {:.1}% singletons, {:.1}% on <= 37 peers, tail exponent {:.2}",
        raw.unique_objects,
        raw.singleton_fraction() * 100.0,
        raw.fraction_at_most(37) * 100.0,
        raw.tail.exponent
    );
    println!(
        "sanitized names: {} unique, {:.1}% singletons, {:.1}% on <= 37 peers",
        sanitized.unique_objects,
        sanitized.singleton_fraction() * 100.0,
        sanitized.fraction_at_most(37) * 100.0,
    );
    println!(
        "sanitization merged {} name variants (case/punctuation); misspellings survive it.",
        raw.unique_objects - sanitized.unique_objects
    );

    // Figure 3.
    println!(
        "\nname terms: {} unique, {:.1}% on a single peer (paper: 71.3%)",
        terms.unique_terms,
        terms.singleton_fraction() * 100.0
    );

    let to_pts = |series: &[(u64, u64)]| -> Vec<(f64, f64)> {
        series.iter().map(|&(x, y)| (x as f64, y as f64)).collect()
    };
    println!(
        "\n{}",
        render(
            &PlotConfig::loglog("clients with object (Figure 1 shape)", "rank", "clients"),
            &[
                Series::new("raw", to_pts(&raw.rank_series(200))),
                Series::new("sanitized", to_pts(&sanitized.rank_series(200))),
            ],
        )
    );

    // The implication the paper draws from these tails:
    println!(
        "only {:.2}% of objects are on >= 20 peers — under Loo et al.'s rule, {:.1}% of content is 'rare' and unstructured search cannot serve it.",
        raw.fraction_at_least(20) * 100.0,
        (1.0 - raw.fraction_at_least(20)) * 100.0
    );
}
