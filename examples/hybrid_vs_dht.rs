//! The §V implication as a head-to-head: Gnutella flooding, the Loo et al.
//! hybrid (flood then DHT), and a pure Chord-based keyword DHT, all over
//! the same world with the measured Zipf replica distribution.
//!
//! ```text
//! cargo run --release --example hybrid_vs_dht
//! ```

use qcp2p::search::{evaluate, gen_queries, SearchSpec, SearchWorld, WorkloadConfig, WorldConfig};

fn main() {
    let world = SearchWorld::generate(&WorldConfig {
        num_peers: 2_000,
        num_objects: 20_000,
        seed: 29,
        ..Default::default()
    });
    println!(
        "world: {} peers, {} objects, mean {:.1} replicas/object (zipf placement)",
        world.num_peers(),
        world.num_objects(),
        world.placement.mean_replicas()
    );

    let queries = gen_queries(
        &world,
        &WorkloadConfig {
            num_queries: 1_500,
            seed: 31,
        },
    );

    let mut flood = SearchSpec::flood(3).build(&world);
    let mut hybrid = SearchSpec::hybrid(3, 20, 37).build(&world).into_hybrid();
    let mut dht = SearchSpec::dht_only(37).build(&world);
    let rows = evaluate(
        &world,
        &mut [&mut flood, &mut hybrid, &mut dht],
        &queries,
        41,
    );

    println!(
        "\n{:<24} {:>9} {:>14} {:>12}",
        "system", "success", "msgs/query", "maintenance"
    );
    for r in &rows {
        println!(
            "{:<24} {:>8.1}% {:>14.1} {:>12}",
            r.system,
            r.success_rate * 100.0,
            r.mean_messages,
            r.maintenance_messages
        );
    }

    println!(
        "\n{:.0}% of hybrid queries fell back to the DHT: the flood phase almost never finds enough replicas (Loo's 'rare' rule: < 20 results).",
        hybrid.fallback_rate() * 100.0
    );
    println!(
        "hybrid spends {:.0}x the messages of pure DHT for the same success — the paper's argument that hybrid designs built on content-centric assumptions are worse than going structured directly.",
        rows[1].mean_messages / rows[2].mean_messages
    );
}
