//! Query-side temporal analysis (the paper's §IV): bucket a week-long
//! query stream into evaluation intervals, track popular-set stability,
//! detect transient bursts, and measure the query/file term mismatch —
//! Figures 5, 6 and 7 driven directly through the library API.
//!
//! ```text
//! cargo run --release --example query_mismatch_timeline
//! ```

use qcp2p::analysis::{
    mismatch, stability, transient, IntervalIndex, PopularityRule, TransientConfig,
};
use qcp2p::terms::TermDict;
use qcp2p::tracegen::{
    Crawl, CrawlConfig, QueryTrace, QueryTraceConfig, Vocabulary, VocabularyConfig,
};

fn main() {
    let vocab = Vocabulary::generate(&VocabularyConfig {
        num_terms: 20_000,
        head_size: 200,
        head_overlap: 0.3,
        seed: 17,
    });
    let crawl = Crawl::generate(
        &vocab,
        &CrawlConfig {
            num_peers: 1_000,
            num_objects: 30_000,
            seed: 19,
            ..Default::default()
        },
    );
    let trace = QueryTrace::generate(
        &vocab,
        &QueryTraceConfig {
            num_queries: 250_000,
            seed: 23,
            ..Default::default()
        },
    );
    println!(
        "query trace: {} queries over {} days, {} planted transient bursts",
        trace.len(),
        trace.duration_secs / 86_400,
        trace.bursts.len()
    );

    // Shared symbol space between file terms and query terms.
    let mut dict = TermDict::new();
    let rule = PopularityRule::TopK(200);
    let popular_files = mismatch::popular_file_terms(
        crawl.files.iter().map(|f| (f.peer, f.name.as_str())),
        rule,
        &mut dict,
    );
    let idx = IntervalIndex::build(
        trace.queries.iter().map(|q| (q.time, q.text.as_str())),
        trace.duration_secs,
        3_600,
        &mut dict,
    );

    // Figure 6: stability.
    let stab = stability::popular_stability(&idx, rule);
    let warm = (stab.jaccards.len() / 10).max(3);
    println!(
        "\npopular-set stability (60-min intervals): mean {:.1}% after warm-up, min {:.1}% (paper: > 90%)",
        stab.mean_after_warmup(warm) * 100.0,
        stab.min_after_warmup(warm) * 100.0
    );

    // Figure 7: mismatch.
    let mm = mismatch::query_file_mismatch(&idx, &popular_files, rule);
    println!(
        "query terms vs popular file terms: mean {:.1}%, never above {:.1}% (paper: < 20%)",
        mm.mean_popular_similarity() * 100.0,
        mm.max_popular_similarity() * 100.0
    );

    // Figure 5: transients, with the generator's ground truth as oracle.
    let series = transient::detect_transients(&idx, &TransientConfig::default());
    println!(
        "\ntransient detector (60-min intervals): mean {:.2} flagged terms/interval, variance {:.2}",
        series.mean(),
        series.variance()
    );
    let burst_terms: std::collections::HashSet<&str> =
        trace.bursts.iter().map(|b| vocab.term(b.term)).collect();
    let flagged_names: std::collections::HashSet<&str> = series
        .flagged
        .iter()
        .flatten()
        .map(|&s| dict.resolve(s))
        .collect();
    let recovered = burst_terms.intersection(&flagged_names).count();
    println!(
        "ground truth check: {recovered}/{} planted burst terms were flagged transient",
        burst_terms.len()
    );
    println!("\nconclusion: the popular query vocabulary is stable but *different* from the stored vocabulary — a synopsis keyed to content wastes its budget.");
}
