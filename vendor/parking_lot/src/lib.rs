//! Offline stand-in for the subset of the `parking_lot` 0.12 API this
//! workspace uses: [`Mutex`] (whose `lock` returns a guard directly, no
//! poisoning) and [`Condvar`] (whose `wait` takes the guard by `&mut`
//! rather than by value).
//!
//! Implemented on `std::sync` primitives with poisoning translated away:
//! a poisoned lock yields its inner guard, matching `parking_lot`'s
//! poison-free semantics. The `&mut`-guard `Condvar::wait` is expressed
//! with an `Option` take/put around `std`'s by-value wait, so no `unsafe`
//! is needed anywhere in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive (mirrors `parking_lot::Mutex`).
///
/// Unlike `std::sync::Mutex`, `lock` returns the guard directly and a
/// panic while holding the lock does not poison it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists solely so [`Condvar::wait`] can temporarily
/// move the underlying `std` guard out (std's `wait` is by-value) and put
/// the re-acquired guard back — it is `Some` at every point user code can
/// observe.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard invariant: inner is Some outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard invariant: inner is Some outside Condvar::wait")
    }
}

/// A condition variable (mirrors `parking_lot::Condvar`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the mutex guarded by
    /// `guard` while asleep and re-acquiring it before returning.
    ///
    /// Takes the guard by `&mut` like `parking_lot` (std takes it by
    /// value); spurious wakeups are possible, so callers loop on their
    /// predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .inner
            .take()
            .expect("guard invariant: inner is Some outside Condvar::wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let _held = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().expect("waiter must not panic"));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: no poisoning observable by callers.
        assert_eq!(*m.lock(), 1);
    }
}
