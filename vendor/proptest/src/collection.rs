//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::{Strategy, TestRng};
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for generated collections (mirrors
/// `proptest::collection::SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = self.max - self.min + 1;
        self.min + rng.biased_index(span as u128) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range {r:?}");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range {r:?}");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

/// Strategy producing `Vec`s of values from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length lies in `size` (end-exclusive when given
/// a `Range<usize>`, matching proptest).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `HashSet`s of values from `element`.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `HashSet`s whose size lies in `size` where feasible: element
/// collisions are retried a bounded number of times, so a set may come up
/// short only when the element domain is close to exhausted.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash + Debug,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(16).max(64);
        while out.len() < target && attempts < max_attempts {
            attempts += 1;
            out.insert(self.element.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_are_end_exclusive() {
        let mut rng = TestRng::new(11);
        let strat = vec(0u32..10, 1..5);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((1..=4).contains(&v.len()), "len {} out of 1..5", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_reaches_min_and_max_lengths() {
        let mut rng = TestRng::new(12);
        let strat = vec(0u64..100, 0..4);
        let lens: HashSet<usize> = (0..400).map(|_| strat.generate(&mut rng).len()).collect();
        assert!(lens.contains(&0) && lens.contains(&3));
    }

    #[test]
    fn hash_set_hits_target_when_domain_is_large() {
        let mut rng = TestRng::new(13);
        let strat = hash_set(0u64..1_000_000, 10..11);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng).len(), 10);
        }
    }

    #[test]
    fn hash_set_degrades_gracefully_on_tiny_domain() {
        let mut rng = TestRng::new(14);
        let strat = hash_set(0u8..2, 5..6);
        let s = strat.generate(&mut rng);
        assert!(s.len() <= 2);
    }

    #[test]
    fn nested_tuple_elements() {
        let mut rng = TestRng::new(15);
        let strat = vec((0u32..1000, 0.0f64..100.0), 0..80);
        let v = strat.generate(&mut rng);
        assert!(v.len() < 80);
        for &(a, b) in &v {
            assert!(a < 1000 && (0.0..100.0).contains(&b));
        }
    }
}
