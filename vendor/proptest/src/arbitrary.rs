//! `any::<T>()` support (mirrors `proptest::arbitrary`).

use crate::strategy::{Strategy, TestRng};
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward boundary values now and then, like proptest.
                match rng.next_u64() % 16 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes; no NaN/inf (tests that
        // want those ask for them explicitly upstream, none here do).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        mantissa * 2f64.powi(exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_hits_boundaries() {
        let mut rng = TestRng::new(21);
        let mut zero = false;
        let mut max = false;
        for _ in 0..500 {
            match u64::arbitrary(&mut rng) {
                0 => zero = true,
                u64::MAX => max = true,
                _ => {}
            }
        }
        assert!(zero && max);
    }

    #[test]
    fn f64_is_finite() {
        let mut rng = TestRng::new(22);
        for _ in 0..1000 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }
}
