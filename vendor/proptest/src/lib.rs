//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This crate re-implements the slice of the API
//! the workspace's property tests rely on:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` headers),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * range strategies (`0u32..500`, `-1e6f64..1e6`, `0..=9`),
//! * [`arbitrary::any`] (`any::<u64>()` and friends),
//! * [`collection::vec`] and [`collection::hash_set`],
//! * tuple strategies (pairs/triples/quads of strategies),
//! * string strategies from a simple regex subset (`".{0,80}"`,
//!   `"[a-zA-Z0-9 .'_-]{2,60}"`).
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   fully-qualified name (overridable via `PROPTEST_STUB_SEED`), so runs
//!   are bit-for-bit reproducible — in line with this repo's determinism
//!   discipline (see `cargo xtask lint`).
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim; with deterministic seeding the failure replays exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current property-test case unless `cond` holds.
///
/// Unlike `assert!`, this returns a [`test_runner::TestCaseError`] so the
/// harness can report the generated inputs alongside the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property-test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current property-test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a run)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// expands to a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __cases: u32 = __config.cases;
                let mut __rng = $crate::strategy::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts: u32 = __cases.saturating_mul(16).max(1024);
                while __ran < __cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest stub: {} rejected too many cases ({} attempts for {} runs)",
                        stringify!($name), __attempts, __ran
                    );
                    let __values = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    let __inputs = format!(
                        "({}) = {:?}",
                        stringify!($($arg),+),
                        &__values
                    );
                    let __outcome = $crate::test_runner::run_case(
                        __values,
                        |($($arg,)+)| {
                            $body
                            ::core::result::Result::Ok(())
                        },
                    );
                    match __outcome {
                        ::core::result::Result::Ok(()) => __ran += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property `{}` failed at case #{}:\n{}\ninputs: {}",
                                stringify!($name), __ran, msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}
