//! String generation from the regex subset the workspace's property
//! tests use: sequences of atoms (`.` or a `[...]` character class), each
//! optionally quantified with `{n}`, `{m,n}`, `?`, `*` or `+`.
//!
//! Examples accepted: `".{0,80}"`, `"[a-zA-Z0-9 .'_-]{2,60}"`,
//! `"[a-z]{2,6}"`, `"[a-c]{2}"`. Anything outside the subset panics with
//! a clear message rather than silently generating the wrong language.

use crate::strategy::TestRng;

/// Characters produced by `.`: printable ASCII plus a deliberately spiky
/// set of non-ASCII code points (accented Latin, Greek, Cyrillic, CJK,
/// combining marks, mathematical alphanumerics without lowercase
/// mappings, an astral-plane emoji) so Unicode handling is exercised.
const DOT_EXTRA: &[char] = &[
    'é', 'Ü', 'ß', 'ñ', 'ç', 'å', 'ø', 'λ', 'Ω', 'Ж', 'ю', '中', '日', '本', '語', 'ー',
    '\u{0301}', '\u{0308}', '𝔘', '𝒜', 'Ⅷ', '€', '—', '…', '🎵', '\u{00a0}',
];

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any character from the dot pool.
    Dot,
    /// `[...]` — inclusive character ranges (singletons are `(c, c)`).
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = piece.max - piece.min + 1;
        let count = piece.min + rng.biased_index(span as u128) as usize;
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Dot => {
            // 1-in-8 draws come from the non-ASCII pool.
            if rng.next_u64().is_multiple_of(8) {
                DOT_EXTRA[rng.below(DOT_EXTRA.len() as u128) as usize]
            } else {
                // Printable ASCII: 0x20 ..= 0x7e.
                char::from(0x20 + rng.below(0x5f) as u8)
            }
        }
        Atom::Class(ranges) => {
            let total: u128 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u128 - lo as u128 + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let size = hi as u128 - lo as u128 + 1;
                if pick < size {
                    let code = lo as u32 + pick as u32;
                    return char::from_u32(code).unwrap_or(lo);
                }
                pick -= size;
            }
            unreachable!("pick is bounded by the total class size")
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                let (class, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                Atom::Class(class)
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                Atom::Class(vec![(c, c)])
            }
            c if !"{}?*+()|^$".contains(c) => {
                i += 1;
                Atom::Class(vec![(c, c)])
            }
            c => panic!("proptest stub: unsupported regex construct `{c}` in pattern {pattern:?}"),
        };
        let (min, max, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<(char, char)>, usize) {
    assert!(
        chars.get(i) != Some(&'^'),
        "proptest stub: negated classes are unsupported in pattern {pattern:?}"
    );
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        // `a-z` range (the `-` must not be the final class character).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            assert!(
                lo <= hi,
                "proptest stub: inverted range in pattern {pattern:?}"
            );
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "proptest stub: unterminated class in pattern {pattern:?}"
    );
    assert!(
        !ranges.is_empty(),
        "proptest stub: empty class in pattern {pattern:?}"
    );
    (ranges, i + 1)
}

fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| {
                    panic!("proptest stub: unterminated quantifier in pattern {pattern:?}")
                });
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or_else(|_| {
                        panic!("proptest stub: bad quantifier `{body}` in {pattern:?}")
                    }),
                    hi.trim().parse().unwrap_or_else(|_| {
                        panic!("proptest stub: bad quantifier `{body}` in {pattern:?}")
                    }),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or_else(|_| {
                        panic!("proptest stub: bad quantifier `{body}` in {pattern:?}")
                    });
                    (n, n)
                }
            };
            assert!(
                min <= max,
                "proptest stub: inverted quantifier `{body}` in {pattern:?}"
            );
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(7)
    }

    #[test]
    fn class_with_ranges_and_literals() {
        let mut r = rng();
        for _ in 0..500 {
            let s = generate_from_pattern("[a-zA-Z0-9 .'_-]{2,60}", &mut r);
            let n = s.chars().count();
            assert!((2..=60).contains(&n), "bad length {n}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " .'_-".contains(c)));
        }
    }

    #[test]
    fn dot_respects_length_bounds_and_emits_non_ascii() {
        let mut r = rng();
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let s = generate_from_pattern(".{0,80}", &mut r);
            assert!(s.chars().count() <= 80);
            saw_non_ascii |= !s.is_ascii();
        }
        assert!(saw_non_ascii, "dot must exercise Unicode");
    }

    #[test]
    fn exact_count_quantifier() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_from_pattern("[a-c]{2}", &mut r);
            assert_eq!(s.chars().count(), 2);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn sequences_and_escapes() {
        let mut r = rng();
        let s = generate_from_pattern("ab[0-9]{3}\\.", &mut r);
        assert!(s.starts_with("ab"));
        assert!(s.ends_with('.'));
        assert_eq!(s.chars().count(), 6);
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn alternation_is_rejected_loudly() {
        generate_from_pattern("a|b", &mut rng());
    }
}
