//! Test-runner configuration and case outcomes (mirrors
//! `proptest::test_runner`).

/// Per-test configuration. Only the fields this workspace uses exist.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Runs one generated case. Exists so the `proptest!` macro can hand a
/// destructuring closure a concretely-typed value tuple (closure
/// parameter inference alone picks unsized types from slice-y bodies).
pub fn run_case<V, F>(values: V, case: F) -> Result<(), TestCaseError>
where
    F: FnOnce(V) -> Result<(), TestCaseError>,
{
    case(values)
}

/// Outcome of a single generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed; the message explains how.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is regenerated
    /// without counting toward the case budget.
    Reject(String),
}
