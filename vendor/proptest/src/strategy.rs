//! The [`Strategy`] trait, the deterministic [`TestRng`], and strategy
//! implementations for ranges, tuples and regex-subset string literals.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing all strategies (SplitMix64).
///
/// Seeded from the fully-qualified test name so every run of a given test
/// generates the same case sequence; set `PROPTEST_STUB_SEED=<u64>` to
/// explore a different sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Creates the canonical generator for the named test.
    pub fn for_test(test_name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_STUB_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return Self::new(seed ^ fnv1a(test_name));
            }
        }
        Self::new(fnv1a(test_name))
    }

    /// Next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        // 128-bit modulo; the bias is ~2^-64 at worst, irrelevant for
        // test-case generation.
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks an index in `[0, len)`, biased toward the first and last
    /// index once in a while so boundary cases are exercised early.
    pub fn biased_index(&mut self, len: u128) -> u128 {
        debug_assert!(len > 0);
        match self.next_u64() % 16 {
            0 => 0,
            1 => len - 1,
            _ => self.below(len),
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A source of generated values (mirrors `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.biased_index(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy {:?}", self);
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                self.start() + rng.biased_index(span) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.biased_index(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy {:?}", self);
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + rng.biased_index(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                // Occasionally emit the lower endpoint exactly.
                if rng.next_u64() % 16 == 0 {
                    return self.start;
                }
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy {:?}", self);
                match rng.next_u64() % 16 {
                    0 => *self.start(),
                    1 => *self.end(),
                    _ => {
                        let u = rng.unit_f64() as $t;
                        self.start() + u * (self.end() - self.start())
                    }
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("some::test");
        let mut b = TestRng::for_test("some::test");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..2000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (-10i64..10).generate(&mut rng);
            assert!((-10..10).contains(&w));
            let x = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&x));
            let y = (3u64..=3).generate(&mut rng);
            assert_eq!(y, 3);
        }
    }

    #[test]
    fn ranges_hit_both_endpoints() {
        let mut rng = TestRng::new(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match (0u8..4).generate(&mut rng) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi, "edge biasing must reach both endpoints");
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(3);
        let (a, b) = (0u32..10, 0.0f64..1.0).generate(&mut rng);
        assert!(a < 10 && (0.0..1.0).contains(&b));
    }
}
