//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This stub keeps every bench target compiling
//! and runnable:
//!
//! * under `cargo bench` (cargo passes `--bench` to `harness = false`
//!   targets) each benchmark runs a short warmup plus a few timed
//!   iterations and prints a mean wall-clock time — a smoke-level signal,
//!   not a statistically rigorous measurement;
//! * under `cargo test` (no `--bench` argument) benchmarks are listed but
//!   not executed, so the test suite stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` inputs are sized (API-compatibility only; the stub
/// regenerates the input for every iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiples.
    BytesDecimal(u64),
}

/// The benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            enabled: false,
        }
    }
}

impl Criterion {
    /// Sets the nominal sample size (the stub caps actual iterations far
    /// lower; see [`Bencher::iter`]).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Reads the process arguments the way cargo invokes bench targets:
    /// benchmarks execute only when `--bench` is present.
    pub fn configure_from_args(mut self) -> Self {
        self.enabled = std::env::args().any(|a| a == "--bench");
        self
    }

    /// Runs (or, when disabled, lists) a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.enabled, id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs (or lists) one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion.enabled, &full, self.throughput, f);
        self
    }

    /// Ends the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to drive timed iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    /// `None` while only listing; `Some` accumulated samples otherwise.
    samples: Option<Vec<Duration>>,
}

/// Iteration budget when benchmarks actually run. Intentionally tiny:
/// the stub provides a smoke signal, not statistics.
const WARMUP_ITERS: usize = 1;
const TIMED_ITERS: usize = 3;

impl Bencher {
    /// Times `f` over a few iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let Some(samples) = self.samples.as_mut() else {
            return;
        };
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        for _ in 0..TIMED_ITERS {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
    }

    /// Times `routine` over a few iterations, regenerating its input with
    /// `setup` outside the timed section.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let Some(samples) = self.samples.as_mut() else {
            return;
        };
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        for _ in 0..TIMED_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    enabled: bool,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if !enabled {
        println!("criterion-stub: {id} ... skipped (run with `cargo bench` to time)");
        return;
    }
    let mut bencher = Bencher {
        samples: Some(Vec::new()),
    };
    f(&mut bencher);
    let samples = bencher.samples.unwrap_or_default();
    if samples.is_empty() {
        println!("criterion-stub: {id} ... no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!(" ({:.3e} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if mean.as_secs_f64() > 0.0 => {
            format!(" ({:.3e} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "criterion-stub: {id} ... mean {:?} over {} iters{rate}",
        mean,
        samples.len()
    );
}

/// Declares a group of benchmark targets (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bencher_runs_nothing() {
        let mut c = Criterion::default(); // enabled = false
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 0, "closures must not run under cargo test");
    }

    #[test]
    fn enabled_bencher_collects_samples() {
        let mut b = Bencher {
            samples: Some(Vec::new()),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls as usize, WARMUP_ITERS + TIMED_ITERS);
        assert_eq!(b.samples.as_ref().map(Vec::len), Some(TIMED_ITERS));
    }

    #[test]
    fn iter_batched_regenerates_input() {
        let mut b = Bencher {
            samples: Some(Vec::new()),
        };
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::LargeInput,
        );
        assert_eq!(setups as usize, WARMUP_ITERS + TIMED_ITERS);
    }

    #[test]
    fn group_names_compose() {
        let mut c = Criterion::default().sample_size(10);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_function(format!("case{}", 1), |_b| {});
        g.finish();
    }
}
