//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched from crates.io. The workspace only relies on the two
//! core traits ([`RngCore`], [`SeedableRng`]) so that `qcp_util::rng`'s
//! deterministic generators compose with `rand`-style call sites; this
//! crate provides exactly that surface with identical semantics. If the
//! real `rand` ever becomes available, deleting the `[patch]`/path entry
//! in the workspace `Cargo.toml` restores the upstream crate with no code
//! changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Error type reported by fallible RNG operations.
///
/// The deterministic generators in this workspace never fail, so this is
/// an opaque marker type mirroring `rand::Error`'s role in signatures.
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new_static(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Error").field("msg", &self.msg).finish()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 32 bits of randomness.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of randomness.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable construction of generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds a generator from a byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it over the byte seed
    /// with a SplitMix64 stream (same scheme as upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn default_try_fill_bytes_delegates() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 5];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = Counter::seed_from_u64(42).0;
        let b = Counter::seed_from_u64(42).0;
        assert_eq!(a, b);
        assert_ne!(a, Counter::seed_from_u64(43).0);
    }
}
