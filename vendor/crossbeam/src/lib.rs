//! Offline stand-in for the subset of the `crossbeam` 0.8 API this
//! workspace uses: `crossbeam::channel::{unbounded, Sender, Receiver}`.
//!
//! Provides a multi-producer multi-consumer unbounded FIFO channel built
//! on `std::sync` (`Mutex<VecDeque>` + `Condvar`). This is not as fast as
//! real crossbeam's lock-free channel, but the workspace only uses the
//! channel for coarse job dispatch in `qcp-xpar` (one message per batch
//! per worker), where the lock is nowhere near the critical path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// MPMC channels (mirrors `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message, like `crossbeam::channel::SendError`.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel. Cloneable; the channel
    /// disconnects for receivers once all clones are dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable; all clones
    /// drain the same FIFO queue (each message is delivered exactly once).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one blocked receiver. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is empty
        /// and at least one sender is alive. Returns [`RecvError`] once
        /// the channel is both empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues without blocking; `None` when the queue is currently
        /// empty (regardless of sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).expect("receiver alive");
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).expect("receiver alive");
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded::<u64>();
        let total = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        drop(rx);
        let n = 10_000u64;
        for i in 1..=n {
            tx.send(i).expect("consumers alive");
        }
        drop(tx);
        for c in consumers {
            c.join().expect("consumer must not panic");
        }
        assert_eq!(total.load(Ordering::Relaxed), n * (n + 1) / 2);
    }
}
