//! # qcp2p — query-centric unstructured peer-to-peer overlays
//!
//! A full reproduction of *"On the need for query-centric unstructured
//! peer-to-peer overlays"* (Acosta & Chandra, IEEE IPDPS/IPPS 2008) as a
//! Rust workspace: synthetic trace substrates calibrated to the paper's
//! measurements, the complete term/interval/similarity analysis pipeline,
//! unstructured-overlay and Chord-DHT simulators, the hybrid and Gia
//! baselines, and the query-centric adaptive-synopsis search the paper
//! argues for.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`util`] | `qcp-util` | hashing, RNG, stats, histograms, Jaccard, tables, plots |
//! | [`xpar`] | `qcp-xpar` | fork-join parallel executor |
//! | [`zipf`] | `qcp-zipf` | Zipf/power-law samplers and tail fitting |
//! | [`terms`] | `qcp-terms` | tokenization, sanitization, term dictionaries |
//! | [`sketch`] | `qcp-sketch` | Bloom filters and budgeted term synopses |
//! | [`tracegen`] | `qcp-tracegen` | Gnutella/iTunes/query trace generators |
//! | [`analysis`] | `qcp-analysis` | the paper's measurement pipeline (Figs 1–7) |
//! | [`faults`] | `qcp-faults` | deterministic fault plans: loss, churn, latency, retry/backoff |
//! | [`vtime`] | `qcp-vtime` | deterministic discrete-event calendar over virtual time |
//! | [`obs`] | `qcp-obs` | write-only recorders: per-kernel message/hop/fault breakdowns |
//! | [`overlay`] | `qcp-overlay` | topologies, placement, flood/walk simulation (Fig 8) |
//! | [`dht`] | `qcp-dht` | Chord ring + distributed keyword index |
//! | [`search`] | `qcp-search` | flood/walk/Gia/hybrid/synopsis search systems |
//! | [`core`] | `qcp-core` | [`QueryCentricAnalyzer`]: traces → findings, end to end |
//!
//! ## Quickstart
//!
//! ```
//! use qcp2p::{AnalyzerConfig, QueryCentricAnalyzer};
//!
//! let findings = QueryCentricAnalyzer::new(
//!     AnalyzerConfig::test_scale().with_seed(7),
//! )
//! .run();
//!
//! // The Zipf long tail (Figure 1): most objects live on a single peer…
//! assert!(findings.crawl.singleton_fraction_raw > 0.5);
//! // …the popular query-term set is stable over time (Figure 6)…
//! assert!(findings.query.stability_after_warmup > 0.8);
//! // …yet barely overlaps the popular file terms (Figure 7).
//! assert!(findings.query.mean_popular_mismatch < 0.35);
//! ```
//!
//! See `examples/` for the domain scenarios and
//! `cargo run --release -p qcp-bench --bin repro -- all` for full figure
//! regeneration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qcp_core::analysis;
pub use qcp_core::dht;
pub use qcp_core::faults;
pub use qcp_core::obs;
pub use qcp_core::overlay;
pub use qcp_core::search;
pub use qcp_core::sketch;
pub use qcp_core::terms;
pub use qcp_core::tracegen;
pub use qcp_core::util;
pub use qcp_core::vtime;
pub use qcp_core::xpar;
pub use qcp_core::zipf;

/// The `qcp-core` crate (analyzer, config, findings).
pub use qcp_core as core;

pub use qcp_core::{AnalyzerConfig, Figure4Findings, Findings, QueryCentricAnalyzer};
